"""Setuptools shim.

The reproduction environment has no ``wheel`` package, so PEP 517
editable installs (which build a wheel) fail.  This shim enables the
legacy ``pip install -e . --no-build-isolation --no-use-pep517`` path and
``python setup.py develop``.
"""

from setuptools import setup

setup()
