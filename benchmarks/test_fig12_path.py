"""Figure 12 — PATH rules: decomposition + join evaluation in play.

The paper: PATH registration cost amortizes over the batch and — unlike
OID — *does* depend on the rule base size, because the combined rule
group evaluation touches the group's member rules once per batch.
"""

import pytest

from conftest import register_batch


@pytest.mark.parametrize("rule_count", [1_000, 5_000])
@pytest.mark.parametrize("batch_size", [1, 10, 100])
def test_fig12_path_registration(benchmark, bench_factory, rule_count, batch_size):
    bench = bench_factory("PATH", rule_count)
    databases = []

    def setup():
        run, db = register_batch(bench, batch_size)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    # Hits: per document — class atom (host), memory atom (info),
    # identity/reference joins up to the end rule.
    assert result >= batch_size
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["rule_count"] = rule_count
    benchmark.extra_info["figure"] = "12"
    for db in databases:
        db.close()
