"""Ablation — dependency-graph merging on vs. off (paper, Section 3.3.2).

Merging dependency trees deduplicates equivalent atomic rules across
subscriptions so they are "evaluated only once".  The JOIN workload
shares two of its three triggering atoms (the ``contains`` and
``cpu = 600`` predicates are identical across all rules): without the
merge, every subscription evaluates private copies.
"""

import pytest

from conftest import register_batch

RULE_COUNT = 1_000
BATCH = 50


@pytest.mark.parametrize("deduplicate", [True, False], ids=["merged", "private"])
def test_ablation_dedup(benchmark, bench_factory, deduplicate):
    bench = bench_factory("JOIN", RULE_COUNT, deduplicate=deduplicate)
    databases = []

    def setup():
        run, db = register_batch(bench, BATCH)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    assert result >= BATCH
    benchmark.extra_info["deduplicate"] = deduplicate
    benchmark.extra_info["ablation"] = "dedup"
    for db in databases:
        db.close()


def test_dedup_shrinks_rule_base(bench_factory):
    """Merging shrinks the atomic-rule count dramatically (no timing)."""
    merged = bench_factory("JOIN", RULE_COUNT, deduplicate=True)
    private = bench_factory("JOIN", RULE_COUNT, deduplicate=False)
    merged_db, __ = merged.fresh_engine()
    private_db, __e = private.fresh_engine()
    merged_atoms = merged_db.count("atomic_rules")
    private_atoms = private_db.count("atomic_rules")
    merged_db.close()
    private_db.close()
    # JOIN decomposes into 5 atoms; 2 triggering atoms + nothing else
    # are shared across subscriptions (the memory atom and both join
    # levels are per-rule), so merging saves ~2 atoms per subscription.
    assert private_atoms == 5 * RULE_COUNT
    assert merged_atoms <= 3 * RULE_COUNT + 2
