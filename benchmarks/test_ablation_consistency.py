"""Ablation — update-consistency strategies (paper, Section 3.5).

Compares the cost of processing one document update under:

- the paper's three-pass **filter** algorithm,
- per-resource subscriber lists (**resource-list**): one filter pass for
  new matches plus a *full rule evaluation* per subscription attached to
  a changed cached resource,
- **ttl**: one filter pass, no eviction bookkeeping at all.

With many rules matching the updated resource, the resource-list
strategy pays per-rule; the filter amortizes across all of them.
"""

import pytest

from repro.mdv.consistency import FilterStrategy, ResourceListStrategy, TTLStrategy
from repro.mdv.provider import MetadataProvider
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema

RULES_PER_RESOURCE = 40

STRATEGIES = {
    "filter": FilterStrategy,
    "resource-list": ResourceListStrategy,
    "ttl": TTLStrategy,
}


def make_doc(memory):
    doc = Document("doc0.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef("doc0.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def build(strategy_name):
    schema = objectglobe_schema()
    mdp = MetadataProvider(schema)
    mdp.connect_subscriber("lmr", lambda batch: None)
    for index in range(RULES_PER_RESOURCE):
        mdp.subscribe(
            "lmr",
            f"search CycleProvider c register c "
            f"where c.serverInformation.memory > {index}",
        )
    strategy = STRATEGIES[strategy_name](mdp)
    doc = make_doc(memory=RULES_PER_RESOURCE + 1)  # matches every rule
    strategy.process_diff(diff_documents(None, doc))
    return strategy, doc


@pytest.mark.parametrize("strategy_name", list(STRATEGIES))
def test_ablation_update_consistency(benchmark, strategy_name):
    states = []

    def setup():
        strategy, doc = build(strategy_name)
        updated = doc.copy()
        updated.get("doc0.rdf#info").set("memory", RULES_PER_RESOURCE // 2)
        diff = diff_documents(doc, updated)
        states.append(strategy)
        return (strategy, diff), {}

    def process(strategy, diff):
        return strategy.process_diff(diff)

    benchmark.pedantic(process, setup=setup, rounds=3, iterations=1)
    benchmark.extra_info["strategy"] = strategy_name
    benchmark.extra_info["ablation"] = "consistency"
    # The resource-list strategy paid one full evaluation per rule.
    if strategy_name == "resource-list":
        assert states[-1].cost.full_rule_evaluations >= RULES_PER_RESOURCE
    if strategy_name == "ttl":
        assert states[-1].cost.full_rule_evaluations == 0
