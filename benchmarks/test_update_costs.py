"""Beyond the paper: the cost of the three-pass update algorithm.

The paper benchmarks insert-path registration only; updates run the
filter three times (§3.5).  This bench quantifies the multiplier on the
PATH workload — one document update versus one document insert, under
the same rule base — and the dependence of update cost on the rule base
size.
"""

import pytest

from repro.rdf.diff import diff_documents


@pytest.mark.parametrize("rule_count", [1_000, 5_000])
def test_update_vs_insert(benchmark, bench_factory, rule_count):
    bench = bench_factory("PATH", rule_count)
    states = []

    def setup():
        db, engine = bench.fresh_engine()
        doc = bench.spec.documents(1)[0]
        engine.process_diff(diff_documents(None, doc))
        updated = doc.copy()
        info = updated.get(f"{doc.uri}#info")
        info.set("memory", rule_count + 10)  # stops matching its rule
        states.append(db)
        return (engine, diff_documents(doc, updated)), {}

    def update(engine, diff):
        return engine.process_diff(diff)

    outcome = benchmark.pedantic(update, setup=setup, rounds=3, iterations=1)
    assert outcome.unmatched  # the old match was revoked
    assert len(outcome.passes) == 3
    benchmark.extra_info["rule_count"] = rule_count
    benchmark.extra_info["op"] = "update"
    for db in states:
        db.close()


@pytest.mark.parametrize("rule_count", [1_000, 5_000])
def test_insert_baseline(benchmark, bench_factory, rule_count):
    bench = bench_factory("PATH", rule_count)
    states = []

    def setup():
        db, engine = bench.fresh_engine()
        doc = bench.spec.documents(1)[0]
        states.append(db)
        return (engine, doc), {}

    def insert(engine, doc):
        return engine.process_diff(diff_documents(None, doc))

    outcome = benchmark.pedantic(insert, setup=setup, rounds=3, iterations=1)
    assert len(outcome.passes) == 1
    benchmark.extra_info["rule_count"] = rule_count
    benchmark.extra_info["op"] = "insert"
    for db in states:
        db.close()
