"""Ablation — member-scan vs. delta-probe group evaluation.

``scan`` is the paper's combined evaluation ("combining their input
data, evaluating the shared where part, and splitting up the result"):
each active group's member list is touched once per iteration, giving
the rule-base-size dependence of Figures 12/14.  ``probe`` is a
beyond-paper optimization that starts at the delta and probes
``rule_dependencies``, making join evaluation independent of the group
size.  The gap widens with the rule base; at 5k PATH rules it is already
visible at small batches.
"""

import pytest

from conftest import register_batch

RULE_COUNT = 5_000
BATCH = 5


@pytest.mark.parametrize("join_evaluation", ["scan", "probe"])
def test_ablation_join_evaluation(benchmark, bench_factory, join_evaluation):
    bench = bench_factory("PATH", RULE_COUNT, join_evaluation=join_evaluation)
    databases = []

    def setup():
        run, db = register_batch(bench, BATCH)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    assert result >= BATCH
    benchmark.extra_info["join_evaluation"] = join_evaluation
    benchmark.extra_info["ablation"] = "join-evaluation"
    for db in databases:
        db.close()
