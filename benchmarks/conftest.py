"""Shared fixtures for the pytest-benchmark suite.

Rule bases are expensive to build, so prepared :class:`FilterBench`
templates are cached for the whole session, keyed by their full
configuration; every benchmark round still runs on a pristine clone.

Sizes here are scaled down from the paper's 10k/100k so the whole suite
finishes in a couple of minutes; ``python -m repro.bench <figure>
[--full]`` runs the complete sweeps (and checks the paper's qualitative
claims).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import FilterBench
from repro.workload.scenarios import WorkloadSpec


@pytest.fixture(scope="session")
def bench_factory():
    cache: dict[tuple, FilterBench] = {}

    def get(
        rule_type: str,
        rule_count: int,
        match_fraction: float = 0.1,
        use_rule_groups: bool = True,
        deduplicate: bool = True,
        join_evaluation: str = "scan",
    ) -> FilterBench:
        key = (
            rule_type,
            rule_count,
            match_fraction,
            use_rule_groups,
            deduplicate,
            join_evaluation,
        )
        if key not in cache:
            bench = FilterBench(
                WorkloadSpec(rule_type, rule_count, match_fraction),
                use_rule_groups=use_rule_groups,
                deduplicate=deduplicate,
                join_evaluation=join_evaluation,
            )
            bench.prepare()
            cache[key] = bench
        return cache[key]

    yield get
    for bench in cache.values():
        bench.close()


def register_batch(bench: FilterBench, batch_size: int):
    """One measured registration: fresh clone, one batch, teardown.

    Returns a zero-argument callable for ``benchmark.pedantic`` setups.
    """
    db, engine = bench.fresh_engine()
    documents = bench.spec.documents(batch_size)
    resources = [resource for doc in documents for resource in doc]

    def run():
        engine.process_insertions(resources, collect="none")
        return engine.result_count()

    return run, db
