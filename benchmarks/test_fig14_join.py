"""Figure 14 — JOIN rules: the complete filter machinery.

Each JOIN rule decomposes into three triggering rules, an identity join
and a reference join (the paper's deepest benchmark shape); the measured
cost covers triggering matches plus two iterations of rule-group
evaluation.
"""

import pytest

from conftest import register_batch


@pytest.mark.parametrize("rule_count", [1_000, 5_000])
@pytest.mark.parametrize("batch_size", [1, 10, 100])
def test_fig14_join_registration(benchmark, bench_factory, rule_count, batch_size):
    bench = bench_factory("JOIN", rule_count)
    databases = []

    def setup():
        run, db = register_batch(bench, batch_size)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    assert result >= batch_size
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["rule_count"] = rule_count
    benchmark.extra_info["figure"] = "14"
    for db in databases:
        db.close()
