"""Ablation — rule groups on vs. off (paper, Section 3.3.3).

Rule groups exist "to avoid individual evaluation of such join rules":
member rules sharing a where part are evaluated in one pass.  Disabling
them issues one set of join statements per dependent join rule instead
of per group.  On the PATH workload all join rules share a single group,
so the grouped variant runs O(1) statement sets per iteration while the
ungrouped one runs O(batch) of them.
"""

import pytest

from conftest import register_batch

RULE_COUNT = 2_000
BATCH = 50


@pytest.mark.parametrize("use_rule_groups", [True, False], ids=["grouped", "ungrouped"])
def test_ablation_rule_groups(benchmark, bench_factory, use_rule_groups):
    bench = bench_factory("PATH", RULE_COUNT, use_rule_groups=use_rule_groups)
    databases = []

    def setup():
        run, db = register_batch(bench, BATCH)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    assert result >= BATCH
    benchmark.extra_info["use_rule_groups"] = use_rule_groups
    benchmark.extra_info["ablation"] = "rule-groups"
    for db in databases:
        db.close()
