"""Figure 15 — COMP rules, varying triggered rule-base percentage.

"Not surprisingly a higher rule percentage results in higher
registration costs independent of the batch size."  The percentage
controls how many ``ResultObjects`` rows each registered document
produces.
"""

import pytest

from conftest import register_batch

RULE_COUNT = 2_000


@pytest.mark.parametrize("match_pct", [1, 5, 10, 20])
@pytest.mark.parametrize("batch_size", [10, 100])
def test_fig15_comp_percentage(benchmark, bench_factory, match_pct, batch_size):
    bench = bench_factory("COMP", RULE_COUNT, match_fraction=match_pct / 100)
    databases = []

    def setup():
        run, db = register_batch(bench, batch_size)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    assert result == batch_size * (RULE_COUNT * match_pct // 100)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["match_pct"] = match_pct
    benchmark.extra_info["figure"] = "15"
    for db in databases:
        db.close()
