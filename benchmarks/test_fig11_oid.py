"""Figure 11 — OID rules: cost vs. batch size, rule base size irrelevant.

The paper's claim: "For simple OID rules the rule base size does not
influence the runtime of the algorithm as the curves for 10,000 and
100,000 are almost identical."  OID rules resolve through the
``(class, property, value)`` equality index of ``filter_rules_eq``.
"""

import pytest

from conftest import register_batch


@pytest.mark.parametrize("rule_count", [1_000, 10_000])
@pytest.mark.parametrize("batch_size", [1, 10, 100])
def test_fig11_oid_registration(benchmark, bench_factory, rule_count, batch_size):
    bench = bench_factory("OID", rule_count)
    databases = []

    def setup():
        run, db = register_batch(bench, batch_size)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    # Every document matched exactly its own OID rule.
    assert result == batch_size
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["rule_count"] = rule_count
    benchmark.extra_info["figure"] = "11"
    for db in databases:
        db.close()
