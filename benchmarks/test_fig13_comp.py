"""Figure 13 — COMP rules with 10% of the rule base matching.

Range predicates scan every rule sharing ``(class, property)`` in the
``FilterRulesOP`` table (constants stored as strings, reconverted at
join time — paper §3.3.4), so cost grows with the rule base and the
paper finds that "registering few documents in one batch is preferable".
"""

import pytest

from conftest import register_batch


@pytest.mark.parametrize("rule_count", [1_000, 5_000])
@pytest.mark.parametrize("batch_size", [1, 10, 100])
def test_fig13_comp_registration(benchmark, bench_factory, rule_count, batch_size):
    bench = bench_factory("COMP", rule_count, match_fraction=0.1)
    databases = []

    def setup():
        run, db = register_batch(bench, batch_size)
        databases.append(db)
        return (run,), {}

    result = benchmark.pedantic(
        lambda run: run(), setup=setup, rounds=3, iterations=1
    )
    # Every document triggers exactly 10% of the rule base.
    assert result == batch_size * (rule_count // 10)
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["rule_count"] = rule_count
    benchmark.extra_info["figure"] = "13"
    for db in databases:
        db.close()
