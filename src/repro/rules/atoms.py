"""Atomic rules: the units the filter algorithm evaluates.

The paper (Section 3.3) distinguishes two kinds of atomic rules:

- a **triggering rule** refers to a single class, needs no results of
  other atomic rules and contains no path expressions — only property
  accesses compared to constants, or no predicate at all;
- a **join rule** represents a join of two extensions with a single join
  predicate and always depends on two other atomic rules.

Atomic rules carry a *canonical key* — a deterministic textual rendering
used for deduplication: "There are no duplicates, i.e., no rules having
the same rule text but different rule_ids" (Section 3.3.4).  Join rules
additionally carry a *group signature* that ignores which concrete input
rules feed them; join rules sharing a signature form a **rule group**
(Section 3.3.3) and are evaluated together.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Union

from repro.text.ngrams import is_indexable

__all__ = ["TriggeringAtom", "JoinAtom", "AtomNode", "make_join", "iter_atoms"]


@dataclass(frozen=True, slots=True)
class TriggeringAtom:
    """A triggering rule.

    ``prop``/``operator``/``value`` are all ``None`` for class-only rules
    (``search C x register x`` with no where part).  ``extension_classes``
    lists every class whose instances belong to the rule's extension —
    the class itself plus its subclasses; the registry writes one index
    row per extension class so subclass instances match (rdfs:subClassOf
    semantics).
    """

    rdf_class: str
    extension_classes: tuple[str, ...]
    prop: str | None = None
    operator: str | None = None
    value: str | None = None
    numeric: bool = False

    kind = "triggering"

    def __post_init__(self) -> None:
        has_predicate = self.prop is not None
        if has_predicate != (self.operator is not None) or has_predicate != (
            self.value is not None
        ):
            raise ValueError(
                "triggering atoms have either a full predicate or none"
            )

    @property
    def is_class_only(self) -> bool:
        return self.prop is None

    @property
    def text_indexable(self) -> bool:
        """Whether this atom's needle can enter the trigram index.

        True only for ``contains`` atoms whose needle is at least one
        trigram long; shorter needles stay on the scan join.
        """
        return (
            self.operator == "contains"
            and self.value is not None
            and is_indexable(self.value)
        )

    @property
    def key(self) -> str:
        """Canonical rule text (deduplication key)."""
        if self.is_class_only:
            return f"T[{self.rdf_class}]"
        tag = "#" if self.numeric else "$"
        return (
            f"T[{self.rdf_class}|{self.prop} {self.operator} "
            f"{tag}{self.value}]"
        )

    def __str__(self) -> str:
        if self.is_class_only:
            return f"search {self.rdf_class} x register x"
        return (
            f"search {self.rdf_class} x register x "
            f"where x.{self.prop} {self.operator} {self.value}"
        )


@dataclass(frozen=True, slots=True)
class JoinAtom:
    """A join rule over two input atomic rules.

    The join predicate relates the *left* and *right* inputs through
    optional property accesses: ``l.left_prop op r.right_prop`` where a
    ``None`` property denotes the resource itself (its URI reference).
    ``register_side`` says which input's resources the rule registers.

    ``self_join`` marks the degenerate case where both sides refer to the
    same resource (a predicate such as ``c.a = c.b``): evaluation then
    constrains the two property accesses to one subject.
    """

    left: "AtomNode"
    right: "AtomNode"
    left_class: str
    right_class: str
    left_prop: str | None
    right_prop: str | None
    operator: str
    register_side: str
    numeric: bool = False
    self_join: bool = False

    kind = "join"

    def __post_init__(self) -> None:
        if self.register_side not in ("left", "right"):
            raise ValueError(f"bad register side {self.register_side!r}")

    @property
    def rdf_class(self) -> str:
        """The class of the resources this rule registers (its *type*)."""
        return self.left_class if self.register_side == "left" else self.right_class

    @property
    def is_identity(self) -> bool:
        return self.left_prop is None and self.right_prop is None

    @property
    def group_signature(self) -> str:
        """Rule-group key: equal where part and equal variable classes.

        Deliberately excludes the input rules — that is the whole point
        of rule groups (paper, Section 3.3.3: rules C1 and C2 share the
        group although their inputs differ).
        """
        left = f"{self.left_class}.{self.left_prop or '*'}"
        right = f"{self.right_class}.{self.right_prop or '*'}"
        flags = ("n" if self.numeric else "") + ("s" if self.self_join else "")
        return f"G[{left} {self.operator} {right}|reg={self.register_side}|{flags}]"

    @property
    def key(self) -> str:
        """Canonical rule text: the group signature plus the input keys."""
        return f"J[{self.left.key}|{self.right.key}|{self.group_signature}]"

    def __str__(self) -> str:
        left = "l" if self.left_prop is None else f"l.{self.left_prop}"
        right = "r" if self.right_prop is None else f"r.{self.right_prop}"
        out = "l" if self.register_side == "left" else "r"
        return (
            f"search ({self.left}) l, ({self.right}) r register {out} "
            f"where {left} {self.operator} {right}"
        )


AtomNode = Union[TriggeringAtom, JoinAtom]


def make_join(
    left: AtomNode,
    left_class: str,
    left_prop: str | None,
    operator: str,
    right: AtomNode,
    right_class: str,
    right_prop: str | None,
    register_side: str,
    numeric: bool = False,
    self_join: bool = False,
) -> JoinAtom:
    """Build a join atom in canonical orientation.

    Orientation rule: when exactly one side accesses a property, that
    side goes left; when the orientation is ambiguous, sides are ordered
    by ``(class, property, input key)``.  Swapping mirrors the operator
    and the register side.  Canonical orientation maximizes rule-group
    sharing: ``c.serverInformation = s`` and ``s = c.serverInformation``
    land in the same group.
    """
    from repro.rules.ast import flip_operator

    def swap() -> JoinAtom:
        return JoinAtom(
            left=right,
            right=left,
            left_class=right_class,
            right_class=left_class,
            left_prop=right_prop,
            right_prop=left_prop,
            operator=flip_operator(operator),
            register_side="left" if register_side == "right" else "right",
            numeric=numeric,
            self_join=self_join,
        )

    def keep() -> JoinAtom:
        return JoinAtom(
            left=left,
            right=right,
            left_class=left_class,
            right_class=right_class,
            left_prop=left_prop,
            right_prop=right_prop,
            operator=operator,
            register_side=register_side,
            numeric=numeric,
            self_join=self_join,
        )

    left_has_prop = left_prop is not None
    right_has_prop = right_prop is not None
    if left_has_prop and not right_has_prop:
        return keep()
    if right_has_prop and not left_has_prop:
        return swap()
    left_order = (left_class, left_prop or "", left.key)
    right_order = (right_class, right_prop or "", right.key)
    return keep() if left_order <= right_order else swap()


def iter_atoms(root: AtomNode) -> Iterator[AtomNode]:
    """Yield every atom of a decomposition tree, children before parents.

    Each distinct atom (by key) is yielded once even when shared within
    the tree.
    """
    seen: set[str] = set()

    def walk(node: AtomNode) -> Iterator[AtomNode]:
        if node.key in seen:
            return
        if isinstance(node, JoinAtom):
            yield from walk(node.left)
            yield from walk(node.right)
        if node.key not in seen:
            seen.add(node.key)
            yield node

    yield from walk(root)
