"""The subscription rule system (paper, Sections 2.3 and 3.3).

Pipeline: :func:`~repro.rules.parser.parse_rule` →
:func:`~repro.rules.normalize.normalize_rule` →
:func:`~repro.rules.decompose.decompose_rule` →
:class:`~repro.rules.registry.RuleRegistry` (persistence + dedup into the
global dependency graph).
"""

from repro.rules.ast import (
    And,
    Constant,
    ExtensionRef,
    Or,
    PathExpr,
    PathStep,
    Predicate,
    Query,
    Rule,
)
from repro.rules.atoms import AtomNode, JoinAtom, TriggeringAtom, iter_atoms
from repro.rules.decompose import DecomposedRule, decompose_rule
from repro.rules.graph import DependencyGraph, GraphNode
from repro.rules.normalize import (
    ConstantPredicate,
    JoinPredicate,
    NormalizedRule,
    normalize_rule,
    to_dnf,
)
from repro.rules.parser import parse_query, parse_rule
from repro.rules.registry import (
    RegisteredSubscription,
    RuleRegistry,
    Subscription,
)

__all__ = [
    "And",
    "Constant",
    "ExtensionRef",
    "Or",
    "PathExpr",
    "PathStep",
    "Predicate",
    "Query",
    "Rule",
    "AtomNode",
    "JoinAtom",
    "TriggeringAtom",
    "iter_atoms",
    "DecomposedRule",
    "decompose_rule",
    "DependencyGraph",
    "GraphNode",
    "ConstantPredicate",
    "JoinPredicate",
    "NormalizedRule",
    "normalize_rule",
    "to_dnf",
    "parse_query",
    "parse_rule",
    "RegisteredSubscription",
    "RuleRegistry",
    "Subscription",
]
