"""Inlining of named-rule extensions into rules and queries.

The *filter* handles named extensions structurally: the named rule's
end atom becomes the producer of the variable, so its predicates apply
by construction.  The *query* paths (LMR evaluation, MDP browse) have
no atomic rules — for them a named extension must be expanded
textually: the named rule's search entries and where part are merged
into the referencing rule, with variables renamed apart and the named
rule's register variable unified with the referencing variable.

Expansion is recursive (named rules may reference named rules) with
cycle detection.
"""

from __future__ import annotations

from repro.errors import NormalizationError
from repro.rules.ast import (
    And,
    BoolExpr,
    Constant,
    ExtensionRef,
    Or,
    PathExpr,
    Predicate,
    Query,
    Rule,
)

__all__ = ["inline_named_rules", "inline_named_query"]


def _rename_operand(
    operand: PathExpr | Constant, mapping: dict[str, str]
) -> PathExpr | Constant:
    if isinstance(operand, Constant):
        return operand
    assert isinstance(operand, PathExpr)
    return PathExpr(mapping.get(operand.variable, operand.variable), operand.steps)


def _rename_expr(expr: BoolExpr, mapping: dict[str, str]) -> BoolExpr:
    if isinstance(expr, Predicate):
        return Predicate(
            _rename_operand(expr.left, mapping),
            expr.operator,
            _rename_operand(expr.right, mapping),
        )
    if isinstance(expr, And):
        return And(tuple(_rename_expr(op, mapping) for op in expr.operands))
    assert isinstance(expr, Or)
    return Or(tuple(_rename_expr(op, mapping) for op in expr.operands))


def inline_named_rules(
    rule: Rule,
    definitions: dict[str, Rule],
    _stack: tuple[str, ...] = (),
) -> Rule:
    """Expand every named-rule extension of ``rule``.

    ``definitions`` maps extension names to their defining rules; names
    absent from the map are assumed to be schema classes and left
    untouched.  The result references schema classes only.
    """
    extensions: list[ExtensionRef] = []
    conjuncts: list[BoolExpr] = []
    if rule.where is not None:
        conjuncts.append(rule.where)
    counter = 0
    for ext in rule.extensions:
        definition = definitions.get(ext.name)
        if definition is None:
            extensions.append(ext)
            continue
        if ext.name in _stack:
            raise NormalizationError(
                f"named rule {ext.name!r} references itself (via "
                f"{' -> '.join(_stack)})"
            )
        expanded = inline_named_rules(
            definition, definitions, _stack + (ext.name,)
        )
        counter += 1
        mapping = {}
        for inner in expanded.extensions:
            if inner.variable == expanded.register:
                mapping[inner.variable] = ext.variable
            else:
                mapping[inner.variable] = (
                    f"__{ext.name}{counter}_{inner.variable}"
                )
        for inner in expanded.extensions:
            extensions.append(
                ExtensionRef(inner.name, mapping[inner.variable])
            )
        if expanded.where is not None:
            conjuncts.append(_rename_expr(expanded.where, mapping))
    where: BoolExpr | None
    if not conjuncts:
        where = None
    elif len(conjuncts) == 1:
        where = conjuncts[0]
    else:
        where = And(tuple(conjuncts))
    return Rule(tuple(extensions), rule.register, where)


def inline_named_query(query: Query, definitions: dict[str, Rule]) -> Query:
    """Expand named extensions of a query (see :func:`inline_named_rules`)."""
    expanded = inline_named_rules(query.as_rule(), definitions)
    return Query(expanded.extensions, expanded.register, expanded.where)
