"""Human-readable explanation of how a rule is processed.

``explain_rule`` renders the whole §3.3 pipeline for one rule text —
normalized conjuncts, the atomic-rule inventory with canonical keys and
group signatures, and the dependency tree — the textual equivalent of
the paper's Figures 5–7, useful for debugging subscriptions and in
documentation.
"""

from __future__ import annotations

from repro.rdf.schema import Schema
from repro.rules.atoms import JoinAtom, TriggeringAtom
from repro.rules.decompose import DecomposedRule, decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule

__all__ = ["explain_rule", "explain_decomposition"]


def explain_decomposition(decomposed: DecomposedRule) -> str:
    """Render one decomposition: atoms, groups, tree, iteration bound."""
    lines = ["atomic rules (children first):"]
    for index, atom in enumerate(decomposed.atoms, start=1):
        if isinstance(atom, TriggeringAtom):
            if atom.is_class_only:
                detail = f"class-only on {atom.rdf_class}"
            else:
                detail = (
                    f"{atom.rdf_class}.{atom.prop} {atom.operator} "
                    f"{atom.value}"
                )
            lines.append(f"  {index}. triggering  {detail}")
        else:
            assert isinstance(atom, JoinAtom)
            lines.append(
                f"  {index}. join        {atom.group_signature} "
                f"(registers {atom.rdf_class})"
            )
    lines.append("dependency tree:")
    for line in decomposed.render_tree().splitlines():
        lines.append("  " + line)
    lines.append(
        f"max filter iterations: {decomposed.depth()} "
        f"(the longest leaf-to-root path, paper §3.4)"
    )
    return "\n".join(lines)


def explain_rule(
    rule_text: str,
    schema: Schema,
    named_extension_types: dict[str, str] | None = None,
) -> str:
    """Explain parsing, normalization and decomposition of a rule."""
    rule = parse_rule(rule_text)
    conjuncts = normalize_rule(rule, schema, named_extension_types)
    lines = [f"rule: {rule}"]
    if len(conjuncts) > 1:
        lines.append(
            f"or-split into {len(conjuncts)} conjuncts (paper §2.3)"
        )
    for index, normalized in enumerate(conjuncts):
        if len(conjuncts) > 1:
            lines.append(f"--- conjunct {index + 1} ---")
        lines.append(f"normalized: {normalized}")
        decomposed = decompose_rule(normalized, schema)
        lines.append(explain_decomposition(decomposed))
    return "\n".join(lines)
