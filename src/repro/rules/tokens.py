"""Tokenizer for MDV's subscription rule language.

The rule language (paper, Section 2.3) is SQL-like::

    search Extension e register e where Predicates(e)

with predicates of the form ``X o Y`` where ``X`` and ``Y`` are constants
or path expressions and ``o`` is one of ``= != < <= > >= contains``.
Keywords are matched case-insensitively.  String constants use single
quotes (``'uni-passau.de'``), doubling the quote to escape it.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import RuleSyntaxError

__all__ = ["TokenType", "Token", "tokenize", "KEYWORDS", "OPERATORS"]


class TokenType(Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    DOT = "dot"
    COMMA = "comma"
    QUESTION = "question"
    LPAREN = "lparen"
    RPAREN = "rparen"
    END = "end"


#: Reserved words of the rule/query language.
KEYWORDS = frozenset({"search", "register", "where", "and", "or", "contains"})

#: Comparison operators.  ``contains`` is tokenized as a keyword and
#: promoted to an operator by the parser.
OPERATORS = frozenset({"=", "!=", "<", "<=", ">", ">="})


@dataclass(frozen=True, slots=True)
class Token:
    type: TokenType
    text: str
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text == word

    def __str__(self) -> str:  # pragma: no cover - error messages
        if self.type is TokenType.END:
            return "end of input"
        return repr(self.text)


def tokenize(text: str) -> list[Token]:
    """Tokenize a rule or query string.

    Returns the token list terminated by a single ``END`` token.  Raises
    :class:`~repro.errors.RuleSyntaxError` on unterminated strings or
    unexpected characters.
    """
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            tokens.append(_read_string(text, index))
            index += len(tokens[-1].text) + 2 + tokens[-1].text.count("'")
            continue
        if char.isdigit() or (
            char == "-" and index + 1 < length and text[index + 1].isdigit()
        ):
            token = _read_number(text, index)
            tokens.append(token)
            index = token.position + len(token.text)
            continue
        if char.isalpha() or char == "_":
            token = _read_word(text, index)
            tokens.append(token)
            index = token.position + len(token.text)
            continue
        if char in "!<>=":
            if char == "!" and text[index : index + 2] != "!=":
                raise RuleSyntaxError("expected '!=' after '!'", index)
            two = text[index : index + 2]
            if two in ("!=", "<=", ">="):
                tokens.append(Token(TokenType.OPERATOR, two, index))
                index += 2
            else:
                tokens.append(Token(TokenType.OPERATOR, char, index))
                index += 1
            continue
        simple = {
            ".": TokenType.DOT,
            ",": TokenType.COMMA,
            "?": TokenType.QUESTION,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
        }.get(char)
        if simple is not None:
            tokens.append(Token(simple, char, index))
            index += 1
            continue
        raise RuleSyntaxError(f"unexpected character {char!r}", index)
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _read_string(text: str, start: int) -> Token:
    """Read a single-quoted string constant starting at ``start``.

    A doubled quote (``''``) inside the string denotes a literal quote.
    The token's ``text`` holds the *unescaped* value.
    """
    parts: list[str] = []
    index = start + 1
    length = len(text)
    while index < length:
        char = text[index]
        if char == "'":
            if index + 1 < length and text[index + 1] == "'":
                parts.append("'")
                index += 2
                continue
            return Token(TokenType.STRING, "".join(parts), start)
        parts.append(char)
        index += 1
    raise RuleSyntaxError("unterminated string constant", start)


def _read_number(text: str, start: int) -> Token:
    index = start
    if text[index] == "-":
        index += 1
    while index < len(text) and text[index].isdigit():
        index += 1
    if index < len(text) and text[index] == "." and (
        index + 1 < len(text) and text[index + 1].isdigit()
    ):
        index += 1
        while index < len(text) and text[index].isdigit():
            index += 1
    return Token(TokenType.NUMBER, text[start:index], start)


def _read_word(text: str, start: int) -> Token:
    index = start
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    word = text[start:index]
    if word.lower() in KEYWORDS:
        return Token(TokenType.KEYWORD, word.lower(), start)
    return Token(TokenType.IDENT, word, start)
