"""Decomposition of normalized rules into atomic rules (paper, §3.3.1).

The procedure follows the paper:

1. Every predicate with a constant is removed and becomes a *triggering
   rule*; search-clause classes without such a predicate get a
   predicate-free triggering rule.
2. Multiple triggering rules over the same variable are connected with
   identity joins (the paper's ``a = b`` rules), which restores
   same-resource semantics after normalization split the predicates.
3. The remaining join predicates are peeled off one at a time, each
   producing a *join rule* whose inputs are the current producers of the
   two variables, until the original rule is itself a join rule.

The result is a :class:`DecomposedRule`: a tree of
:class:`~repro.rules.atoms.AtomNode` objects rooted at the *end rule*
(the atomic rule producing the subscription's results), with triggering
rules as leaves — exactly the dependency tree of the paper's Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DecompositionError
from repro.rdf.schema import Schema
from repro.rules.atoms import AtomNode, JoinAtom, TriggeringAtom, iter_atoms, make_join
from repro.rules.normalize import JoinPredicate, NormalizedRule

__all__ = ["DecomposedRule", "decompose_rule"]


@dataclass
class DecomposedRule:
    """The atomic rules of one subscription rule.

    ``end`` is the root of the dependency tree; ``atoms`` lists every
    distinct atom children-first (the order the registry persists them
    in).  ``source`` keeps the normalized rule for diagnostics.
    """

    end: AtomNode
    source: NormalizedRule
    atoms: list[AtomNode] = field(default_factory=list)

    @property
    def rdf_class(self) -> str:
        """The rule's *type*: the class of the resources it registers."""
        return self.end.rdf_class

    def triggering_atoms(self) -> list[TriggeringAtom]:
        return [a for a in self.atoms if isinstance(a, TriggeringAtom)]

    def join_atoms(self) -> list[JoinAtom]:
        return [a for a in self.atoms if isinstance(a, JoinAtom)]

    def depth(self) -> int:
        """Length of the longest path from a leaf to the end rule.

        The paper uses this as the bound on the number of filter
        iterations (Section 3.4).
        """

        def node_depth(node: AtomNode) -> int:
            if isinstance(node, TriggeringAtom):
                return 0
            return 1 + max(node_depth(node.left), node_depth(node.right))

        return node_depth(self.end)

    def render_tree(self) -> str:
        """An indented rendering of the dependency tree (Figure 5 style)."""
        lines: list[str] = []

        def walk(node: AtomNode, indent: int) -> None:
            lines.append("  " * indent + node.key)
            if isinstance(node, JoinAtom):
                walk(node.left, indent + 1)
                walk(node.right, indent + 1)

        walk(self.end, 0)
        return "\n".join(lines)


def decompose_rule(
    normalized: NormalizedRule,
    schema: Schema,
    named_producers: dict[str, AtomNode] | None = None,
) -> DecomposedRule:
    """Decompose a normalized rule into its atomic rules.

    ``named_producers`` maps extension names of previously registered
    named rules to their end atoms; variables bound to such an extension
    use the named rule's end atom as their initial producer instead of a
    class triggering rule (paper, Section 2.3: an extension may be
    "another subscription rule").
    """
    named_producers = named_producers or {}
    producers = _initial_producers(normalized, schema, named_producers)
    end = _peel_join_predicates(normalized, producers)
    atoms = list(iter_atoms(end))
    return DecomposedRule(end=end, source=normalized, atoms=atoms)


def _initial_producers(
    normalized: NormalizedRule,
    schema: Schema,
    named_producers: dict[str, AtomNode],
) -> dict[str, AtomNode]:
    """Producer atom per variable: triggering rules plus identity joins."""
    triggering: dict[str, list[TriggeringAtom]] = {}
    for predicate in normalized.constants:
        class_name = normalized.variable_class(predicate.variable)
        atom = TriggeringAtom(
            rdf_class=class_name,
            extension_classes=tuple(sorted(schema.extension_classes(class_name)))
            if schema.has_class(class_name)
            else (class_name,),
            prop=predicate.prop,
            operator=predicate.operator,
            value=predicate.value.sql_value(),
            numeric=predicate.numeric,
        )
        triggering.setdefault(predicate.variable, []).append(atom)

    producers: dict[str, AtomNode] = {}
    for variable in normalized.variables:
        class_name = normalized.variable_class(variable)
        extension = normalized.extensions.get(variable, class_name)
        base: AtomNode | None = named_producers.get(extension)
        atoms = _dedup_by_key(triggering.get(variable, []))
        # Deterministic fold order maximizes sharing across subscriptions.
        atoms.sort(key=lambda atom: atom.key)
        if base is None and not atoms:
            base = TriggeringAtom(
                rdf_class=class_name,
                extension_classes=tuple(
                    sorted(schema.extension_classes(class_name))
                )
                if schema.has_class(class_name)
                else (class_name,),
            )
        for atom in atoms:
            if base is None:
                base = atom
            else:
                base = make_join(
                    base,
                    class_name,
                    None,
                    "=",
                    atom,
                    class_name,
                    None,
                    register_side="left",
                )
        assert base is not None
        producers[variable] = base
    return producers


def _dedup_by_key(atoms: list[TriggeringAtom]) -> list[TriggeringAtom]:
    unique: dict[str, TriggeringAtom] = {}
    for atom in atoms:
        unique.setdefault(atom.key, atom)
    return list(unique.values())


def _peel_join_predicates(
    normalized: NormalizedRule, producers: dict[str, AtomNode]
) -> AtomNode:
    """Peel join predicates until the rule is itself a join rule.

    At each step a predicate is chosen whose non-kept variable is
    *consumable*: it appears in no other remaining predicate and is not
    the register variable.  Tree-shaped predicate graphs (all the rules
    the paper's language produces) always admit such a choice; cyclic
    graphs do not and are rejected, because a join rule registers only
    one of its inputs and cannot carry both forward.
    """
    remaining = [p for p in normalized.joins if not p.is_self_join]
    for predicate in normalized.joins:
        if predicate.is_self_join:
            _apply_self_join(predicate, normalized, producers)

    register_var = normalized.register
    usage: dict[str, int] = {}
    for predicate in remaining:
        for variable in predicate.variables():
            usage[variable] = usage.get(variable, 0) + 1

    while remaining:
        chosen_index = _choose_predicate(remaining, usage, register_var)
        if chosen_index is None:
            raise DecompositionError(
                "cyclic join graph: the rule cannot be decomposed into "
                "atomic rules (each join rule registers a single input)"
            )
        predicate = remaining.pop(chosen_index)
        left_var, right_var = predicate.variables()
        keep = _kept_variable(predicate, usage, register_var)
        join = make_join(
            producers[left_var],
            normalized.variable_class(left_var),
            predicate.left_prop,
            predicate.operator,
            producers[right_var],
            normalized.variable_class(right_var),
            predicate.right_prop,
            register_side="left" if keep == left_var else "right",
            numeric=predicate.numeric,
        )
        producers[keep] = join
        usage[left_var] -= 1
        usage[right_var] -= 1
    return producers[register_var]


def _choose_predicate(
    remaining: list[JoinPredicate], usage: dict[str, int], register_var: str
) -> int | None:
    for index, predicate in enumerate(remaining):
        left_var, right_var = predicate.variables()
        left_leaf = usage[left_var] == 1 and left_var != register_var
        right_leaf = usage[right_var] == 1 and right_var != register_var
        if len(remaining) == 1:
            return index
        if left_leaf or right_leaf:
            return index
    return None


def _kept_variable(
    predicate: JoinPredicate, usage: dict[str, int], register_var: str
) -> str:
    left_var, right_var = predicate.variables()
    if left_var == register_var:
        return left_var
    if right_var == register_var:
        return right_var
    left_consumable = usage[left_var] == 1
    if left_consumable and usage[right_var] > 1:
        return right_var
    if usage[right_var] == 1 and usage[left_var] > 1:
        return left_var
    # Both consumable (final predicate of a disconnected component cannot
    # happen — connectivity was checked); default deterministically.
    return left_var


def _apply_self_join(
    predicate: JoinPredicate,
    normalized: NormalizedRule,
    producers: dict[str, AtomNode],
) -> None:
    """Fold a self predicate (``c.a = c.b``) into the variable's producer."""
    variable = predicate.left_var
    class_name = normalized.variable_class(variable)
    base = producers[variable]
    producers[variable] = JoinAtom(
        left=base,
        right=base,
        left_class=class_name,
        right_class=class_name,
        left_prop=predicate.left_prop,
        right_prop=predicate.right_prop,
        operator=predicate.operator,
        register_side="left",
        numeric=predicate.numeric,
        self_join=True,
    )
