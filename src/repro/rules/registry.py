"""The persistent rule catalogue (paper, Sections 3.3.2–3.3.4).

The registry owns the tables ``atomic_rules``, ``rule_dependencies``,
``rule_groups``, the triggering index tables (``filter_rules_class`` and
the per-operator ``filter_rules_*``), plus ``subscriptions`` /
``subscription_rules`` / ``named_rules``.

Persisting a decomposed rule *merges its dependency tree with the global
dependency graph*: every atom is looked up by canonical rule text first
("There are no duplicates" — Section 3.3.4) and only missing atoms are
inserted, so equivalent rules and atomic rules shared between
subscriptions are evaluated only once.  Join rules are attached to their
rule group (Section 3.3.3) as they are created.

Reference counting (one count per subscription or named rule using an
atom) drives cleanup on unsubscription: atoms reaching zero references
with no remaining dependents are removed together with their index rows
and materialized results.
"""

from __future__ import annotations

import sqlite3
from collections import deque
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import RuleAnalysisError, SubscriptionError
from repro.rules.atoms import AtomNode, JoinAtom, TriggeringAtom
from repro.rules.decompose import DecomposedRule
from repro.semantics.rewrite import SemanticRewriter
from repro.semantics.store import SEMANTICS_MODES, SemanticStore
from repro.storage.engine import Database
from repro.storage.schema import COMPARISON_TABLES, filter_rules_table
from repro.text.index import drop_contains_rule, index_contains_rule

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.analysis.diagnostics import Diagnostic
    from repro.rdf.schema import Schema

__all__ = [
    "RuleRegistry",
    "RegisteredSubscription",
    "RuleMutation",
    "Subscription",
    "ANALYZE_POLICIES",
    "DEDUPE_MODES",
    "MUTATION_LOG_LIMIT",
    "SEMANTICS_MODES",
]

#: Valid values for the ``analyze=`` registration policy: ``"off"``
#: skips analysis, ``"warn"`` records diagnostics on the registration
#: result, ``"reject"`` additionally refuses to register when the
#: analyzer reports errors.
ANALYZE_POLICIES = ("off", "warn", "reject")

#: Valid values for the ``dedupe=`` knob: ``"off"`` registers every
#: decomposition as-is (atoms still share by exact key), ``"report"``
#: additionally records an MDV051 diagnostic when a semantically
#: equivalent rule is already stored, and ``"merge"`` lets the new
#: subscription share the equivalent rule's triggering entry outright —
#: fan-out is restored per subscription at notification time, so the
#: delivered streams are identical to the undeduped path.
DEDUPE_MODES = ("off", "report", "merge")


#: Length bound of :attr:`RuleRegistry.mutation_log`.  Far above any
#: realistic burst between two filter runs; consumers finding a gap the
#: log no longer covers fall back to a full index rebuild, so the bound
#: only caps memory, never correctness.
MUTATION_LOG_LIMIT = 4096


@dataclass(frozen=True, slots=True)
class RuleMutation:
    """One triggering-index change, in ``mutation_version`` order.

    Deliberately *not* an add/drop opcode: consumers re-sync the touched
    rule from the store, which is idempotent and immune to entries whose
    enclosing transaction later rolled back.
    """

    version: int
    rule_id: int


@dataclass(frozen=True, slots=True)
class Subscription:
    """One registered subscription of one subscriber."""

    sub_id: int
    subscriber: str
    rule_text: str
    end_rule: int


@dataclass
class RegisteredSubscription:
    """Result of registering a subscription.

    ``created`` lists the atoms that did not exist before, children
    before parents — the filter engine must initialize their
    materialized results against the already-registered metadata before
    the atoms can take part in incremental evaluation.
    """

    subscription: Subscription
    end_rule: int
    all_rule_ids: list[int] = field(default_factory=list)
    created: list[tuple[int, AtomNode]] = field(default_factory=list)
    #: Findings of the pre-registration analyzer (empty with ``analyze="off"``).
    diagnostics: list["Diagnostic"] = field(default_factory=list)

    @property
    def reused_existing_atoms(self) -> bool:
        return len(self.created) < len(self.all_rule_ids)


class RuleRegistry:
    """Catalogue of atomic rules, dependencies, groups and subscriptions."""

    def __init__(
        self,
        db: Database,
        deduplicate: bool = True,
        dedupe: str = "off",
        semantics: str = "off",
    ):
        self._db = db
        #: Merge equal atomic rules across subscriptions (the paper's
        #: design).  ``False`` disables the dependency-graph merge — an
        #: ablation knob: every subscription gets private atoms.
        self.deduplicate = deduplicate
        if dedupe not in DEDUPE_MODES:
            raise ValueError(
                f"unknown dedupe mode {dedupe!r}; expected one of "
                f"{DEDUPE_MODES}"
            )
        if dedupe != "off" and not deduplicate:
            raise ValueError(
                "dedupe requires atom deduplication (deduplicate=True)"
            )
        #: Semantic deduplication by canonical form (see DEDUPE_MODES).
        self.dedupe = dedupe
        if semantics not in SEMANTICS_MODES:
            raise ValueError(
                f"unknown semantics mode {semantics!r}; expected one of "
                f"{SEMANTICS_MODES}"
            )
        #: Active S-ToPSS degree (see :data:`SEMANTICS_MODES`).  With
        #: ``"off"`` no semantic rows are ever written and the registry
        #: is byte-identical to the purely syntactic design.
        self.semantics = semantics
        #: Vocabulary accessors (always available — the vocabulary is a
        #: property of the store; the knob gates only the *rewriting*).
        self.semantic_store = SemanticStore(db)
        self._rewriter: SemanticRewriter | None = (
            SemanticRewriter(self.semantic_store, semantics, db.metrics)
            if semantics != "off"
            else None
        )
        self._salt_counter = 0
        #: Cache of reconstructed atom nodes, keyed by rule id.
        self._node_cache: dict[int, AtomNode] = {}
        #: Bumped whenever triggering index rows change (inserts and
        #: atom garbage collection).  The sharded filter path
        #: (:mod:`repro.filter.shards`) keys its rule-replica refresh on
        #: this counter, so unchanged rule bases replicate exactly once.
        self.mutation_version: int = 0
        #: Bounded feed of the same changes, one :class:`RuleMutation`
        #: per version bump: the counting matcher
        #: (:mod:`repro.filter.counting`) applies it incrementally when
        #: it covers the gap since its last refresh.
        self.mutation_log: deque[RuleMutation] = deque(
            maxlen=MUTATION_LOG_LIMIT
        )

    # ------------------------------------------------------------------
    # Atom persistence (dependency-graph merge)
    # ------------------------------------------------------------------
    def ensure_atoms(
        self, decomposed: DecomposedRule
    ) -> tuple[int, list[int], list[tuple[int, AtomNode]]]:
        """Persist all atoms of a decomposition, deduplicating by key.

        Returns ``(end_rule_id, all_rule_ids, created)`` where ``created``
        holds ``(rule_id, atom)`` for newly inserted atoms in
        children-first order.
        """
        ids: dict[str, int] = {}
        created: list[tuple[int, AtomNode]] = []
        with self._db.transaction():
            for atom in decomposed.atoms:
                existing = (
                    self._lookup(atom.key) if self.deduplicate else None
                )
                if existing is not None:
                    ids[atom.key] = existing
                    continue
                rule_id = self._insert_atom(atom, ids)
                ids[atom.key] = rule_id
                created.append((rule_id, atom))
                self._node_cache[rule_id] = atom
        end_id = ids[decomposed.end.key]
        all_ids = [ids[atom.key] for atom in decomposed.atoms]
        return end_id, all_ids, created

    def bulk_register_triggering(
        self,
        subscriber: str,
        rules: "Iterable[tuple[str, TriggeringAtom]]",
    ) -> list[tuple[int, AtomNode]]:
        """Register many single-atom subscriptions in one transaction.

        The scale harness's fast path (the matcher benchmark and the
        nightly million-rule lane): skips the per-rule
        parse/normalize/decompose pipeline but funnels every atom
        through the same :meth:`_insert_triggering` as the normal path,
        so the mutation version/log, the trigram tables and the
        dedup-by-key contract stay intact.  Returns the created atoms
        (children-first, trivially: all triggering) for
        :meth:`~repro.filter.engine.FilterEngine.initialize_rules`;
        callers building a rule base over an *empty* metadata store may
        skip initialization — there is nothing to materialize.
        """
        created: list[tuple[int, AtomNode]] = []
        with self._db.transaction():
            for rule_text, atom in rules:
                existing = (
                    self._lookup(atom.key) if self.deduplicate else None
                )
                if existing is not None:
                    rule_id = existing
                else:
                    rule_id = self._insert_triggering(atom)
                    self._node_cache[rule_id] = atom
                    created.append((rule_id, atom))
                cursor = self._db.execute(
                    "INSERT INTO subscriptions (subscriber, rule_text, "
                    "end_rule) VALUES (?, ?, ?)",
                    (subscriber, rule_text, rule_id),
                )
                sub_id = int(cursor.lastrowid)
                self._db.execute(
                    "INSERT INTO subscription_rules (sub_id, rule_id) "
                    "VALUES (?, ?)",
                    (sub_id, rule_id),
                )
                self._db.execute(
                    "UPDATE atomic_rules SET refcount = refcount + 1 "
                    "WHERE rule_id = ?",
                    (rule_id,),
                )
        return created

    def _lookup(self, key: str) -> int | None:
        return self._db.scalar(
            "SELECT rule_id FROM atomic_rules WHERE rule_text = ?", (key,)
        )

    def _stored_key(self, atom: AtomNode) -> str:
        """The rule text persisted for ``atom``.

        With deduplication disabled a unique salt keeps the UNIQUE
        constraint satisfied while preventing any sharing.
        """
        if self.deduplicate:
            return atom.key
        self._salt_counter += 1
        return f"{atom.key}~!{self._salt_counter}"

    def _insert_atom(self, atom: AtomNode, ids: dict[str, int]) -> int:
        if isinstance(atom, TriggeringAtom):
            return self._insert_triggering(atom)
        return self._insert_join(atom, ids)

    def _insert_triggering(self, atom: TriggeringAtom) -> int:  # mdv: allow(MDV065): runs inside caller's transaction
        self.mutation_version += 1
        cursor = self._db.execute(
            "INSERT INTO atomic_rules (kind, rule_text, class) "
            "VALUES ('triggering', ?, ?)",
            (self._stored_key(atom), atom.rdf_class),
        )
        rule_id = int(cursor.lastrowid)
        self.mutation_log.append(
            RuleMutation(self.mutation_version, rule_id)
        )
        if atom.is_class_only:
            self._db.executemany(
                "INSERT INTO filter_rules_class (rule_id, class) VALUES (?, ?)",
                ((rule_id, cls) for cls in atom.extension_classes),
            )
        else:
            table = filter_rules_table(str(atom.operator))
            self._db.executemany(
                f"INSERT INTO {table} (rule_id, class, property, value, "
                f"numeric) VALUES (?, ?, ?, ?, ?)",
                (
                    (rule_id, cls, atom.prop, atom.value, int(atom.numeric))
                    for cls in atom.extension_classes
                ),
            )
            if atom.operator == "contains":
                # Maintain the trigram index (repro.text) alongside the
                # scan table.  Index maintenance is unconditional — the
                # engine's ``contains_index`` knob only selects the read
                # path, so scan and trigram engines can share one store.
                index_contains_rule(
                    self._db,
                    rule_id,
                    atom.extension_classes,
                    str(atom.prop),
                    str(atom.value),
                )
        self._insert_semantic_rows(rule_id, atom)
        return rule_id

    def _insert_semantic_rows(self, rule_id: int, atom: TriggeringAtom) -> None:  # mdv: allow(MDV065): runs inside caller's transaction
        """Add the active degree's expansion rows for one base atom.

        Every row carries ``semantic = 1`` so reconstruction
        (:meth:`_load_triggering`) and the rule-base audit can recover
        the subscriber's original predicate; both triggering paths give
        multiple index rows of one rule OR semantics, so no matcher
        change is needed.  ``INSERT OR IGNORE`` everywhere: expansions
        of synonym/taxonomy-overlapping vocabularies collide on the
        primary key and the first row wins.
        """
        rewriter = self._rewriter
        if rewriter is None:
            return
        expansion = rewriter.expand(atom)
        if expansion.is_empty:
            return
        metrics = self._db.metrics
        metrics.counter("semantics.rules_in").inc()
        inserted = 0
        if atom.is_class_only:
            for cls in expansion.extra_classes:
                cursor = self._db.execute(
                    "INSERT OR IGNORE INTO filter_rules_class "
                    "(rule_id, class, semantic) VALUES (?, ?, 1)",
                    (rule_id, cls),
                )
                inserted += max(cursor.rowcount, 0)
        else:
            base_table = filter_rules_table(str(atom.operator))
            all_classes = (*atom.extension_classes, *expansion.extra_classes)
            for cls in expansion.extra_classes:
                cursor = self._db.execute(
                    f"INSERT OR IGNORE INTO {base_table} "
                    f"(rule_id, class, property, value, numeric, semantic) "
                    f"VALUES (?, ?, ?, ?, ?, 1)",
                    (rule_id, cls, atom.prop, atom.value, int(atom.numeric)),
                )
                inserted += max(cursor.rowcount, 0)
            if atom.operator == "contains" and expansion.extra_classes:
                index_contains_rule(
                    self._db,
                    rule_id,
                    expansion.extra_classes,
                    str(atom.prop),
                    str(atom.value),
                )
            for variant in expansion.variants:
                table = filter_rules_table(variant.operator)
                for cls in all_classes:
                    cursor = self._db.execute(
                        f"INSERT OR IGNORE INTO {table} "
                        f"(rule_id, class, property, value, numeric, "
                        f"semantic) VALUES (?, ?, ?, ?, ?, 1)",
                        (
                            rule_id, cls, variant.prop, variant.value,
                            int(variant.numeric),
                        ),
                    )
                    inserted += max(cursor.rowcount, 0)
                if variant.operator == "contains":
                    index_contains_rule(
                        self._db,
                        rule_id,
                        all_classes,
                        variant.prop,
                        variant.value,
                    )
        metrics.counter("semantics.atoms_out").inc(inserted)

    def _insert_join(self, atom: JoinAtom, ids: dict[str, int]) -> int:  # mdv: allow(MDV065): runs inside caller's transaction
        left_id = ids.get(atom.left.key) or self._require(atom.left.key)
        right_id = ids.get(atom.right.key) or self._require(atom.right.key)
        group_id = self._ensure_group(atom)
        cursor = self._db.execute(
            "INSERT INTO atomic_rules (kind, rule_text, class, left_rule, "
            "right_rule, group_id) VALUES ('join', ?, ?, ?, ?, ?)",
            (self._stored_key(atom), atom.rdf_class, left_id, right_id, group_id),
        )
        rule_id = int(cursor.lastrowid)
        dependency_rows = [
            (left_id, rule_id, "left", group_id),
            (right_id, rule_id, "right", group_id),
        ]
        self._db.executemany(
            "INSERT INTO rule_dependencies (source_rule, target_rule, side, "
            "group_id) VALUES (?, ?, ?, ?)",
            dependency_rows,
        )
        return rule_id

    def _require(self, key: str) -> int:
        rule_id = self._lookup(key)
        if rule_id is None:
            raise SubscriptionError(f"missing child atom for key {key!r}")
        return rule_id

    def _ensure_group(self, atom: JoinAtom) -> int:
        signature = atom.group_signature
        existing = self._db.scalar(
            "SELECT group_id FROM rule_groups WHERE signature = ?",
            (signature,),
        )
        if existing is not None:
            return int(existing)
        cursor = self._db.execute(
            "INSERT INTO rule_groups (signature, left_class, right_class, "
            "left_property, right_property, operator, register_side, "
            "numeric_compare, self_join) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                signature,
                atom.left_class,
                atom.right_class,
                atom.left_prop,
                atom.right_prop,
                atom.operator,
                atom.register_side,
                int(atom.numeric),
                int(atom.self_join),
            ),
        )
        return int(cursor.lastrowid)

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def register_subscription(
        self,
        subscriber: str,
        rule_text: str,
        decomposed: DecomposedRule,
        analyze: str = "off",
    ) -> RegisteredSubscription:
        """Register a subscription and merge its atoms into the graph.

        ``analyze`` selects the pre-registration analysis policy (see
        :data:`ANALYZE_POLICIES`).  The subsumption check runs before the
        atoms are persisted — once merged, a candidate would compare
        equal to itself.  With ``"reject"``, analyzer errors raise
        :class:`~repro.errors.RuleAnalysisError` and nothing is stored.
        """
        diagnostics = self._analyze_candidate(
            subscriber, rule_text, decomposed, analyze
        )
        canon_hash: str | None = None
        equivalent_end: int | None = None
        if self.dedupe != "off":
            canon_hash, equivalent_end, dedupe_diagnostics = (
                self._dedupe_candidate(decomposed)
            )
            diagnostics.extend(dedupe_diagnostics)
        if equivalent_end is not None and self.dedupe == "merge":
            # Share the equivalent rule's triggering entry: no new atoms,
            # no index mutation — the subscription rides the stored tree.
            end_id = equivalent_end
            all_ids = self._tree_rule_ids(equivalent_end)
            created: list[int] = []
            self._db.metrics.counter("analysis.dedupe_merged").inc()
        else:
            end_id, all_ids, created = self.ensure_atoms(decomposed)
        with self._db.transaction():
            if canon_hash is not None and equivalent_end is None:
                # Inside the subscription's transaction: a torn
                # registration never leaves a canon entry without its
                # subscription (crash-safety, docs/DURABILITY.md).
                self._db.execute(
                    "INSERT OR IGNORE INTO rule_canon (canon_hash, rule_id) "
                    "VALUES (?, ?)",
                    (canon_hash, end_id),
                )
            duplicate = self._db.query_one(
                "SELECT sub_id FROM subscriptions WHERE subscriber = ? AND "
                "rule_text = ?",
                (subscriber, rule_text),
            )
            if duplicate is not None:
                raise SubscriptionError(
                    f"subscriber {subscriber!r} already registered this rule"
                )
            cursor = self._db.execute(
                "INSERT INTO subscriptions (subscriber, rule_text, end_rule) "
                "VALUES (?, ?, ?)",
                (subscriber, rule_text, end_id),
            )
            sub_id = int(cursor.lastrowid)
            unique_ids = sorted(set(all_ids))
            self._db.executemany(
                "INSERT INTO subscription_rules (sub_id, rule_id) "
                "VALUES (?, ?)",
                ((sub_id, rule_id) for rule_id in unique_ids),
            )
            self._db.executemany(
                "UPDATE atomic_rules SET refcount = refcount + 1 "
                "WHERE rule_id = ?",
                ((rule_id,) for rule_id in unique_ids),
            )
        subscription = Subscription(sub_id, subscriber, rule_text, end_id)
        return RegisteredSubscription(
            subscription, end_id, all_ids, created, diagnostics
        )

    def _analyze_candidate(
        self,
        subscriber: str,
        rule_text: str,
        decomposed: DecomposedRule,
        analyze: str,
    ) -> list["Diagnostic"]:
        """Run the pre-registration subsumption check per ``analyze``."""
        if analyze not in ANALYZE_POLICIES:
            raise ValueError(
                f"unknown analyze policy {analyze!r}; "
                f"expected one of {ANALYZE_POLICIES}"
            )
        if analyze == "off":
            return []
        from repro.analysis.subsume import check_subsumption

        report = check_subsumption(
            decomposed, self, subscriber=subscriber, source=rule_text
        )
        if analyze == "reject" and report.has_errors:
            raise RuleAnalysisError(
                f"rule rejected by pre-registration analysis: "
                f"{report.errors()[0].message}",
                diagnostics=report.diagnostics,
            )
        return list(report.diagnostics)

    def _dedupe_candidate(
        self, decomposed: DecomposedRule
    ) -> tuple[str, int | None, list["Diagnostic"]]:
        """Look the candidate's canonical form up in ``rule_canon``.

        Returns ``(canon_hash, equivalent_end_rule_or_None, diagnostics)``.
        A stored rule only counts as *equivalent* (not identical) when
        its end-rule key differs from the candidate's — identical keys
        already share atoms through :meth:`ensure_atoms`.
        """
        from repro.analysis.diagnostics import Diagnostic, Severity
        from repro.analysis.rulebase import canonicalize

        canon = canonicalize(decomposed.end)
        row = self._db.query_one(
            "SELECT rule_id FROM rule_canon WHERE canon_hash = ?",
            (canon.hash,),
        )
        if row is None:
            return canon.hash, None, []
        existing_id = int(row["rule_id"])
        diagnostics: list[Diagnostic] = []
        if self.load_atom(existing_id).key != decomposed.end.key:
            if self.dedupe == "report":
                diagnostics.append(
                    Diagnostic(
                        Severity.WARNING,
                        "MDV051",
                        f"rule is semantically equivalent to stored end "
                        f"rule {existing_id} (different spelling)",
                        hint="dedupe='merge' would share one triggering "
                        "entry",
                        source=decomposed.end.key,
                    )
                )
            else:
                diagnostics.append(
                    Diagnostic(
                        Severity.INFO,
                        "MDV051",
                        f"rule merged into equivalent stored end rule "
                        f"{existing_id}",
                        source=decomposed.end.key,
                    )
                )
        return canon.hash, existing_id, diagnostics

    def _tree_rule_ids(self, end_id: int) -> list[int]:
        """All rule ids of the stored dependency tree under ``end_id``."""
        seen: set[int] = set()
        stack = [end_id]
        while stack:
            rule_id = stack.pop()
            if rule_id in seen:
                continue
            seen.add(rule_id)
            row = self._db.query_one(
                "SELECT left_rule, right_rule FROM atomic_rules "
                "WHERE rule_id = ?",
                (rule_id,),
            )
            if row is None:
                raise SubscriptionError(f"no atomic rule with id {rule_id}")
            for child in (row["left_rule"], row["right_rule"]):
                if child is not None:
                    stack.append(int(child))
        return sorted(seen)

    def unsubscribe(self, subscriber: str, rule_text: str) -> list[int]:
        """Remove a subscription; returns the ids of atoms garbage-collected."""
        row = self._db.query_one(
            "SELECT sub_id FROM subscriptions WHERE subscriber = ? AND "
            "rule_text = ?",
            (subscriber, rule_text),
        )
        if row is None:
            raise SubscriptionError(
                f"subscriber {subscriber!r} has no subscription for this rule"
            )
        return self._remove_subscription(int(row["sub_id"]))

    def _remove_subscription(self, sub_id: int) -> list[int]:
        with self._db.transaction():
            rule_rows = self._db.query_all(
                "SELECT rule_id FROM subscription_rules WHERE sub_id = ?",
                (sub_id,),
            )
            rule_ids = [int(r["rule_id"]) for r in rule_rows]
            self._db.execute(
                "DELETE FROM subscriptions WHERE sub_id = ?", (sub_id,)
            )
            self._db.execute(
                "DELETE FROM subscription_rules WHERE sub_id = ?", (sub_id,)
            )
            self._db.executemany(
                "UPDATE atomic_rules SET refcount = refcount - 1 "
                "WHERE rule_id = ?",
                ((rule_id,) for rule_id in rule_ids),
            )
            return self._collect_dead_atoms()

    def _collect_dead_atoms(self) -> list[int]:
        """Delete unreferenced atoms (zero refcount, no live dependents)."""
        removed: list[int] = []
        while True:
            rows = self._db.query_all(
                "SELECT rule_id FROM atomic_rules ar WHERE refcount <= 0 "
                "AND NOT EXISTS (SELECT 1 FROM rule_dependencies rd "
                "WHERE rd.source_rule = ar.rule_id)"
            )
            if not rows:
                return removed
            dead = [int(r["rule_id"]) for r in rows]
            for rule_id in dead:
                self._delete_atom(rule_id)
            removed.extend(dead)

    def _delete_atom(self, rule_id: int) -> None:  # mdv: allow(MDV065): runs inside caller's transaction
        self.mutation_version += 1
        self.mutation_log.append(
            RuleMutation(self.mutation_version, rule_id)
        )
        self._db.execute(
            "DELETE FROM rule_dependencies WHERE target_rule = ?", (rule_id,)
        )
        self._db.execute(
            "DELETE FROM filter_rules_class WHERE rule_id = ?", (rule_id,)
        )
        for table in COMPARISON_TABLES.values():
            self._db.execute(f"DELETE FROM {table} WHERE rule_id = ?", (rule_id,))
        drop_contains_rule(self._db, rule_id)
        self._db.execute(
            "DELETE FROM materialized WHERE rule_id = ?", (rule_id,)
        )
        self._db.execute(
            "DELETE FROM rule_canon WHERE rule_id = ?", (rule_id,)
        )
        self._db.execute(
            "DELETE FROM atomic_rules WHERE rule_id = ?", (rule_id,)
        )
        self._node_cache.pop(rule_id, None)

    # ------------------------------------------------------------------
    # Semantic vocabulary (repro.semantics, docs/SEMANTICS.md)
    # ------------------------------------------------------------------
    def register_synonyms(self, kind: str, terms: list[str]) -> int:
        """Register a synonym set and re-expand the affected rule base."""
        with self._db.transaction():
            set_id = self.semantic_store.register_synonyms(kind, terms)
            self._reexpand_all()
        return set_id

    def register_taxonomy_edge(self, narrower: str, broader: str) -> list[int]:
        """Add a taxonomy edge; returns the re-expanded rule ids."""
        with self._db.transaction():
            added = self.semantic_store.register_taxonomy_edge(
                narrower, broader
            )
            affected = self._reexpand_all() if added else []
        self._db.metrics.gauge("semantics.taxonomy.closure_size").set(
            self.semantic_store.closure_size()
        )
        return affected

    def seed_schema_taxonomy(self, schema: "Schema") -> int:
        """Import the RDF-Schema class hierarchy into the taxonomy."""
        with self._db.transaction():
            added = self.semantic_store.seed_schema_taxonomy(schema)
            if added:
                self._reexpand_all()
        self._db.metrics.gauge("semantics.taxonomy.closure_size").set(
            self.semantic_store.closure_size()
        )
        return added

    def register_affine_mapping(
        self,
        source_property: str,
        target_property: str,
        scale: float,
        offset: float = 0.0,
    ) -> int:
        """Register an affine mapping and re-expand the rule base."""
        with self._db.transaction():
            map_id = self.semantic_store.register_affine_mapping(
                source_property, target_property, scale, offset
            )
            self._reexpand_all()
        return map_id

    def register_enum_mapping(
        self,
        source_property: str,
        target_property: str,
        pairs: list[tuple[str, str]],
    ) -> int:
        """Register an enum mapping and re-expand the rule base."""
        with self._db.transaction():
            map_id = self.semantic_store.register_enum_mapping(
                source_property, target_property, pairs
            )
            self._reexpand_all()
        return map_id

    def _reexpand_all(self) -> list[int]:
        """Re-derive every triggering rule's semantic rows.

        Vocabulary changes after registration (the marketplace's
        late-arriving taxonomy edge) invalidate previously derived
        expansions.  Each touched rule gets a mutation-log entry, so the
        counting matcher and the shard replicas resync incrementally —
        exactly the protocol ordinary registration uses.  Vocabulary
        registered *before* the rules (the recommended order; see
        docs/SEMANTICS.md) makes this a no-op loop over zero rules.
        """
        if self._rewriter is None:
            return []
        rows = self._db.query_all(
            "SELECT rule_id, class FROM atomic_rules "
            "WHERE kind = 'triggering' ORDER BY rule_id"
        )
        affected: list[int] = []
        for row in rows:
            rule_id = int(row["rule_id"])
            atom = self._load_triggering(rule_id, str(row["class"]))
            self._resync_semantic_rows(rule_id, atom)
            affected.append(rule_id)
        return affected

    def _resync_semantic_rows(self, rule_id: int, atom: TriggeringAtom) -> None:  # mdv: allow(MDV065): runs inside caller's transaction
        """Drop and re-derive one rule's semantic rows (idempotent)."""
        self.mutation_version += 1
        self.mutation_log.append(
            RuleMutation(self.mutation_version, rule_id)
        )
        self._db.execute(
            "DELETE FROM filter_rules_class WHERE rule_id = ? "
            "AND semantic = 1",
            (rule_id,),
        )
        for table in COMPARISON_TABLES.values():
            self._db.execute(
                f"DELETE FROM {table} WHERE rule_id = ? AND semantic = 1",
                (rule_id,),
            )
        if atom.operator == "contains":
            # The trigram tables carry no semantic flag; rebuild the
            # rule's whole text-index entry from the base atom, then let
            # the expansion re-add its rows.
            drop_contains_rule(self._db, rule_id)
            index_contains_rule(
                self._db,
                rule_id,
                atom.extension_classes,
                str(atom.prop),
                str(atom.value),
            )
        self._insert_semantic_rows(rule_id, atom)

    # ------------------------------------------------------------------
    # Named rules (rule-as-extension support)
    # ------------------------------------------------------------------
    def register_named_rule(
        self, name: str, rule_text: str, decomposed: DecomposedRule
    ) -> RegisteredSubscription:
        """Register a rule under a name usable as a search extension."""
        if self.named_rule(name) is not None:
            raise SubscriptionError(f"named rule {name!r} already exists")
        registration = self.register_subscription(
            f"~named~{name}", rule_text, decomposed
        )
        with self._db.transaction():
            self._db.execute(
                "INSERT INTO named_rules (name, rule_text, end_rule, class) "
                "VALUES (?, ?, ?, ?)",
                (name, rule_text, registration.end_rule, decomposed.rdf_class),
            )
        return registration

    def named_rule(self, name: str) -> tuple[int, str] | None:
        """``(end_rule_id, class)`` of a named rule, or ``None``."""
        row = self._db.query_one(
            "SELECT end_rule, class FROM named_rules WHERE name = ?", (name,)
        )
        if row is None:
            return None
        return int(row["end_rule"]), str(row["class"])

    def named_rule_types(self) -> dict[str, str]:
        """Extension name → registered class, for rule normalization."""
        rows = self._db.query_all("SELECT name, class FROM named_rules")
        return {row["name"]: row["class"] for row in rows}

    def named_rule_definitions(self) -> dict[str, str]:
        """Extension name → defining rule text, for query inlining."""
        rows = self._db.query_all("SELECT name, rule_text FROM named_rules")
        return {row["name"]: row["rule_text"] for row in rows}

    def named_producers(self) -> dict[str, AtomNode]:
        """Extension name → end atom node, for rule decomposition."""
        rows = self._db.query_all("SELECT name, end_rule FROM named_rules")
        return {
            row["name"]: self.load_atom(int(row["end_rule"])) for row in rows
        }

    # ------------------------------------------------------------------
    # Lookups used by the filter and the publisher
    # ------------------------------------------------------------------
    def end_rule_ids(self) -> set[int]:
        rows = self._db.query_all("SELECT DISTINCT end_rule FROM subscriptions")
        return {int(row["end_rule"]) for row in rows}

    def subscriptions_for(self, end_rule_ids: set[int]) -> list[Subscription]:
        if not end_rule_ids:
            return []
        placeholders = ",".join("?" * len(end_rule_ids))
        rows = self._db.query_all(
            f"SELECT sub_id, subscriber, rule_text, end_rule FROM "
            f"subscriptions WHERE end_rule IN ({placeholders}) "
            f"ORDER BY sub_id",
            sorted(end_rule_ids),
        )
        return [
            Subscription(
                int(r["sub_id"]), r["subscriber"], r["rule_text"],
                int(r["end_rule"]),
            )
            for r in rows
        ]

    def subscriptions_of(self, subscriber: str) -> list[Subscription]:
        rows = self._db.query_all(
            "SELECT sub_id, subscriber, rule_text, end_rule FROM "
            "subscriptions WHERE subscriber = ? ORDER BY sub_id",
            (subscriber,),
        )
        return [
            Subscription(
                int(r["sub_id"]), r["subscriber"], r["rule_text"],
                int(r["end_rule"]),
            )
            for r in rows
        ]

    def atom_count(self) -> int:
        return self._db.count("atomic_rules")

    def triggering_count(self) -> int:
        return self._db.count("atomic_rules", "kind = 'triggering'")

    def join_count(self) -> int:
        return self._db.count("atomic_rules", "kind = 'join'")

    def group_count(self) -> int:
        return self._db.count("rule_groups")

    # ------------------------------------------------------------------
    # Atom reconstruction
    # ------------------------------------------------------------------
    def load_atom(self, rule_id: int) -> AtomNode:
        """Rebuild the :class:`AtomNode` tree for a stored atomic rule."""
        cached = self._node_cache.get(rule_id)
        if cached is not None:
            return cached
        row = self._db.query_one(
            "SELECT kind, class, left_rule, right_rule, group_id "
            "FROM atomic_rules WHERE rule_id = ?",
            (rule_id,),
        )
        if row is None:
            raise SubscriptionError(f"no atomic rule with id {rule_id}")
        if row["kind"] == "triggering":
            node = self._load_triggering(rule_id, str(row["class"]))
        else:
            node = self._load_join(row)
        self._node_cache[rule_id] = node
        return node

    def _load_triggering(self, rule_id: int, rdf_class: str) -> TriggeringAtom:
        # ``semantic = 0`` everywhere: reconstruction recovers the
        # subscriber's *original* atom; expansion rows are derived state.
        class_rows = self._db.query_all(
            "SELECT class FROM filter_rules_class WHERE rule_id = ? "
            "AND semantic = 0 ORDER BY class",
            (rule_id,),
        )
        if class_rows:
            return TriggeringAtom(
                rdf_class=rdf_class,
                extension_classes=tuple(r["class"] for r in class_rows),
            )
        for operator, table in COMPARISON_TABLES.items():
            rows = self._db.query_all(
                f"SELECT class, property, value, numeric FROM {table} "
                f"WHERE rule_id = ? AND semantic = 0 ORDER BY class",
                (rule_id,),
            )
            if rows:
                return TriggeringAtom(
                    rdf_class=rdf_class,
                    extension_classes=tuple(r["class"] for r in rows),
                    prop=rows[0]["property"],
                    operator=operator,
                    value=rows[0]["value"],
                    numeric=bool(rows[0]["numeric"]),
                )
        raise SubscriptionError(
            f"triggering rule {rule_id} has no index rows"
        )

    def _load_join(self, row: "sqlite3.Row") -> JoinAtom:
        group = self._db.query_one(
            "SELECT * FROM rule_groups WHERE group_id = ?",
            (row["group_id"],),
        )
        if group is None:
            raise SubscriptionError(
                f"join rule references missing group {row['group_id']}"
            )
        left = self.load_atom(int(row["left_rule"]))
        right = self.load_atom(int(row["right_rule"]))
        return JoinAtom(
            left=left,
            right=right,
            left_class=group["left_class"],
            right_class=group["right_class"],
            left_prop=group["left_property"],
            right_prop=group["right_property"],
            operator=group["operator"],
            register_side=group["register_side"],
            numeric=bool(group["numeric_compare"]),
            self_join=bool(group["self_join"]),
        )
