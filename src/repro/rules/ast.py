"""Abstract syntax tree of the rule/query language.

The surface grammar (paper, Section 2.3)::

    rule        := 'search' extensions 'register' VAR ['where' disjunction]
    extensions  := IDENT VAR (',' IDENT VAR)*
    disjunction := conjunction ('or' conjunction)*
    conjunction := predicate ('and' predicate)*
    predicate   := operand OP operand | '(' disjunction ')'
    operand     := STRING | NUMBER | path
    path        := VAR ('.' PROP ['?'])*

Although the paper's implementation "does not support an or operator",
it notes rules containing it "can be split up easily" — this library
implements the split (see :mod:`repro.rules.normalize`), so the AST keeps
a boolean expression tree rather than a flat conjunction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.model import Literal

__all__ = [
    "Span",
    "PathStep",
    "PathExpr",
    "Constant",
    "Operand",
    "Predicate",
    "And",
    "Or",
    "BoolExpr",
    "ExtensionRef",
    "Rule",
    "Query",
    "flip_operator",
]

#: Character range ``(start, end)`` of a node in the original rule text.
#: Spans are carried for diagnostics only and excluded from equality, so
#: structurally identical nodes from different source positions compare
#: equal (rule deduplication relies on that).
Span = tuple[int, int]

#: Maps an operator to its mirror image, used when predicate operands are
#: swapped during canonicalization (``10 < c.memory`` ⇒ ``c.memory > 10``).
_FLIPPED = {
    "=": "=",
    "!=": "!=",
    "<": ">",
    "<=": ">=",
    ">": "<",
    ">=": "<=",
}


def flip_operator(operator: str) -> str:
    """The operator with its operands swapped.

    ``contains`` has no mirror image — a rule like
    ``'constant' contains c.host`` is rejected during normalization.
    """
    try:
        return _FLIPPED[operator]
    except KeyError:
        raise ValueError(f"operator {operator!r} cannot be flipped")


@dataclass(frozen=True, slots=True)
class PathStep:
    """One step of a path expression: a property name, optionally with
    the set-valued *any* operator ``?`` (paper, Section 2.3)."""

    prop: str
    any: bool = False

    def __str__(self) -> str:
        return f"{self.prop}?" if self.any else self.prop


@dataclass(frozen=True, slots=True)
class PathExpr:
    """``variable`` or ``variable.step1.step2…``.

    An empty ``steps`` tuple denotes the bare variable (used in OID-style
    predicates like ``c = URI`` and identity joins like ``a = b``).
    """

    variable: str
    steps: tuple[PathStep, ...] = ()
    span: Span | None = field(default=None, compare=False)

    @property
    def is_bare(self) -> bool:
        return not self.steps

    def __str__(self) -> str:
        return ".".join([self.variable, *map(str, self.steps)])


@dataclass(frozen=True, slots=True)
class Constant:
    """A literal constant operand."""

    literal: Literal

    def __str__(self) -> str:
        if self.literal.is_numeric:
            return self.literal.sql_value()
        escaped = str(self.literal.value).replace("'", "''")
        return f"'{escaped}'"


Operand = PathExpr | Constant


@dataclass(frozen=True, slots=True)
class Predicate:
    """An elementary predicate ``X o Y``."""

    left: Operand
    operator: str
    right: Operand
    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.left} {self.operator} {self.right}"


@dataclass(frozen=True, slots=True)
class And:
    """Conjunction of boolean expressions."""

    operands: tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return " and ".join(_parenthesize(op) for op in self.operands)


@dataclass(frozen=True, slots=True)
class Or:
    """Disjunction of boolean expressions."""

    operands: tuple["BoolExpr", ...]

    def __str__(self) -> str:
        return " or ".join(_parenthesize(op) for op in self.operands)


BoolExpr = Predicate | And | Or


def _parenthesize(expr: BoolExpr) -> str:
    if isinstance(expr, (And, Or)):
        return f"({expr})"
    return str(expr)


@dataclass(frozen=True, slots=True)
class ExtensionRef:
    """One ``Extension var`` entry of the search clause.

    ``name`` is either a schema class or the name of another registered
    subscription rule (paper, Section 2.3: an extension "is either some
    class defined in the schema or another subscription rule").
    """

    name: str
    variable: str
    span: Span | None = field(default=None, compare=False)

    def __str__(self) -> str:
        return f"{self.name} {self.variable}"


@dataclass(frozen=True, slots=True)
class Rule:
    """A parsed subscription rule."""

    extensions: tuple[ExtensionRef, ...]
    register: str
    where: BoolExpr | None = None

    def __str__(self) -> str:
        text = (
            f"search {', '.join(map(str, self.extensions))} "
            f"register {self.register}"
        )
        if self.where is not None:
            text += f" where {self.where}"
        return text

    def variables(self) -> dict[str, str]:
        """Mapping of variable name to extension name, in search order."""
        return {ext.variable: ext.name for ext in self.extensions}


@dataclass(frozen=True, slots=True)
class Query:
    """A parsed metadata query.

    MDV's query language "is quite similar to the rule language" (paper,
    Section 2.2); here it is the rule grammar without the ``register``
    clause — the first search variable's resources are the result.
    """

    extensions: tuple[ExtensionRef, ...]
    result: str
    where: BoolExpr | None = None

    def as_rule(self) -> Rule:
        """View this query as a rule registering its result variable.

        Lets the query evaluator reuse the rule normalization machinery.
        """
        return Rule(self.extensions, self.result, self.where)

    def __str__(self) -> str:
        text = f"search {', '.join(map(str, self.extensions))}"
        if self.where is not None:
            text += f" where {self.where}"
        return text
