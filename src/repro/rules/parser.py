"""Recursive-descent parser for the rule and query languages.

See :mod:`repro.rules.ast` for the grammar.  ``and`` binds tighter than
``or``; parentheses group.  The parser performs no schema checks — those
happen during normalization, which needs the schema anyway to resolve
path expressions.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError, RuleSyntaxError
from repro.rdf.model import Literal
from repro.rules.ast import (
    And,
    BoolExpr,
    Constant,
    ExtensionRef,
    Or,
    PathExpr,
    PathStep,
    Predicate,
    Query,
    Rule,
)
from repro.rules.tokens import OPERATORS, Token, TokenType, tokenize

__all__ = ["parse_rule", "parse_query"]


class _Parser:
    """Shared cursor machinery for rules and queries."""

    error_class: type[RuleSyntaxError] = RuleSyntaxError

    def __init__(self, text: str):
        self.text = text
        try:
            self.tokens = tokenize(text)
        except RuleSyntaxError as exc:
            raise self.error_class(str(exc)) from None
        self.index = 0

    # -- cursor helpers -------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        self.index += 1
        return token

    def fail(self, message: str) -> RuleSyntaxError:
        return self.error_class(
            f"{message}, found {self.current}", self.current.position
        )

    def expect_keyword(self, word: str) -> None:
        if not self.current.is_keyword(word):
            raise self.fail(f"expected {word!r}")
        self.advance()

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_ident(self, what: str) -> str:
        if self.current.type is not TokenType.IDENT:
            raise self.fail(f"expected {what}")
        return self.advance().text

    def expect_end(self) -> None:
        if self.current.type is not TokenType.END:
            raise self.fail("unexpected trailing input")

    def _end_of_previous(self) -> int:
        """End position of the most recently consumed token."""
        token = self.tokens[self.index - 1]
        if token.type is TokenType.STRING:
            # token.text is unescaped: add the quotes and escape doubles.
            return token.position + len(token.text) + 2 + token.text.count("'")
        return token.position + max(len(token.text), 1)

    # -- grammar productions --------------------------------------------
    def extensions(self) -> tuple[ExtensionRef, ...]:
        refs = [self.extension()]
        while self.current.type is TokenType.COMMA:
            self.advance()
            refs.append(self.extension())
        variables = [ref.variable for ref in refs]
        duplicates = {var for var in variables if variables.count(var) > 1}
        if duplicates:
            raise self.error_class(
                f"duplicate search variable(s): {', '.join(sorted(duplicates))}"
            )
        return tuple(refs)

    def extension(self) -> ExtensionRef:
        start = self.current.position
        name = self.expect_ident("an extension (class or rule) name")
        variable = self.expect_ident("a variable name")
        return ExtensionRef(name, variable, span=(start, self._end_of_previous()))

    def disjunction(self) -> BoolExpr:
        operands = [self.conjunction()]
        while self.accept_keyword("or"):
            operands.append(self.conjunction())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def conjunction(self) -> BoolExpr:
        operands = [self.primary()]
        while self.accept_keyword("and"):
            operands.append(self.primary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def primary(self) -> BoolExpr:
        if self.current.type is TokenType.LPAREN:
            self.advance()
            inner = self.disjunction()
            if self.current.type is not TokenType.RPAREN:
                raise self.fail("expected ')'")
            self.advance()
            return inner
        return self.predicate()

    def predicate(self) -> Predicate:
        start = self.current.position
        left = self.operand()
        operator = self.comparison_operator()
        right = self.operand()
        return Predicate(left, operator, right, span=(start, self._end_of_previous()))

    def comparison_operator(self) -> str:
        token = self.current
        if token.type is TokenType.OPERATOR and token.text in OPERATORS:
            self.advance()
            return token.text
        if token.is_keyword("contains"):
            self.advance()
            return "contains"
        raise self.fail("expected a comparison operator")

    def operand(self) -> Constant | PathExpr:
        token = self.current
        if token.type is TokenType.STRING:
            self.advance()
            return Constant(Literal(token.text))
        if token.type is TokenType.NUMBER:
            self.advance()
            text = token.text
            value: int | float = float(text) if "." in text else int(text)
            return Constant(Literal(value))
        if token.type is TokenType.IDENT:
            return self.path()
        raise self.fail("expected a constant or a path expression")

    def path(self) -> PathExpr:
        start = self.current.position
        variable = self.expect_ident("a variable")
        steps: list[PathStep] = []
        while self.current.type is TokenType.DOT:
            self.advance()
            prop = self.expect_ident("a property name")
            any_flag = False
            if self.current.type is TokenType.QUESTION:
                self.advance()
                any_flag = True
            steps.append(PathStep(prop, any_flag))
        return PathExpr(variable, tuple(steps), span=(start, self._end_of_previous()))


def parse_rule(text: str) -> Rule:
    """Parse a subscription rule.

    >>> rule = parse_rule(
    ...     "search CycleProvider c register c "
    ...     "where c.serverHost contains 'uni-passau.de'"
    ... )
    >>> rule.register
    'c'
    """
    parser = _Parser(text)
    parser.expect_keyword("search")
    extensions = parser.extensions()
    parser.expect_keyword("register")
    register = parser.expect_ident("the register variable")
    where: BoolExpr | None = None
    if parser.accept_keyword("where"):
        where = parser.disjunction()
    parser.expect_end()
    if register not in {ext.variable for ext in extensions}:
        raise RuleSyntaxError(
            f"register variable {register!r} is not bound in the search clause"
        )
    return Rule(extensions, register, where)


def parse_query(text: str) -> Query:
    """Parse a metadata query (the rule grammar without ``register``).

    The first search variable is the query result.
    """
    parser = _Parser(text)
    parser.error_class = QuerySyntaxError
    parser.expect_keyword("search")
    extensions = parser.extensions()
    where: BoolExpr | None = None
    if parser.accept_keyword("where"):
        where = parser.disjunction()
    parser.expect_end()
    return Query(extensions, extensions[0].variable, where)
