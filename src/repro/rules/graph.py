"""In-memory view of the global dependency graph (paper, Section 3.3.2).

The authoritative graph lives in the ``atomic_rules`` /
``rule_dependencies`` tables; this module loads it for analysis:
acyclicity checking (the filter's termination argument relies on it),
the longest leaf-to-root path (the paper's bound on filter iterations),
per-group statistics and a Graphviz rendering for debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.engine import Database

__all__ = ["GraphNode", "DependencyGraph"]


@dataclass(frozen=True, slots=True)
class GraphNode:
    """One atomic rule as seen by the graph view."""

    rule_id: int
    kind: str
    rdf_class: str
    group_id: int | None
    refcount: int


@dataclass
class DependencyGraph:
    """The merged dependency trees of all registered rules."""

    nodes: dict[int, GraphNode] = field(default_factory=dict)
    #: ``(source, target, side)`` directed edges: source feeds target.
    edges: list[tuple[int, int, str]] = field(default_factory=list)

    @classmethod
    def load(cls, db: Database) -> "DependencyGraph":
        graph = cls()
        for row in db.query_all(
            "SELECT rule_id, kind, class, group_id, refcount FROM atomic_rules"
        ):
            node = GraphNode(
                int(row["rule_id"]),
                row["kind"],
                row["class"],
                None if row["group_id"] is None else int(row["group_id"]),
                int(row["refcount"]),
            )
            graph.nodes[node.rule_id] = node
        for row in db.query_all(
            "SELECT source_rule, target_rule, side FROM rule_dependencies"
        ):
            graph.edges.append(
                (int(row["source_rule"]), int(row["target_rule"]), row["side"])
            )
        return graph

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def successors(self, rule_id: int) -> list[int]:
        return [target for source, target, __ in self.edges if source == rule_id]

    def predecessors(self, rule_id: int) -> list[int]:
        return [source for source, target, __ in self.edges if target == rule_id]

    def leaves(self) -> list[int]:
        """Triggering rules: nodes with no incoming dependency edges."""
        targets = {target for __, target, __side in self.edges}
        return sorted(set(self.nodes) - targets)

    def roots(self) -> list[int]:
        """End-rule candidates: nodes feeding no other rule."""
        sources = {source for source, __, __side in self.edges}
        return sorted(set(self.nodes) - sources)

    def is_acyclic(self) -> bool:
        """Kahn's algorithm; the decomposition guarantees acyclicity."""
        in_degree = {rule_id: 0 for rule_id in self.nodes}
        for __, target, __side in self.edges:
            in_degree[target] += 1
        frontier = [rule_id for rule_id, deg in in_degree.items() if deg == 0]
        visited = 0
        while frontier:
            current = frontier.pop()
            visited += 1
            for source, target, __side in self.edges:
                if source != current:
                    continue
                in_degree[target] -= 1
                if in_degree[target] == 0:
                    frontier.append(target)
        return visited == len(self.nodes)

    def longest_path_length(self) -> int:
        """The longest leaf-to-root path (max filter iterations, §3.4)."""
        depth: dict[int, int] = {}

        def node_depth(rule_id: int) -> int:
            if rule_id in depth:
                return depth[rule_id]
            inputs = self.predecessors(rule_id)
            value = 0 if not inputs else 1 + max(map(node_depth, inputs))
            depth[rule_id] = value
            return value

        if not self.nodes:
            return 0
        return max(node_depth(rule_id) for rule_id in self.nodes)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        triggering = sum(1 for n in self.nodes.values() if n.kind == "triggering")
        joins = len(self.nodes) - triggering
        groups = {
            n.group_id for n in self.nodes.values() if n.group_id is not None
        }
        return {
            "atoms": len(self.nodes),
            "triggering": triggering,
            "joins": joins,
            "groups": len(groups),
            "edges": len(self.edges),
            "max_depth": self.longest_path_length(),
        }

    def to_dot(self) -> str:
        """Graphviz rendering (debugging aid)."""
        lines = ["digraph dependency_graph {"]
        for node in self.nodes.values():
            shape = "box" if node.kind == "join" else "ellipse"
            label = f"{node.rule_id}: {node.rdf_class}"
            if node.group_id is not None:
                label += f" (g{node.group_id})"
            lines.append(
                f'  r{node.rule_id} [shape={shape}, label="{label}"];'
            )
        for source, target, side in self.edges:
            lines.append(f'  r{source} -> r{target} [label="{side}"];')
        lines.append("}")
        return "\n".join(lines)
