"""Rule normalization (paper, Section 3.3).

A rule is *normalized* when its search part contains all classes used in
its where part and path expressions are split into single property
accesses.  The paper's example::

    search   CycleProvider c
    register c
    where    c.serverHost contains 'uni-passau.de'
             and c.serverInformation.memory > 64

normalizes to::

    search   CycleProvider c, ServerInformation s
    register c
    where    c.serverHost contains 'uni-passau.de'
             and c.serverInformation = s
             and s.memory > 64

Shared path prefixes are deduplicated into a single fresh variable (the
paper's Section 3.3.1 example binds both ``…memory`` and ``…cpu`` paths
to the *same* variable ``s``), which later lets the decomposition restore
same-resource semantics through identity joins.

This module additionally implements the ``or`` split the paper mentions
(Section 2.3): a rule whose where part contains ``or`` is expanded into
disjunctive normal form and one normalized rule is produced per
conjunct.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.errors import NormalizationError, UnknownClassError
from repro.rdf.model import Literal
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rdf.schema import PropertyDef, PropertyKind, Schema
from repro.rules.ast import (
    And,
    BoolExpr,
    Constant,
    Or,
    PathExpr,
    PathStep,
    Predicate,
    Rule,
    flip_operator,
)

__all__ = [
    "ConstantPredicate",
    "JoinPredicate",
    "NormalizedRule",
    "normalize_rule",
    "to_dnf",
]

#: Operators that require numeric operands (paper, Section 3.3.4: the
#: implementation "supports comparisons with operators <, <=, >, and >=
#: only on numerical constants").
_ORDERING_OPERATORS = frozenset({"<", "<=", ">", ">="})

#: Upper bound on DNF conjuncts; protects against pathological rules.
_MAX_DNF_CONJUNCTS = 64


@dataclass(frozen=True, slots=True)
class ConstantPredicate:
    """A predicate comparing one property of one variable to a constant.

    Bare-variable comparisons (``c = URI``) are represented with the
    pseudo-property :data:`~repro.rdf.namespaces.RDF_SUBJECT`, matching
    the identity atoms the document decomposition emits (Section 3.2).
    """

    variable: str
    prop: str
    operator: str
    value: Literal
    numeric: bool = False

    def __str__(self) -> str:
        constant = Constant(self.value)
        if self.prop == RDF_SUBJECT:
            return f"{self.variable} {self.operator} {constant}"
        return f"{self.variable}.{self.prop} {self.operator} {constant}"


@dataclass(frozen=True, slots=True)
class JoinPredicate:
    """A predicate relating two variables.

    ``left_prop`` / ``right_prop`` are ``None`` for bare variables; the
    identity join ``a = b`` therefore has both properties ``None``.
    """

    left_var: str
    left_prop: str | None
    operator: str
    right_var: str
    right_prop: str | None
    numeric: bool = False

    def variables(self) -> tuple[str, str]:
        return self.left_var, self.right_var

    @property
    def is_identity(self) -> bool:
        return self.left_prop is None and self.right_prop is None

    @property
    def is_self_join(self) -> bool:
        return self.left_var == self.right_var

    def __str__(self) -> str:
        left = (
            self.left_var
            if self.left_prop is None
            else f"{self.left_var}.{self.left_prop}"
        )
        right = (
            self.right_var
            if self.right_prop is None
            else f"{self.right_var}.{self.right_prop}"
        )
        return f"{left} {self.operator} {right}"


@dataclass
class NormalizedRule:
    """A rule in normal form: flat variables, single-step predicates.

    ``variables`` maps each variable to its *class*; ``extensions`` keeps
    the original extension name from the search clause, which differs
    from the class when the extension is a named rule (Section 2.3).
    """

    variables: dict[str, str] = field(default_factory=dict)
    extensions: dict[str, str] = field(default_factory=dict)
    register: str = ""
    constants: list[ConstantPredicate] = field(default_factory=list)
    joins: list[JoinPredicate] = field(default_factory=list)
    source_text: str = ""

    def variable_class(self, variable: str) -> str:
        try:
            return self.variables[variable]
        except KeyError:
            raise NormalizationError(
                f"unbound variable {variable!r} in rule"
            ) from None

    def __str__(self) -> str:
        search = ", ".join(
            f"{cls} {var}" for var, cls in self.variables.items()
        )
        parts = [str(p) for p in self.constants] + [str(p) for p in self.joins]
        text = f"search {search} register {self.register}"
        if parts:
            text += " where " + " and ".join(parts)
        return text


def to_dnf(expr: BoolExpr) -> list[list[Predicate]]:
    """Expand a boolean expression into disjunctive normal form.

    Returns a list of conjuncts, each a list of predicates.  The rule
    language has no negation, so the expansion is a plain distribution
    of ``and`` over ``or``.
    """
    if isinstance(expr, Predicate):
        return [[expr]]
    if isinstance(expr, Or):
        result: list[list[Predicate]] = []
        for operand in expr.operands:
            result.extend(to_dnf(operand))
        _check_dnf_size(result)
        return result
    if isinstance(expr, And):
        result = [[]]
        for operand in expr.operands:
            branches = to_dnf(operand)
            result = [
                existing + branch
                for existing, branch in itertools.product(result, branches)
            ]
            _check_dnf_size(result)
        return result
    raise NormalizationError(f"unexpected where-clause node: {expr!r}")


def _check_dnf_size(conjuncts: list[list[Predicate]]) -> None:
    if len(conjuncts) > _MAX_DNF_CONJUNCTS:
        raise NormalizationError(
            f"rule expands to more than {_MAX_DNF_CONJUNCTS} conjuncts; "
            f"simplify the or-structure"
        )


class _Normalizer:
    """Normalizes one conjunct of one rule."""

    def __init__(
        self,
        rule: Rule,
        schema: Schema,
        named_extension_types: dict[str, str],
    ):
        self.rule = rule
        self.schema = schema
        self.named = named_extension_types
        self.result = NormalizedRule(register=rule.register, source_text=str(rule))
        self._fresh_counter = 0
        #: Maps (variable, path-prefix) to the variable holding that prefix,
        #: deduplicating shared prefixes (paper, Section 3.3.1 example).
        self._prefix_vars: dict[tuple[str, tuple[PathStep, ...]], str] = {}

    # -- variable / class bookkeeping -----------------------------------
    def bind_search_variables(self) -> None:
        for ext in self.rule.extensions:
            if self.schema.has_class(ext.name):
                self.result.variables[ext.variable] = ext.name
            elif ext.name in self.named:
                self.result.variables[ext.variable] = self.named[ext.name]
            else:
                raise UnknownClassError(ext.name)
            self.result.extensions[ext.variable] = ext.name

    def _fresh_variable(self, class_name: str) -> str:
        self._fresh_counter += 1
        variable = f"_v{self._fresh_counter}"
        self.result.variables[variable] = class_name
        self.result.extensions[variable] = class_name
        return variable

    # -- path splitting ---------------------------------------------------
    def reduce_path(self, path: PathExpr) -> tuple[str, PathStep | None]:
        """Split a path down to ``(variable, final-step-or-None)``.

        Every non-final step must be a reference property; a fresh
        variable (shared across identical prefixes) is introduced for
        each intermediate resource, emitting the identity predicates
        ``parent.prop = fresh``.
        """
        variable = path.variable
        if variable not in self.result.variables:
            raise NormalizationError(
                f"unbound variable {variable!r} in path {path}"
            )
        steps = path.steps
        if not steps:
            return variable, None
        current_var = variable
        for index, step in enumerate(steps[:-1]):
            current_var = self._step_into(
                variable, current_var, steps[: index + 1], step
            )
        final = steps[-1]
        self._check_any_flag(current_var, final)
        return current_var, final

    def _step_into(
        self,
        root_var: str,
        current_var: str,
        prefix: tuple[PathStep, ...],
        step: PathStep,
    ) -> str:
        key = (root_var, prefix)
        existing = self._prefix_vars.get(key)
        if existing is not None:
            return existing
        class_name = self.result.variable_class(current_var)
        prop = self.schema.property_def(class_name, step.prop)
        if not prop.is_reference:
            raise NormalizationError(
                f"path step {step.prop!r} on class {class_name!r} is not a "
                f"reference property"
            )
        self._check_any_flag(current_var, step)
        fresh = self._fresh_variable(str(prop.target_class))
        self.result.joins.append(
            JoinPredicate(current_var, step.prop, "=", fresh, None)
        )
        self._prefix_vars[key] = fresh
        return fresh

    def _check_any_flag(self, variable: str, step: PathStep) -> None:
        if not step.any:
            return
        class_name = self.result.variable_class(variable)
        prop = self.schema.property_def(class_name, step.prop)
        if not prop.multivalued:
            raise NormalizationError(
                f"the any operator '?' applies only to set-valued "
                f"properties; {step.prop!r} on {class_name!r} is "
                f"single-valued"
            )

    # -- predicate classification ------------------------------------------
    def add_predicate(self, predicate: Predicate) -> None:
        left, operator, right = predicate.left, predicate.operator, predicate.right
        left_const = isinstance(left, Constant)
        right_const = isinstance(right, Constant)
        if left_const and right_const:
            raise NormalizationError(
                f"predicate {predicate} compares two constants"
            )
        if left_const:
            if operator == "contains":
                raise NormalizationError(
                    f"'contains' needs the path on the left: {predicate}"
                )
            left, right = right, left
            operator = flip_operator(operator)
            left_const, right_const = right_const, True
        assert isinstance(left, PathExpr)
        if right_const:
            assert isinstance(right, Constant)
            self._add_constant_predicate(left, operator, right.literal)
        else:
            assert isinstance(right, PathExpr)
            self._add_join_predicate(left, operator, right)

    def _add_constant_predicate(
        self, path: PathExpr, operator: str, value: Literal
    ) -> None:
        variable, final = self.reduce_path(path)
        class_name = self.result.variable_class(variable)
        if final is None:
            # Bare variable versus constant: an OID-style predicate on
            # the resource's own URI reference (Section 3.2).
            if operator not in ("=", "!="):
                raise NormalizationError(
                    f"a variable can only be compared with = or != to a "
                    f"URI constant, not {operator!r}"
                )
            if value.is_numeric:
                raise NormalizationError(
                    f"variable {variable!r} compared to a numeric constant"
                )
            self.result.constants.append(
                ConstantPredicate(variable, RDF_SUBJECT, operator, value)
            )
            return
        prop = self.schema.property_def(class_name, final.prop)
        numeric = self._check_constant_types(class_name, prop, operator, value)
        self.result.constants.append(
            ConstantPredicate(variable, final.prop, operator, value, numeric)
        )

    def _check_constant_types(
        self,
        class_name: str,
        prop: PropertyDef,
        operator: str,
        value: Literal,
    ) -> bool:
        """Validate operator/type compatibility; return the numeric flag."""
        if operator in _ORDERING_OPERATORS:
            if not prop.is_numeric or not value.is_numeric:
                raise NormalizationError(
                    f"operator {operator!r} requires a numeric property and "
                    f"a numeric constant ({class_name}.{prop.name})"
                )
            return True
        if operator == "contains":
            if prop.kind is not PropertyKind.STRING or value.is_numeric:
                raise NormalizationError(
                    f"'contains' requires a string property and a string "
                    f"constant ({class_name}.{prop.name})"
                )
            return False
        # = / != compare canonical strings, following the paper's storage
        # design (constants are stored as strings; only the ordering
        # operators reconvert).  Integral floats render like integers
        # (see Literal.sql_value), keeping int/float equality consistent.
        if prop.is_numeric:
            if not value.is_numeric:
                raise NormalizationError(
                    f"numeric property {class_name}.{prop.name} compared "
                    f"to string constant {value.value!r}"
                )
            return False
        if prop.is_reference or prop.kind is PropertyKind.STRING:
            if value.is_numeric:
                raise NormalizationError(
                    f"property {class_name}.{prop.name} compared to numeric "
                    f"constant {value.value!r}"
                )
            return False
        return False

    def _add_join_predicate(
        self, left: PathExpr, operator: str, right: PathExpr
    ) -> None:
        if operator == "contains":
            raise NormalizationError(
                "'contains' joins between two paths are not supported"
            )
        left_var, left_final = self.reduce_path(left)
        right_var, right_final = self.reduce_path(right)
        left_prop = left_final.prop if left_final else None
        right_prop = right_final.prop if right_final else None
        numeric = self._join_numeric(
            left_var, left_prop, right_var, right_prop, operator
        )
        self.result.joins.append(
            JoinPredicate(left_var, left_prop, operator, right_var, right_prop, numeric)
        )

    def _join_numeric(
        self,
        left_var: str,
        left_prop: str | None,
        right_var: str,
        right_prop: str | None,
        operator: str,
    ) -> bool:
        def kind_of(variable: str, prop: str | None) -> PropertyKind | None:
            if prop is None:
                return None  # the resource's URI reference (a string)
            class_name = self.result.variable_class(variable)
            definition = self.schema.property_def(class_name, prop)
            if definition.is_reference:
                return None
            return definition.kind

        left_kind = kind_of(left_var, left_prop)
        right_kind = kind_of(right_var, right_prop)
        numeric_kinds = (PropertyKind.INTEGER, PropertyKind.FLOAT)
        left_numeric = left_kind in numeric_kinds
        right_numeric = right_kind in numeric_kinds
        if operator in _ORDERING_OPERATORS:
            if not (left_numeric and right_numeric):
                raise NormalizationError(
                    f"operator {operator!r} requires numeric properties on "
                    f"both sides of a join predicate"
                )
            return True
        if left_numeric != right_numeric:
            raise NormalizationError(
                "join predicate compares a numeric property with a "
                "non-numeric one"
            )
        if left_prop is None and right_prop is not None:
            self._check_reference_target(right_var, right_prop, left_var)
        if right_prop is None and left_prop is not None:
            self._check_reference_target(left_var, left_prop, right_var)
        return left_numeric and right_numeric

    def _check_reference_target(
        self, prop_var: str, prop: str, bare_var: str
    ) -> None:
        """A ``x.prop = y`` join requires ``prop`` to reference ``y``'s class."""
        class_name = self.result.variable_class(prop_var)
        definition = self.schema.property_def(class_name, prop)
        if not definition.is_reference:
            raise NormalizationError(
                f"property {class_name}.{prop} is compared with a variable "
                f"but is not a reference property"
            )
        target = str(definition.target_class)
        bare_class = self.result.variable_class(bare_var)
        if target not in self.schema.superclass_chain(
            bare_class
        ) and bare_class not in self.schema.superclass_chain(target):
            raise NormalizationError(
                f"reference {class_name}.{prop} targets {target!r} but is "
                f"joined with a {bare_class!r} variable"
            )

    # -- connectivity -----------------------------------------------------
    def check_connected(self) -> None:
        """Every variable must be join-connected to the register variable.

        Disconnected variables would give the rule cartesian-product
        semantics, which the atomic-rule decomposition cannot express.
        """
        reachable = {self.result.register}
        changed = True
        while changed:
            changed = False
            for join in self.result.joins:
                left, right = join.variables()
                if left in reachable and right not in reachable:
                    reachable.add(right)
                    changed = True
                elif right in reachable and left not in reachable:
                    reachable.add(left)
                    changed = True
        unreachable = set(self.result.variables) - reachable
        if unreachable:
            raise NormalizationError(
                f"variable(s) not connected to the register variable "
                f"{self.result.register!r}: {', '.join(sorted(unreachable))}"
            )


def normalize_rule(
    rule: Rule,
    schema: Schema,
    named_extension_types: dict[str, str] | None = None,
) -> list[NormalizedRule]:
    """Normalize a parsed rule.

    Returns one :class:`NormalizedRule` per DNF conjunct — a single
    element for or-free rules.  ``named_extension_types`` maps extension
    names that refer to previously registered named rules to the class of
    resources those rules register.
    """
    named = named_extension_types or {}
    conjuncts: list[list[Predicate]]
    if rule.where is None:
        conjuncts = [[]]
    else:
        conjuncts = to_dnf(rule.where)
    normalized: list[NormalizedRule] = []
    for conjunct in conjuncts:
        normalizer = _Normalizer(rule, schema, named)
        normalizer.bind_search_variables()
        for predicate in conjunct:
            normalizer.add_predicate(predicate)
        normalizer.check_connected()
        normalized.append(normalizer.result)
    return normalized
