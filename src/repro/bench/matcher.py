"""The ``matcher`` figure: triggering cost vs. rule-base size (1k→1M).

Beyond the paper: the paper's figures vary the *batch size* at modest
rule bases; this figure varies the **rule-base size** and compares the
triggering backends — the relational join (``triggering="sql"``, with
the ``contains`` scan and the trigram index) against the in-memory
counting matcher (``triggering="counting"``,
:mod:`repro.filter.counting`).

The rule base is a *selective mix* (one third each) of OID-shaped
equality rules (unique subject URIs), COMP-shaped range rules
(``synthValue >`` a unique bound) and CON-shaped ``contains`` rules
(unique 8-letter tokens).  Every measured document matches exactly one
OID rule and :data:`MATCH_TOKENS` contains rules, so the *hit* work is
constant across sizes and the curves isolate how the *miss* cost scales
with the rule base — the regime the ROADMAP's million-rule item is
about.  The mix is deliberately contains-heavy enough that the sql scan
arm grows linearly; a pure-equality base would be flat on every backend
and show nothing.

Rule bases this large cannot go through the per-rule parse pipeline in
reasonable time; :class:`MatcherBench` clones atoms decomposed from one
template rule of each shape and bulk-registers them
(:meth:`~repro.rules.registry.RuleRegistry.bulk_register_triggering`),
which keeps the mutation version/log and the trigram tables exactly as
the normal path would.

Quick mode sweeps 1k/10k/50k rules (the committed
``benchmarks/baselines/BENCH_matcher.json`` gate); ``--full`` adds the
nightly 10k/100k/1M lane.  Claims are ratio-based and hardware-honest:
absolute milliseconds move with the host, the *shape* (flat counting
curve, ≥10x over the scan join, sub-millisecond matching at the largest
size) is what must reproduce.
"""

from __future__ import annotations

import time
from dataclasses import replace

from repro.bench.harness import FilterBench, SweepResult
from repro.bench.reporting import FigureResult
from repro.obs.metrics import default_registry
from repro.rdf.schema import Schema
from repro.rules.atoms import TriggeringAtom
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.workload.documents import host_uri
from repro.workload.rules import comp_rule, con_rule, con_token, oid_rule
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "MATCH_TOKENS",
    "QUICK_SIZES",
    "FULL_SIZES",
    "MatcherBench",
    "mixed_rules",
    "figure_matcher",
]

#: ``contains`` tokens embedded in every measured document's host: each
#: document matches this many CON rules (plus its one OID rule) at any
#: rule-base size, so selectivity is constant and the curves measure
#: miss cost.
MATCH_TOKENS = 6

#: Rule-base sizes of the committed quick-mode baseline (PR perf gate).
QUICK_SIZES = (1_000, 10_000, 50_000)

#: The nightly scale lane (``--full``), up to the million-rule target.
FULL_SIZES = (10_000, 100_000, 1_000_000)

#: Batch sizes per measured point — small, so a point is dominated by
#: per-document match cost rather than amortization effects.
_BATCHES = (10, 20)


def _template_atom(rule_text: str, schema: Schema) -> TriggeringAtom:
    """The single triggering atom a template rule decomposes into."""
    normalized = normalize_rule(parse_rule(rule_text), schema)[0]
    decomposed = decompose_rule(normalized, schema)
    atom = decomposed.end
    assert isinstance(atom, TriggeringAtom), rule_text
    return atom


def mixed_rules(size, schema):
    """Yield ``(rule_text, atom)`` for the selective mixed rule base.

    Index ``i`` becomes an OID, COMP or CON shaped rule by ``i % 3``;
    the atoms are value-substituted clones of pipeline-decomposed
    templates, so their classes, properties and numeric flags are
    exactly what registration would produce.
    """
    oid_template = _template_atom(oid_rule(0), schema)
    comp_template = _template_atom(comp_rule(0), schema)
    con_template = _template_atom(con_rule(0), schema)
    for index in range(size):
        sub_index = index // 3
        shape = index % 3
        if shape == 0:
            yield (
                oid_rule(sub_index),
                replace(oid_template, value=str(host_uri(sub_index))),
            )
        elif shape == 1:
            yield (
                comp_rule(sub_index),
                replace(comp_template, value=str(sub_index)),
            )
        else:
            yield (
                con_rule(sub_index),
                replace(con_template, value=con_token(sub_index)),
            )


class MatcherBench(FilterBench):
    """A :class:`FilterBench` whose rule base is bulk-loaded.

    The spec is CON-shaped so the measured documents embed the
    :data:`MATCH_TOKENS` matched tokens; the prepared template holds
    the mixed base of :func:`mixed_rules` instead of the spec's pure
    rule type.  The store is empty while rules register, so atom
    initialization is skipped (nothing to materialize).
    """

    def __init__(self, size: int, **knobs):
        spec = WorkloadSpec("CON", size, match_fraction=MATCH_TOKENS / size)
        super().__init__(spec, **knobs)
        self.size = size

    def prepare(self) -> None:
        if self._template is not None:
            return
        started = time.perf_counter()
        db = Database()
        create_all(db)
        registry = RuleRegistry(db)
        registry.bulk_register_triggering(
            "bench-matcher", mixed_rules(self.size, self.schema)
        )
        db.execute("ANALYZE")
        db.commit()
        self._template = db
        self.prepare_seconds = time.perf_counter() - started


def _plateau(sweep: SweepResult) -> float:
    """Mean per-document cost over the sweep's points."""
    return sum(p.ms_per_document for p in sweep.points) / len(sweep.points)


def figure_matcher(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """Triggering backends across rule-base sizes (the ``matcher`` figure)."""
    sizes = sizes or (QUICK_SIZES if quick else FULL_SIZES)
    batches = batches or _BATCHES
    series: list[SweepResult] = []
    per_size: list[tuple[int, SweepResult, SweepResult, SweepResult]] = []
    match_hist = default_registry().histogram("counting.match_ms")
    match_by_size: dict[int, float] = {}
    for size in sizes:
        scan_bench = MatcherBench(size)
        try:
            trigram_bench = scan_bench.variant(contains_index="trigram")
            counting_bench = scan_bench.variant(triggering="counting")
            try:
                scan_sweep = scan_bench.sweep(batches)
                trigram_sweep = trigram_bench.sweep(batches)
                hist_before = match_hist.total
                counting_sweep = counting_bench.sweep(batches)
                documents = sum(
                    p.documents_registered for p in counting_sweep.points
                )
                # Matching-stage-only latency of this size's counting arm
                # (the engine's closure/result writes are excluded).
                match_by_size[size] = (
                    match_hist.total - hist_before
                ) / documents
            finally:
                trigram_bench.close()
                counting_bench.close()
        finally:
            scan_bench.close()
        scan_sweep.label_override = f"mix n={size} sql scan"
        trigram_sweep.label_override = f"mix n={size} sql trigram"
        counting_sweep.label_override = f"mix n={size} counting"
        series.extend((scan_sweep, trigram_sweep, counting_sweep))
        per_size.append((size, scan_sweep, trigram_sweep, counting_sweep))
    figure = FigureResult(
        "Matcher",
        "triggering backends — per-document cost vs. rule-base size "
        "(mixed eq/range/contains base, constant hits per document)",
        series=series,
    )
    hits_identical = all(
        scan.batch_sizes() == trigram.batch_sizes() == counting.batch_sizes()
        and [p.hits for p in scan.points]
        == [p.hits for p in trigram.points]
        == [p.hits for p in counting.points]
        for __, scan, trigram, counting in per_size
    )
    largest, scan_l, trigram_l, counting_l = per_size[-1]
    smallest, __, __, counting_s = per_size[0]
    second = per_size[-2][0] if len(per_size) > 1 else largest
    scan_speedup = _plateau(scan_l) / _plateau(counting_l)
    trigram_speedup = _plateau(trigram_l) / _plateau(counting_l)
    growth = _plateau(counting_l) / _plateau(counting_s)
    size_ratio = largest / smallest
    figure.claims = [
        (
            "sql scan, sql trigram and counting backends register "
            "identical hit counts at every size and batch (exactness)",
            hits_identical,
        ),
        (
            f"the counting matcher is >=10x cheaper per document than "
            f"the sql scan join at n={largest} "
            f"({_plateau(scan_l):.2f} ms vs {_plateau(counting_l):.3f} ms "
            f"on this host; absolute times are hardware-dependent, the "
            f"ratio is the claim — measured {scan_speedup:.0f}x)",
            scan_speedup >= 10.0,
        ),
        (
            f"the counting matcher also beats the trigram-indexed sql "
            f"path at n={largest} ({trigram_speedup:.1f}x)",
            trigram_speedup > 1.0,
        ),
        (
            f"counting per-document cost grows sub-linearly in the "
            f"rule-base size ({growth:.2f}x cost for {size_ratio:.0f}x "
            f"more rules)",
            growth < size_ratio / 2,
        ),
        (
            f"counting matching stage (index probes + counters, "
            f"excluding result writes) is sub-millisecond per document "
            f"at n={second} ({match_by_size[second]:.3f} ms) and keeps a "
            f">=10x margin over the whole sql scan pipeline at "
            f"n={largest} ({match_by_size[largest]:.3f} ms matching vs "
            f"{_plateau(scan_l):.2f} ms total; milliseconds are "
            f"hardware-dependent, the bound and the ratio are the claim)",
            match_by_size[second] < 1.0
            and match_by_size[largest] * 10.0 <= _plateau(scan_l),
        ),
    ]
    return figure
