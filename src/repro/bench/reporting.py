"""Rendering of benchmark results (the paper's figures).

Plain-text tables and ASCII charts for humans, plus machine-readable
``BENCH_<figure>.json`` artifacts (wall time and hot-path counters per
measured point) for the CI perf-regression gate
(:mod:`repro.bench.regression`).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.bench.harness import SweepResult

__all__ = [
    "FigureResult",
    "figure_slug",
    "figure_to_dict",
    "render_chart",
    "render_claims",
    "render_figure",
    "write_bench_json",
]


@dataclass
class FigureResult:
    """One reproduced figure: curves plus checked qualitative claims."""

    figure_id: str
    title: str
    series: list[SweepResult] = field(default_factory=list)
    #: ``(claim text, holds?)`` — the paper's qualitative findings.
    claims: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(holds for __, holds in self.claims)


def render_figure(figure: FigureResult) -> str:
    """An ASCII table: rows = batch sizes, columns = series (ms/doc)."""
    lines = [f"== {figure.figure_id}: {figure.title} =="]
    if not figure.series:
        lines.append("(no data)")
        return "\n".join(lines)
    batch_sizes = sorted(
        {point.batch_size for sweep in figure.series for point in sweep.points}
    )
    header = ["batch"] + [sweep.label for sweep in figure.series]
    widths = [max(7, len(h) + 2) for h in header]
    lines.append("".join(h.rjust(w) for h, w in zip(header, widths)))
    for batch_size in batch_sizes:
        cells = [str(batch_size)]
        for sweep in figure.series:
            try:
                cells.append(f"{sweep.cost_at(batch_size):.2f}")
            except KeyError:
                cells.append("-")
        lines.append(
            "".join(cell.rjust(w) for cell, w in zip(cells, widths))
        )
    lines.append("(values: average registration cost per document, ms)")
    return "\n".join(lines)


def render_claims(figure: FigureResult) -> str:
    lines = [f"-- qualitative claims ({figure.figure_id}) --"]
    for text, holds in figure.claims:
        status = "HOLDS" if holds else "VIOLATED"
        lines.append(f"  [{status:8s}] {text}")
    return "\n".join(lines)


def render_chart(figure: FigureResult, width: int = 60, height: int = 12) -> str:
    """A rough ASCII line chart of the figure's curves.

    The x axis is the batch-size *index* (batch sizes are log-spaced, so
    plotting by index matches the paper's visual layout); the y axis is
    ms per document.  One plot character per series: ``*``, ``o``, ``+``,
    ``x``.
    """
    if not figure.series or not figure.series[0].points:
        return "(no data)"
    markers = "*o+x#@"
    batch_sizes = sorted(
        {p.batch_size for sweep in figure.series for p in sweep.points}
    )
    top = max(
        p.ms_per_document for sweep in figure.series for p in sweep.points
    )
    if top <= 0:
        return "(no data)"
    grid = [[" "] * width for __ in range(height)]
    for series_index, sweep in enumerate(figure.series):
        marker = markers[series_index % len(markers)]
        for point in sweep.points:
            x_index = batch_sizes.index(point.batch_size)
            column = (
                0
                if len(batch_sizes) == 1
                else round(x_index * (width - 1) / (len(batch_sizes) - 1))
            )
            row = height - 1 - round(
                point.ms_per_document / top * (height - 1)
            )
            grid[row][column] = marker
    lines = [f"{figure.figure_id} — ms/document (y max {top:.2f})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        " batch: " + " ".join(str(b) for b in batch_sizes)
    )
    for series_index, sweep in enumerate(figure.series):
        lines.append(
            f" {markers[series_index % len(markers)]} = {sweep.label}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Machine-readable artifacts (BENCH_<figure>.json)
# ----------------------------------------------------------------------
def figure_slug(figure_id: str) -> str:
    """``"Figure 12"`` → ``"fig12"`` (artifact/CLI naming)."""
    match = re.search(r"(\d+)", figure_id)
    if match is None:
        return re.sub(r"[^a-z0-9]+", "_", figure_id.lower()).strip("_")
    return f"fig{match.group(1)}"


def figure_to_dict(figure: FigureResult) -> dict:
    """The JSON shape of one figure's measurements.

    Every measured point carries its wall time (``total_seconds`` and
    the derived ``ms_per_document``) plus the hot-path counter deltas
    captured while measuring it, so regressions can be localized (wall
    time moved but counters did not → environment noise; counters moved
    → a behavioural change).
    """
    total_seconds = sum(
        point.total_seconds for sweep in figure.series for point in sweep.points
    )
    return {
        "figure": figure_slug(figure.figure_id),
        "figure_id": figure.figure_id,
        "title": figure.title,
        "wall_time_seconds": round(total_seconds, 6),
        "claims": [
            {"text": text, "holds": holds} for text, holds in figure.claims
        ],
        "series": [
            {
                "label": sweep.label,
                "prepare_seconds": round(sweep.prepare_seconds, 6),
                "points": [
                    {
                        "batch_size": point.batch_size,
                        "repeats": point.repeats,
                        "total_seconds": round(point.total_seconds, 6),
                        "ms_per_document": round(point.ms_per_document, 6),
                        "hits": point.hits,
                        "iterations": point.iterations,
                        "counters": {
                            name: value for name, value in point.counters
                        },
                    }
                    for point in sweep.points
                ],
            }
            for sweep in figure.series
        ],
    }


def write_bench_json(
    figure: FigureResult,
    directory: str | Path = ".",
    extra: dict | None = None,
) -> Path:
    """Write ``BENCH_<figure>.json`` into ``directory``; returns the path.

    ``extra`` entries (e.g. the CLI's end-to-end elapsed time) are merged
    into the top level of the payload.
    """
    target = Path(directory) / f"BENCH_{figure_slug(figure.figure_id)}.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = figure_to_dict(figure)
    if extra:
        payload.update(extra)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
