"""Service-tier benchmark — the ``service`` figure.

Not a paper figure: this sweep measures the real process-level service
tier end to end.  A ``python -m repro.mdv serve`` MDP daemon is booted
as a subprocess; N concurrent clients (asyncio coroutines, one TCP
connection each) stream ``register_document`` requests through the
:mod:`repro.net.frames` protocol and every round-trip is timed into an
:class:`~repro.obs.metrics.Histogram` — the figure reports throughput
(messages/second) and p50/p99 request latency per concurrency level,
writing ``BENCH_service.json`` for the CI perf-regression gate.

The numbers bound the whole stack: frame encode/decode, the wire
codec, the daemon's queue dispatch onto its state-owning main thread,
the filter pass, and the response path.  Latency quantiles come from
:meth:`Histogram.quantile`, so they are bucket-boundary approximations
(the same resolution the observability tier reports everywhere else).
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from collections.abc import Sequence

from repro.bench.harness import MeasurementPoint, SweepResult
from repro.bench.reporting import FigureResult
from repro.net.codec import to_wire
from repro.net.frames import PROTOCOL_VERSION, FrameDecoder, encode_frame
from repro.obs.metrics import Histogram
from repro.workload.documents import benchmark_document
from repro.workload.scenarios import WorkloadSpec
from repro.workload.socket_chaos import launch_node

__all__ = [
    "figure_service",
    "SERVICE_CLIENTS_QUICK",
    "SERVICE_CLIENTS_FULL",
    "SERVICE_REQUESTS_PER_CLIENT",
]

#: Concurrency levels (clients = connections) per mode.
SERVICE_CLIENTS_QUICK = (1, 4)
SERVICE_CLIENTS_FULL = (1, 4, 8)

#: Requests each client sends per point.
SERVICE_REQUESTS_PER_CLIENT = 30

#: Latency buckets sized for a loopback daemon round-trip.
_BUCKETS_MS = (
    0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
    256.0, 512.0, 1024.0, 2048.0,
)

#: Every point must sustain at least this throughput (a deliberately
#: conservative floor — CI machines vary; the perf gate tracks drift).
_MIN_MSGS_PER_SEC = 25.0

#: p99 round-trip ceiling at every concurrency level.
_P99_CEILING_MS = 2048.0

_READ_CHUNK = 64 * 1024


async def _client_worker(
    host: str,
    port: int,
    worker_id: int,
    requests: int,
    histogram: Histogram,
) -> int:
    """One connection streaming register_document requests; returns the
    number of successful round-trips."""
    reader, writer = await asyncio.open_connection(host, port)
    decoder = FrameDecoder()
    completed = 0
    try:
        for ordinal in range(requests):
            document = benchmark_document(
                worker_id * 100_000 + ordinal, memory=ordinal % 1024
            )
            frame = encode_frame({
                "v": PROTOCOL_VERSION,
                "type": "request",
                "id": ordinal + 1,
                "source": f"bench-{worker_id}",
                "destination": "mdp-bench",
                "kind": "register_document",
                "payload": to_wire(document),
            })
            started = time.perf_counter()
            writer.write(frame)
            await writer.drain()
            while True:
                reply = decoder.next_frame()
                if reply is not None:
                    break
                chunk = await reader.read(_READ_CHUNK)
                if not chunk:
                    raise ConnectionError("daemon closed the connection")
                decoder.feed(chunk)
            histogram.observe((time.perf_counter() - started) * 1000.0)
            if reply.get("type") != "response":
                raise RuntimeError(f"daemon answered {reply!r}")
            completed += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover - teardown
            pass
    return completed


async def _run_point(
    host: str, port: int, clients: int, requests: int, histogram: Histogram
) -> int:
    results = await asyncio.gather(*(
        _client_worker(host, port, worker_id, requests, histogram)
        for worker_id in range(clients)
    ))
    return sum(results)


def _measure(port: int, clients: int) -> MeasurementPoint:
    histogram = Histogram(_BUCKETS_MS)
    expected = clients * SERVICE_REQUESTS_PER_CLIENT
    started = time.perf_counter()
    completed = asyncio.run(
        _run_point("127.0.0.1", port, clients,
                   SERVICE_REQUESTS_PER_CLIENT, histogram)
    )
    elapsed = time.perf_counter() - started
    if completed != expected:
        raise RuntimeError(
            f"only {completed}/{expected} requests completed at "
            f"{clients} clients"
        )
    msgs_per_sec = completed / elapsed if elapsed > 0 else 0.0
    return MeasurementPoint(
        spec=WorkloadSpec("OID", 1),
        batch_size=clients,
        repeats=1,
        total_seconds=elapsed,
        hits=completed,
        iterations=completed,
        repeat_seconds=(elapsed,),
        counters=(
            ("service.msgs_per_sec", msgs_per_sec),
            ("service.p50_ms", histogram.quantile(0.5)),
            ("service.p99_ms", histogram.quantile(0.99)),
            ("service.mean_ms", histogram.mean),
        ),
    )


def figure_service(
    quick: bool = True, clients: Sequence[int] | None = None
) -> FigureResult:
    """Daemon throughput and latency quantiles vs. concurrent clients."""
    if clients is not None:
        levels = tuple(clients)
    else:
        levels = SERVICE_CLIENTS_QUICK if quick else SERVICE_CLIENTS_FULL
    with tempfile.TemporaryDirectory() as scratch:
        config_path = os.path.join(scratch, "mdp-bench.json")
        with open(config_path, "w", encoding="utf-8") as handle:
            json.dump({
                "name": "mdp-bench",
                "role": "mdp",
                "port": 0,
                "peers": {},
            }, handle)
        prepare_started = time.perf_counter()
        node = launch_node(config_path)
        prepare_seconds = time.perf_counter() - prepare_started
        try:
            points = [_measure(node.port, level) for level in levels]
        finally:
            node.terminate()
    figure = FigureResult(
        "Service",
        "served MDP daemon over real sockets — throughput and request "
        "latency (p50/p99) vs. concurrent clients",
        series=[
            SweepResult(
                spec=WorkloadSpec("OID", 1),
                points=points,
                prepare_seconds=prepare_seconds,
                label_override="mdv serve register_document round-trips",
            )
        ],
    )
    by_level = dict(zip(levels, points))
    rates = {
        level: dict(point.counters)["service.msgs_per_sec"]
        for level, point in by_level.items()
    }
    p99s = {
        level: dict(point.counters)["service.p99_ms"]
        for level, point in by_level.items()
    }
    top = max(levels)
    figure.claims = [
        (
            f"every concurrency level sustains at least "
            f"{_MIN_MSGS_PER_SEC:.0f} msgs/sec "
            f"(min {min(rates.values()):.0f})",
            min(rates.values()) >= _MIN_MSGS_PER_SEC,
        ),
        (
            f"p99 round-trip stays within {_P99_CEILING_MS:.0f}ms at "
            f"{top} concurrent clients ({p99s[top]:.1f}ms)",
            p99s[top] <= _P99_CEILING_MS,
        ),
        (
            "every request was answered at every concurrency level",
            all(
                point.hits == point.batch_size * SERVICE_REQUESTS_PER_CLIENT
                for point in points
            ),
        ),
    ]
    return figure
