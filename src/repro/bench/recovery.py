"""Startup-recovery benchmark — the ``recovery`` figure.

Not a paper figure: this sweep times
:class:`repro.mdv.recovery.RecoveryManager` against file-backed stores
of growing size, writing ``BENCH_recovery.json`` for the CI
perf-regression gate like the Figure 11–15 sweeps do.

Each point builds a provider store of N benchmark documents (plus a
small fixed rule base with trigram-indexed ``contains`` rules), tears
the derived text index — a repair with real work, proportional to the
rule base — and times one full ``recover()`` pass: rollback, scratch
clearing, the MDV03x invariant audit, every repair, and the verifying
re-audit.  ``ms_per_document`` therefore reads as *milliseconds of
recovery per stored document*.

Two series pin the durability-profile contract (docs/DURABILITY.md):
the ``fast`` profile (MEMORY journal, synchronous OFF) and the ``safe``
profile (WAL, synchronous NORMAL) recover the same stores, and the
figure's claims bound both the absolute budget, the growth of per-
document cost (the scans are near-linear) and the safe-over-fast
overhead (recovery is read-dominant, so WAL must stay cheap).
"""

from __future__ import annotations

import gc
import os
import tempfile
import time
from collections.abc import Sequence

from repro.bench.harness import MeasurementPoint, SweepResult
from repro.bench.reporting import FigureResult
from repro.mdv.provider import MetadataProvider
from repro.mdv.recovery import RecoveryManager
from repro.obs.metrics import default_registry
from repro.rdf.schema import objectglobe_schema
from repro.storage.engine import Database
from repro.workload.documents import benchmark_document
from repro.workload.rules import comp_rule, con_rule, con_token
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "figure_recovery",
    "RECOVERY_SIZES",
    "RECOVERY_BUDGET_SECONDS",
]

#: Store sizes (documents) for the quick sweep; ``--full`` quadruples
#: the largest.
RECOVERY_SIZES = (50, 200, 800)

#: The largest store must recover within this budget (single-threaded).
RECOVERY_BUDGET_SECONDS = 10.0

#: Per-document recovery cost may grow at most this factor from the
#: smallest to the largest store (near-linear scans).
_SCALING_FACTOR = 8.0

#: ``safe`` may cost at most this factor over ``fast`` on the largest
#: store (recovery is read-dominant; WAL reads are cheap).
_SAFE_OVERHEAD_FACTOR = 3.0

#: Fixed rule base per store: a few COMP thresholds plus indexable
#: ``contains`` rules so the torn-text-index repair does real work.
_COMP_RULES = 4
_CON_RULES = 4


def _build_store(path: str, size: int, durability: str) -> float:
    """Populate one file-backed provider store; returns build seconds."""
    schema = objectglobe_schema()
    started = time.perf_counter()
    db = Database(path, durability=durability)
    provider = MetadataProvider(
        schema, name="mdp", db=db, contains_index="trigram"
    )
    for index in range(_COMP_RULES):
        provider.subscribe("lmr", comp_rule(2 + index))
    for index in range(1, _CON_RULES + 1):
        provider.subscribe("lmr", con_rule(index))
    token = con_token(1)
    for index in range(size):
        host = (
            f"host{index}.{token}.example.org" if index % 2 else None
        )
        provider.register_document(
            benchmark_document(
                index, synth_value=index % 10, server_host=host
            )
        )
    return time.perf_counter() - started


def _measure(size: int, durability: str) -> tuple[MeasurementPoint, float]:
    """Recover one torn ``size``-document store; returns (point,
    build_seconds)."""
    schema = objectglobe_schema()
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, f"store-{durability}-{size}.db")
        build_seconds = _build_store(path, size, durability)
        db = Database(path, durability=durability)
        try:
            # Tear the derived text index so the repair pass rebuilds
            # it — recovery with work to do, not just a clean audit.
            with db.transaction():
                db.execute("DELETE FROM text_postings")
            gc.collect()
            before = default_registry().counter_values()
            started = time.perf_counter()
            manager = RecoveryManager(db, schema)
            report = manager.recover()
            elapsed = time.perf_counter() - started
            if not report.clean:
                raise RuntimeError(
                    f"recovery left findings: {report.summary()}"
                )
            counters = tuple(
                default_registry().counters_since(before).items()
            )
            point = MeasurementPoint(
                spec=WorkloadSpec("CON", _COMP_RULES + _CON_RULES),
                batch_size=size,
                repeats=1,
                total_seconds=elapsed,
                hits=report.repaired,
                iterations=len(report.findings_before),
                repeat_seconds=(elapsed,),
                counters=counters,
            )
            return point, build_seconds
        finally:
            db.close()


def figure_recovery(
    quick: bool = True, sizes: Sequence[int] | None = None
) -> FigureResult:
    """Recovery wall time vs. store size, fast vs. safe profile."""
    if sizes is not None:
        sizes = tuple(sizes)
    else:
        sizes = RECOVERY_SIZES if quick else (*RECOVERY_SIZES[:-1],
                                              RECOVERY_SIZES[-1] * 4)
    series: list[SweepResult] = []
    by_profile: dict[str, list[MeasurementPoint]] = {}
    for durability in ("fast", "safe"):
        points: list[MeasurementPoint] = []
        prepare_seconds = 0.0
        for size in sizes:
            point, build_seconds = _measure(size, durability)
            points.append(point)
            prepare_seconds += build_seconds
        by_profile[durability] = points
        series.append(
            SweepResult(
                spec=WorkloadSpec("CON", sizes[-1]),
                points=points,
                prepare_seconds=prepare_seconds,
                label_override=f"startup recovery ({durability} profile)",
            )
        )
    figure = FigureResult(
        "Recovery",
        "startup recovery (audit + repair + re-audit) — wall time vs. "
        "store size, fast vs. safe durability profile",
        series=series,
    )
    fast = by_profile["fast"]
    safe = by_profile["safe"]
    largest_fast, smallest_fast = fast[-1], fast[0]
    growth = (
        largest_fast.ms_per_document / smallest_fast.ms_per_document
        if smallest_fast.ms_per_document > 0
        else 1.0
    )
    overhead = (
        safe[-1].total_seconds / largest_fast.total_seconds
        if largest_fast.total_seconds > 0
        else 1.0
    )
    figure.claims = [
        (
            f"the {sizes[-1]}-document store recovers within "
            f"{RECOVERY_BUDGET_SECONDS:.0f}s "
            f"({largest_fast.total_seconds:.2f}s, fast profile)",
            largest_fast.total_seconds < RECOVERY_BUDGET_SECONDS,
        ),
        (
            f"per-document recovery cost grows at most "
            f"{_SCALING_FACTOR:.0f}x from {sizes[0]} to {sizes[-1]} "
            f"documents ({growth:.2f}x — near-linear scans)",
            growth <= _SCALING_FACTOR,
        ),
        (
            f"the safe profile recovers the largest store within "
            f"{_SAFE_OVERHEAD_FACTOR:.0f}x of fast ({overhead:.2f}x)",
            overhead <= _SAFE_OVERHEAD_FACTOR,
        ),
        (
            "every recovery pass repaired the torn text index and "
            "re-audited clean",
            all(
                point.hits > 0 for point in (*fast, *safe)
            ),
        ),
    ]
    return figure
