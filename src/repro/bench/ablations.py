"""Ablation experiments for the design choices Section 3.3 argues for.

Each ablation returns a :class:`AblationResult` with one timed variant
per design alternative plus the qualitative expectation as a claim —
mirroring how :mod:`repro.bench.figures` handles the paper's figures.

Available ablations (also runnable via ``python -m repro.bench``):

- ``rule-groups`` — grouped versus per-join-rule evaluation (§3.3.3);
- ``dedup`` — dependency-graph merging versus private atoms (§3.3.2);
- ``join-evaluation`` — the paper's member-scan combined evaluation
  versus the delta-probe optimization (beyond the paper);
- ``consistency`` — the §3.5 three-pass filter versus per-resource
  subscriber lists versus TTL expiry, on a single update touching many
  rules.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.bench.harness import FilterBench
from repro.mdv.consistency import (
    FilterStrategy,
    ResourceListStrategy,
    TTLStrategy,
)
from repro.mdv.provider import MetadataProvider
from repro.rdf.diff import diff_documents
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "AblationResult",
    "ablation_rule_groups",
    "ablation_dedup",
    "ablation_join_evaluation",
    "ablation_consistency",
    "ABLATIONS",
]


@dataclass
class AblationResult:
    """Timed variants of one design choice."""

    ablation_id: str
    title: str
    #: variant label → seconds per measured operation.
    timings: dict[str, float] = field(default_factory=dict)
    claims: list[tuple[str, bool]] = field(default_factory=list)

    @property
    def all_claims_hold(self) -> bool:
        return all(holds for __, holds in self.claims)

    def render(self) -> str:
        lines = [f"== Ablation: {self.title} =="]
        for label, seconds in self.timings.items():
            lines.append(f"  {label:>14s}: {seconds * 1000:8.1f} ms")
        for text, holds in self.claims:
            status = "HOLDS" if holds else "VIOLATED"
            lines.append(f"  [{status:8s}] {text}")
        return "\n".join(lines)


def _measure_batch(bench: FilterBench, batch_size: int, repeats: int = 3) -> float:
    """Median total seconds for one batch registration."""
    samples = []
    for __ in range(repeats):
        db, engine = bench.fresh_engine()
        documents = bench.spec.documents(batch_size)
        resources = [r for doc in documents for r in doc]
        started = time.perf_counter()
        engine.process_insertions(resources, collect="none")
        samples.append(time.perf_counter() - started)
        db.close()
    samples.sort()
    return samples[len(samples) // 2]


def ablation_rule_groups(
    rule_count: int = 2_000, batch_size: int = 50
) -> AblationResult:
    """Grouped vs. per-join-rule evaluation (paper, §3.3.3)."""
    result = AblationResult(
        "rule-groups",
        f"rule groups on/off (PATH n={rule_count}, batch {batch_size})",
    )
    for label, use_groups in (("grouped", True), ("ungrouped", False)):
        bench = FilterBench(
            WorkloadSpec("PATH", rule_count), use_rule_groups=use_groups
        )
        try:
            result.timings[label] = _measure_batch(bench, batch_size)
        finally:
            bench.close()
    result.claims = [
        (
            "grouped evaluation beats per-join-rule evaluation",
            result.timings["grouped"] < result.timings["ungrouped"],
        )
    ]
    return result


def ablation_dedup(
    rule_count: int = 1_000, batch_size: int = 50
) -> AblationResult:
    """Dependency-graph merging vs. private atoms (paper, §3.3.2)."""
    result = AblationResult(
        "dedup",
        f"dependency-graph merge on/off (JOIN n={rule_count}, "
        f"batch {batch_size})",
    )
    atom_counts = {}
    for label, dedup in (("merged", True), ("private", False)):
        bench = FilterBench(
            WorkloadSpec("JOIN", rule_count), deduplicate=dedup
        )
        try:
            result.timings[label] = _measure_batch(bench, batch_size)
            db, __ = bench.fresh_engine()
            atom_counts[label] = db.count("atomic_rules")
            db.close()
        finally:
            bench.close()
    result.claims = [
        (
            f"merging shrinks the atomic-rule base "
            f"({atom_counts['merged']} vs {atom_counts['private']})",
            atom_counts["merged"] < atom_counts["private"],
        ),
        (
            "merged evaluation is faster",
            result.timings["merged"] < result.timings["private"],
        ),
    ]
    return result


def ablation_join_evaluation(
    rule_count: int = 5_000, batch_size: int = 5
) -> AblationResult:
    """Member-scan (the paper) vs. delta-probe (beyond the paper)."""
    result = AblationResult(
        "join-evaluation",
        f"member-scan vs delta-probe (PATH n={rule_count}, "
        f"batch {batch_size})",
    )
    for label in ("scan", "probe"):
        bench = FilterBench(
            WorkloadSpec("PATH", rule_count), join_evaluation=label
        )
        try:
            result.timings[label] = _measure_batch(bench, batch_size)
        finally:
            bench.close()
    result.claims = [
        (
            "delta-probe removes the member-scan cost at small batches",
            result.timings["probe"] < result.timings["scan"],
        )
    ]
    return result


def ablation_consistency(rules_per_resource: int = 40) -> AblationResult:
    """Three-pass filter vs. resource lists vs. TTL on one update."""
    result = AblationResult(
        "consistency",
        f"update-consistency strategies ({rules_per_resource} rules on "
        f"the updated resource)",
    )
    strategies = {
        "filter": FilterStrategy,
        "resource-list": ResourceListStrategy,
        "ttl": TTLStrategy,
    }
    schema = objectglobe_schema()
    for label, strategy_class in strategies.items():
        samples = []
        for __ in range(3):
            mdp = MetadataProvider(schema)
            mdp.connect_subscriber("lmr", lambda batch: None)
            for index in range(rules_per_resource):
                mdp.subscribe(
                    "lmr",
                    f"search CycleProvider c register c "
                    f"where c.serverInformation.memory > {index}",
                )
            strategy = strategy_class(mdp)
            doc = _consistency_doc(rules_per_resource + 1)
            strategy.process_diff(diff_documents(None, doc))
            updated = doc.copy()
            updated.get("doc0.rdf#info").set(
                "memory", rules_per_resource // 2
            )
            diff = diff_documents(doc, updated)
            started = time.perf_counter()
            strategy.process_diff(diff)
            samples.append(time.perf_counter() - started)
            mdp.db.close()
        samples.sort()
        result.timings[label] = samples[len(samples) // 2]
    result.claims = [
        (
            "TTL (imprecise) is the cheapest per update",
            result.timings["ttl"] <= min(result.timings.values()) * 1.001,
        ),
        (
            "the filter beats per-resource lists when many rules attach "
            "to the updated resource",
            result.timings["filter"] < result.timings["resource-list"],
        ),
    ]
    return result


def _consistency_doc(memory: int) -> Document:
    doc = Document("doc0.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", "a.uni-passau.de")
    provider.add("serverInformation", URIRef("doc0.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


ABLATIONS = {
    "rule-groups": ablation_rule_groups,
    "dedup": ablation_dedup,
    "join-evaluation": ablation_join_evaluation,
    "consistency": ablation_consistency,
}
