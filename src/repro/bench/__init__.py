"""Benchmark harness reproducing the paper's Section 4 evaluation."""

from repro.bench.harness import (
    DEFAULT_BATCH_SIZES,
    FilterBench,
    MeasurementPoint,
    SweepResult,
)
from repro.bench.figures import (
    FIGURES,
    all_figures,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
)
from repro.bench.reporting import FigureResult, render_claims, render_figure

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "FilterBench",
    "MeasurementPoint",
    "SweepResult",
    "FIGURES",
    "all_figures",
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "FigureResult",
    "render_claims",
    "render_figure",
]
