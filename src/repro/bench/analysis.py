"""Rule-base audit benchmark — the ``analysis`` figure.

Not a paper figure: this sweep times :func:`repro.analysis.rulebase.
audit_registry` against synthetic fig13-mix registries of growing size
(1k/10k/100k rules by default), writing ``BENCH_analysis.json`` for the
CI perf-regression gate like the Figure 11–15 sweeps do.

The point's ``total_seconds`` is the audit wall time alone; building
the registry (the real registration pipeline, ~0.4 ms/rule) is recorded
as the sweep's ``prepare_seconds`` and stays outside the gated number.
``ms_per_document`` therefore reads as *milliseconds per audited rule*,
and the figure's claims pin the audit's scalability contract: the
largest base audits in single-digit seconds and the per-rule cost stays
within a small factor of the smallest base's (near-linear scaling — the
``(path, op)``-bucketed interval indexes at work, not the O(n²)
pairwise comparison they replaced).
"""

from __future__ import annotations

import gc
import time
from collections.abc import Sequence

from repro.analysis.rulebase import audit_registry
from repro.bench.harness import MeasurementPoint, SweepResult
from repro.bench.reporting import FigureResult
from repro.obs.metrics import default_registry
from repro.storage.engine import Database
from repro.workload.registry import build_registry
from repro.workload.scenarios import WorkloadSpec

__all__ = ["figure_analysis", "AUDIT_SIZES", "AUDIT_BUDGET_SECONDS"]

#: Audited registry sizes (rules); the ISSUE's 1k/10k/100k ladder.
AUDIT_SIZES = (1_000, 10_000, 100_000)

#: The largest base must audit within this budget (single-threaded).
AUDIT_BUDGET_SECONDS = 10.0

#: Per-rule audit cost may grow at most this factor from the smallest
#: to the largest base (near-linear scaling).
_SCALING_FACTOR = 8.0

#: Fraction of COMP rules re-spelled equivalently, so the audit's
#: equivalence machinery does real work during the measurement.
_EQUIVALENT_FRACTION = 0.01


def _measure(size: int) -> tuple[MeasurementPoint, float, int]:
    """Audit one fresh ``size``-rule registry; returns (point, build_s,
    findings)."""
    db = Database()
    try:
        build_started = time.perf_counter()
        build_registry(
            db, size, mix="fig13", equivalent_fraction=_EQUIVALENT_FRACTION
        )
        build_seconds = time.perf_counter() - build_started
        # The earlier (smaller) sweeps' garbage must not tax this
        # measurement; the audit itself allocates ~100k atom trees.
        gc.collect()
        before = default_registry().counter_values()
        started = time.perf_counter()
        audit = audit_registry(db)
        elapsed = time.perf_counter() - started
        counters = tuple(default_registry().counters_since(before).items())
        point = MeasurementPoint(
            spec=WorkloadSpec("COMP", size),
            batch_size=size,
            repeats=1,
            total_seconds=elapsed,
            hits=len(audit.covering_edges),
            iterations=len(audit.report),
            repeat_seconds=(elapsed,),
            counters=counters,
        )
        return point, build_seconds, len(audit.report)
    finally:
        db.close()


def figure_analysis(
    quick: bool = True, sizes: Sequence[int] | None = None
) -> FigureResult:
    """Audit wall time vs. rule base size (fig13 mix)."""
    sizes = tuple(sizes or AUDIT_SIZES)
    points: list[MeasurementPoint] = []
    prepare_seconds = 0.0
    for size in sizes:
        point, build_seconds, __ = _measure(size)
        points.append(point)
        prepare_seconds += build_seconds
    sweep = SweepResult(
        spec=WorkloadSpec("COMP", sizes[-1]),
        points=points,
        prepare_seconds=prepare_seconds,
        label_override="rule-base audit (fig13 mix)",
    )
    figure = FigureResult(
        "Analysis",
        "whole-registry rule-base audit — wall time vs. registry size "
        "(fig13 mix, 1% equivalent respellings)",
        series=[sweep],
    )
    largest = points[-1]
    smallest = points[0]
    per_rule_growth = (
        largest.ms_per_document / smallest.ms_per_document
        if smallest.ms_per_document > 0
        else 1.0
    )
    figure.claims = [
        (
            f"the {sizes[-1]}-rule base audits within "
            f"{AUDIT_BUDGET_SECONDS:.0f}s single-threaded "
            f"({largest.total_seconds:.2f}s)",
            largest.total_seconds < AUDIT_BUDGET_SECONDS,
        ),
        (
            f"per-rule audit cost grows at most {_SCALING_FACTOR:.0f}x "
            f"from {sizes[0]} to {sizes[-1]} rules "
            f"({per_rule_growth:.2f}x — near-linear scaling)",
            per_rule_growth <= _SCALING_FACTOR,
        ),
        (
            "the audit found the seeded covering chain "
            f"({largest.hits} covering edges > 0)",
            largest.hits > 0,
        ),
    ]
    return figure
