"""Semantic tier benchmark — the ``semantics`` figure.

Not a paper figure: this sweep prices the S-ToPSS tier's central
promise — *semantics are paid at registration time, never on the
publish hot path* (docs/SEMANTICS.md).  For every ``semantics=`` degree
it bulk-registers the same vocabulary-divergent COMP rule base
(:func:`repro.workload.registry.build_registry` with every third rule
spelled over the ``synthMeasure`` alias) and then publishes an
identical batch of all-miss documents through the untouched syntactic
:class:`~repro.filter.engine.FilterEngine`.

The documents publish ``synthValue = -1`` only, so no rule matches at
any degree and the four measurements do byte-identical work except for
the size of the triggering index the joins probe — the purest view of
the hot-path overhead the expansion rows add.  Registration (where the
rewriting actually runs) is recorded as each series' ``prepare_seconds``
and stays outside the gated wall time, exactly like the rule-base build
in :mod:`repro.bench.analysis`.

``BENCH_semantics.json``'s claims pin the acceptance bar: ``synonyms``
publishes within noise of ``off`` (~0 hot-path overhead), every degree
stays within a small factor, and the expanded index grows monotonically
with the degree (a deterministic row-count anchor for the perf gate —
wall time moving while these stay put is runner noise).
"""

from __future__ import annotations

import gc
import time

from repro.bench.harness import MeasurementPoint, SweepResult
from repro.bench.reporting import FigureResult
from repro.filter.engine import FilterEngine
from repro.obs.metrics import default_registry
from repro.semantics import SEMANTICS_MODES
from repro.storage.engine import Database
from repro.storage.schema import TRIGGER_TABLES
from repro.workload.documents import benchmark_document
from repro.workload.registry import build_registry
from repro.workload.scenarios import WorkloadSpec

__all__ = ["figure_semantics", "SYNONYM_OVERHEAD_FACTOR"]

#: ``synonyms`` may cost at most this factor over ``off`` per published
#: document — the ISSUE's "~0 hot-path overhead" bar, with the same
#: wall-clock headroom Figure 11 grants its "almost identical" curves.
SYNONYM_OVERHEAD_FACTOR = 1.6

#: Every degree (including ``mappings``, whose affine rows triple the
#: divergent rules' index entries) stays within this factor of ``off``.
_ANY_DEGREE_FACTOR = 2.5

#: Rules per registry (quick, full).
_SIZES = (1_500, 10_000)

#: Published documents per timed repeat and repeats per degree.
_BATCHES = ((25, 6), (50, 10))


def _measure(
    size: int, batch: int, repeats: int, mode: str
) -> tuple[SweepResult, int, int]:
    """One degree: build, then publish; returns (sweep, semantic rows,
    total index rows)."""
    db = Database()
    try:
        before = default_registry().counter_values()
        build_started = time.perf_counter()
        registry = build_registry(db, size, mix="comp", semantics=mode)
        build_seconds = time.perf_counter() - build_started
        semantic_rows = sum(
            db.count(table, "semantic = 1") for table in TRIGGER_TABLES
        )
        total_rows = sum(db.count(table) for table in TRIGGER_TABLES)
        engine = FilterEngine(db, registry)
        try:
            gc.collect()
            durations: list[float] = []
            hits = 0
            for repeat in range(repeats):
                documents = [
                    benchmark_document(repeat * batch + i, synth_value=-1)
                    for i in range(batch)
                ]
                resources = [r for doc in documents for r in doc]
                started = time.perf_counter()
                engine.process_insertions(resources, collect="none")
                durations.append(time.perf_counter() - started)
                hits += engine.result_count()
            counters = tuple(
                default_registry().counters_since(before).items()
            )
            point = MeasurementPoint(
                spec=WorkloadSpec("COMP", size),
                batch_size=batch,
                repeats=repeats,
                total_seconds=sum(durations),
                hits=hits,
                iterations=SEMANTICS_MODES.index(mode),
                repeat_seconds=tuple(durations),
                counters=counters,
            )
        finally:
            engine.close()
        sweep = SweepResult(
            spec=WorkloadSpec("COMP", size),
            points=[point],
            prepare_seconds=build_seconds,
            label_override=f"publish, semantics={mode} "
            f"({total_rows} index rows, {semantic_rows} semantic)",
        )
        return sweep, semantic_rows, total_rows
    finally:
        db.close()


def figure_semantics(quick: bool = True) -> FigureResult:
    """Publish cost per document vs. semantic degree (all-miss COMP)."""
    size = _SIZES[0] if quick else _SIZES[1]
    batch, repeats = _BATCHES[0] if quick else _BATCHES[1]
    series: list[SweepResult] = []
    semantic_rows: list[int] = []
    total_rows: list[int] = []
    for mode in SEMANTICS_MODES:
        sweep, semantic, total = _measure(size, batch, repeats, mode)
        series.append(sweep)
        semantic_rows.append(semantic)
        total_rows.append(total)
    figure = FigureResult(
        "Semantics",
        "semantic tier hot-path cost — publish ms/document vs. degree "
        f"(vocabulary-divergent COMP base, {size} rules, all-miss "
        "documents; registration in prepare_seconds)",
        series=series,
    )
    costs = [sweep.points[0].ms_per_document for sweep in series]
    off = costs[0] if costs[0] > 0 else 1.0
    synonyms_factor = costs[1] / off
    worst_factor = max(costs) / off
    figure.claims = [
        (
            "synonyms adds ~0 hot-path overhead: "
            f"{synonyms_factor:.2f}x the off cost "
            f"(bar: {SYNONYM_OVERHEAD_FACTOR:.1f}x — registration-time "
            "rewriting, the publish path is untouched)",
            synonyms_factor <= SYNONYM_OVERHEAD_FACTOR,
        ),
        (
            f"every degree publishes within {_ANY_DEGREE_FACTOR:.1f}x "
            f"of off (worst {worst_factor:.2f}x)",
            worst_factor <= _ANY_DEGREE_FACTOR,
        ),
        (
            "expanded index rows grow monotonically with the degree "
            f"({' <= '.join(str(n) for n in total_rows)})",
            all(a <= b for a, b in zip(total_rows, total_rows[1:])),
        ),
        (
            "off leaves the index byte-identical: 0 semantic rows "
            f"(per degree: {', '.join(str(n) for n in semantic_rows)})",
            semantic_rows[0] == 0
            and all(n > 0 for n in semantic_rows[1:]),
        ),
        (
            "all-miss workload: no document matched at any degree "
            "(identical work modulo index size)",
            all(sweep.points[0].hits == 0 for sweep in series),
        ),
    ]
    return figure
