"""Reproduction of every figure in the paper's evaluation (Section 4).

Each ``figure1x`` function runs the corresponding experiment and checks
the paper's *qualitative* findings as explicit claims — absolute
milliseconds differ (Python + SQLite here, Java + a commercial RDBMS on
a Sun E450 there), the curve shapes are what reproduces:

- **Figure 11 (OID)**: registration cost falls with batch size, then
  flattens; the rule base size "does not influence the runtime of the
  algorithm as the curves for 10,000 and 100,000 are almost identical".
- **Figure 12 (PATH)**: same amortization; cost *does* depend on the
  rule base size.
- **Figure 13 (COMP, 10%)**: costs nearly constant from some batch size
  on, but "registering few documents in one batch is preferable".
- **Figure 14 (JOIN)**: as Figure 12 with deeper dependency trees.
- **Figure 15 (COMP, varying %)**: "a higher rule percentage results in
  higher registration costs independent of the batch size".

``quick`` mode shrinks rule bases and batch grids so the whole suite
runs in minutes; ``full`` mode uses the paper's sizes (10k/100k rules).
"""

from __future__ import annotations

from repro.bench.harness import FilterBench, SweepResult
from repro.bench.reporting import FigureResult
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "all_figures",
    "FIGURES",
]

_QUICK_BATCHES = (1, 2, 5, 10, 20, 50, 100)
_FULL_BATCHES = (1, 2, 5, 10, 20, 50, 100, 200, 500)

#: Tolerance for "curves are almost identical" (Figure 11): the larger
#: rule base may cost at most this factor more per document, averaged
#: over the sweep.
_OID_IDENTICAL_FACTOR = 1.6


def _sweep(spec: WorkloadSpec, quick: bool, batches=None) -> SweepResult:
    bench = FilterBench(spec)
    try:
        if batches is None:
            batches = _QUICK_BATCHES if quick else _FULL_BATCHES
        return bench.sweep(batches)
    finally:
        bench.close()


def _mean_cost(sweep: SweepResult) -> float:
    return sum(p.ms_per_document for p in sweep.points) / len(sweep.points)


def _plateau_cost(sweep: SweepResult) -> float:
    """Mean cost over the three largest batch sizes.

    "The curves are almost identical" is judged where amortization is
    complete; at batch 1 the absolute times are fractions of a
    millisecond and timer noise dominates any real signal.
    """
    tail = sweep.points[-3:] if len(sweep.points) >= 3 else sweep.points
    return sum(p.ms_per_document for p in tail) / len(tail)


def _amortizes(sweep: SweepResult) -> bool:
    """Cost at the smallest batch exceeds cost at the largest batch."""
    first = sweep.points[0].ms_per_document
    last = sweep.points[-1].ms_per_document
    return first > last


def figure11(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """OID rules: batch amortization; rule base size irrelevant."""
    sizes = sizes or ((2_000, 20_000) if quick else (10_000, 100_000))
    small = _sweep(WorkloadSpec("OID", sizes[0]), quick, batches)
    large = _sweep(WorkloadSpec("OID", sizes[1]), quick, batches)
    ratio = _plateau_cost(large) / _plateau_cost(small)
    figure = FigureResult(
        "Figure 11",
        "OID rules — average registration cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        (
            "registration of few documents costs more per document than "
            "large batches (amortization)",
            _amortizes(small) and _amortizes(large),
        ),
        (
            f"rule base size does not influence cost "
            f"({sizes[0]} vs {sizes[1]} curves nearly identical; "
            f"plateau ratio {ratio:.2f})",
            ratio < _OID_IDENTICAL_FACTOR,
        ),
    ]
    return figure


def figure12(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """PATH rules: amortization; cost depends on rule base size."""
    sizes = sizes or ((1_000, 5_000) if quick else (1_000, 10_000))
    small = _sweep(WorkloadSpec("PATH", sizes[0]), quick, batches)
    large = _sweep(WorkloadSpec("PATH", sizes[1]), quick, batches)
    ratio = _mean_cost(large) / _mean_cost(small)
    figure = FigureResult(
        "Figure 12",
        "PATH rules — average registration cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        ("amortization with batch size", _amortizes(small) and _amortizes(large)),
        (
            f"registration cost depends on the rule base size "
            f"(mean ratio {ratio:.2f} > 1)",
            ratio > 1.0,
        ),
    ]
    return figure


def figure13(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """COMP rules at 10% match rate."""
    sizes = sizes or ((1_000, 5_000) if quick else (1_000, 10_000))
    small = _sweep(WorkloadSpec("COMP", sizes[0], match_fraction=0.1), quick, batches)
    large = _sweep(WorkloadSpec("COMP", sizes[1], match_fraction=0.1), quick, batches)
    ratio = _mean_cost(large) / _mean_cost(small)
    # The upward trend is judged on the larger rule base, where each
    # document produces enough ResultObjects rows for the effect to rise
    # above timer noise (the small base is nearly flat).
    small_batch = large.points[0].ms_per_document
    big_batch = large.points[-1].ms_per_document
    figure = FigureResult(
        "Figure 13",
        "COMP rules (10% of rule base) — cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        (
            "registering few documents in one batch is preferable "
            f"(cost at batch 1: {small_batch:.2f} ms <= cost at largest "
            f"batch: {big_batch:.2f} ms)",
            small_batch <= big_batch * 1.25,
        ),
        (
            f"registration cost depends on the rule base size "
            f"(mean ratio {ratio:.2f} > 1)",
            ratio > 1.0,
        ),
    ]
    return figure


def figure14(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """JOIN rules: the complete filter machinery."""
    sizes = sizes or ((1_000, 5_000) if quick else (1_000, 10_000))
    small = _sweep(WorkloadSpec("JOIN", sizes[0]), quick, batches)
    large = _sweep(WorkloadSpec("JOIN", sizes[1]), quick, batches)
    ratio = _mean_cost(large) / _mean_cost(small)
    figure = FigureResult(
        "Figure 14",
        "JOIN rules — average registration cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        ("amortization with batch size", _amortizes(small) and _amortizes(large)),
        (
            f"registration cost depends on the rule base size "
            f"(mean ratio {ratio:.2f} > 1)",
            ratio > 1.0,
        ),
    ]
    return figure


def figure15(
    quick: bool = True, rule_count: int | None = None, batches=None
) -> FigureResult:
    """COMP rules: varying triggered percentage of the rule base."""
    if rule_count is None:
        rule_count = 2_000 if quick else 10_000
    fractions = (0.01, 0.05, 0.1, 0.2)
    series = [
        _sweep(WorkloadSpec("COMP", rule_count, match_fraction=f), quick, batches)
        for f in fractions
    ]
    figure = FigureResult(
        "Figure 15",
        f"{rule_count} COMP rules — varying batch sizes and triggered "
        f"rule base percentage",
        series=series,
    )
    monotone = True
    for batch_size in series[0].batch_sizes():
        costs = [sweep.cost_at(batch_size) for sweep in series]
        if any(b < a * 0.95 for a, b in zip(costs, costs[1:])):
            monotone = False
            break
    figure.claims = [
        (
            "a higher triggered rule percentage results in higher "
            "registration costs, independent of the batch size",
            monotone,
        )
    ]
    return figure


FIGURES = {
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
}


def all_figures(quick: bool = True) -> list[FigureResult]:
    return [build(quick) for build in FIGURES.values()]
