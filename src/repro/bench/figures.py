"""Reproduction of every figure in the paper's evaluation (Section 4).

Each ``figure1x`` function runs the corresponding experiment and checks
the paper's *qualitative* findings as explicit claims — absolute
milliseconds differ (Python + SQLite here, Java + a commercial RDBMS on
a Sun E450 there), the curve shapes are what reproduces:

- **Figure 11 (OID)**: registration cost falls with batch size, then
  flattens; the rule base size "does not influence the runtime of the
  algorithm as the curves for 10,000 and 100,000 are almost identical".
- **Figure 12 (PATH)**: same amortization; cost *does* depend on the
  rule base size.
- **Figure 13 (COMP, 10%)**: costs nearly constant from some batch size
  on, but "registering few documents in one batch is preferable".
- **Figure 14 (JOIN)**: as Figure 12 with deeper dependency trees.
- **Figure 15 (COMP, varying %)**: "a higher rule percentage results in
  higher registration costs independent of the batch size".

Figures 13 and 15 additionally carry ``contains`` (CON) series beyond
the paper: the same workload measured with the O(rules) scan join and
with the :mod:`repro.text` trigram index (``contains_index="trigram"``),
sharing one prepared rule base per size via :meth:`FilterBench.variant`
so both curves see identical rules and documents.

``quick`` mode shrinks rule bases and batch grids so the whole suite
runs in minutes; ``full`` mode uses the paper's sizes (10k/100k rules).
"""

from __future__ import annotations

from repro.bench.analysis import figure_analysis
from repro.bench.matcher import figure_matcher
from repro.bench.recovery import figure_recovery
from repro.bench.semantics import figure_semantics
from repro.bench.service import figure_service
from repro.bench.harness import FilterBench, SweepResult
from repro.bench.reporting import FigureResult
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "figure11",
    "figure12",
    "figure13",
    "figure14",
    "figure15",
    "all_figures",
    "FIGURES",
]

_QUICK_BATCHES = (1, 2, 5, 10, 20, 50, 100)
_FULL_BATCHES = (1, 2, 5, 10, 20, 50, 100, 200, 500)

#: Tolerance for "curves are almost identical" (Figure 11): the larger
#: rule base may cost at most this factor more per document, averaged
#: over the sweep.
_OID_IDENTICAL_FACTOR = 1.6


#: Tokens embedded in every CON document's host value: each document
#: matches exactly this many ``contains`` rules regardless of the rule
#: base size, so the CON curves isolate how the *miss* cost scales.
_CON_TOKENS = 10


def _sweep(spec: WorkloadSpec, quick: bool, batches=None) -> SweepResult:
    bench = FilterBench(spec)
    try:
        if batches is None:
            batches = _QUICK_BATCHES if quick else _FULL_BATCHES
        return bench.sweep(batches)
    finally:
        bench.close()


def _con_sweep_pair(
    size: int, quick: bool, batches=None, tokens: int = _CON_TOKENS
) -> tuple[SweepResult, SweepResult]:
    """(scan, trigram) sweeps of one CON workload on a shared rule base."""
    if batches is None:
        batches = _QUICK_BATCHES if quick else _FULL_BATCHES
    spec = WorkloadSpec("CON", size, match_fraction=tokens / size)
    scan_bench = FilterBench(spec)
    try:
        trigram_bench = scan_bench.variant(contains_index="trigram")
        try:
            return scan_bench.sweep(batches), trigram_bench.sweep(batches)
        finally:
            trigram_bench.close()
    finally:
        scan_bench.close()


def _mean_cost(sweep: SweepResult) -> float:
    return sum(p.ms_per_document for p in sweep.points) / len(sweep.points)


def _plateau_cost(sweep: SweepResult) -> float:
    """Mean cost over the three largest batch sizes.

    "The curves are almost identical" is judged where amortization is
    complete; at batch 1 the absolute times are fractions of a
    millisecond and timer noise dominates any real signal.
    """
    tail = sweep.points[-3:] if len(sweep.points) >= 3 else sweep.points
    return sum(p.ms_per_document for p in tail) / len(tail)


def _amortizes(sweep: SweepResult) -> bool:
    """Cost at the smallest batch exceeds cost at the largest batch."""
    first = sweep.points[0].ms_per_document
    last = sweep.points[-1].ms_per_document
    return first > last


def figure11(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """OID rules: batch amortization; rule base size irrelevant."""
    sizes = sizes or ((2_000, 20_000) if quick else (10_000, 100_000))
    small = _sweep(WorkloadSpec("OID", sizes[0]), quick, batches)
    large = _sweep(WorkloadSpec("OID", sizes[1]), quick, batches)
    ratio = _plateau_cost(large) / _plateau_cost(small)
    figure = FigureResult(
        "Figure 11",
        "OID rules — average registration cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        (
            "registration of few documents costs more per document than "
            "large batches (amortization)",
            _amortizes(small) and _amortizes(large),
        ),
        (
            f"rule base size does not influence cost "
            f"({sizes[0]} vs {sizes[1]} curves nearly identical; "
            f"plateau ratio {ratio:.2f})",
            ratio < _OID_IDENTICAL_FACTOR,
        ),
    ]
    return figure


def figure12(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """PATH rules: amortization; cost depends on rule base size."""
    sizes = sizes or ((1_000, 5_000) if quick else (1_000, 10_000))
    small = _sweep(WorkloadSpec("PATH", sizes[0]), quick, batches)
    large = _sweep(WorkloadSpec("PATH", sizes[1]), quick, batches)
    ratio = _mean_cost(large) / _mean_cost(small)
    figure = FigureResult(
        "Figure 12",
        "PATH rules — average registration cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        ("amortization with batch size", _amortizes(small) and _amortizes(large)),
        (
            f"registration cost depends on the rule base size "
            f"(mean ratio {ratio:.2f} > 1)",
            ratio > 1.0,
        ),
    ]
    return figure


def figure13(
    quick: bool = True, sizes=None, batches=None, con_sizes=None
) -> FigureResult:
    """COMP rules at 10% match rate, plus contains scan vs. trigram."""
    sizes = sizes or ((1_000, 5_000) if quick else (1_000, 10_000))
    # The scan join is O(rules) per document while the probe cost is
    # nearly flat, so the speedup claim needs a rule base large enough
    # for the scan to dominate measurement noise.
    con_sizes = con_sizes or ((4_000, 40_000) if quick else (5_000, 50_000))
    small = _sweep(WorkloadSpec("COMP", sizes[0], match_fraction=0.1), quick, batches)
    large = _sweep(WorkloadSpec("COMP", sizes[1], match_fraction=0.1), quick, batches)
    ratio = _mean_cost(large) / _mean_cost(small)
    # The upward trend is judged on the larger rule base, where each
    # document produces enough ResultObjects rows for the effect to rise
    # above timer noise (the small base is nearly flat).
    small_batch = large.points[0].ms_per_document
    big_batch = large.points[-1].ms_per_document
    con_pairs = [
        _con_sweep_pair(size, quick, batches) for size in con_sizes
    ]
    hits_identical = all(
        scan.batch_sizes() == trigram.batch_sizes()
        and [p.hits for p in scan.points] == [p.hits for p in trigram.points]
        for scan, trigram in con_pairs
    )
    big_scan, big_trigram = con_pairs[-1]
    largest_batch = big_scan.points[-1].batch_size
    speedup = big_scan.cost_at(largest_batch) / big_trigram.cost_at(largest_batch)
    growth = _plateau_cost(big_trigram) / _plateau_cost(con_pairs[0][1])
    size_ratio = con_sizes[1] / con_sizes[0]
    figure = FigureResult(
        "Figure 13",
        "COMP rules (10% of rule base) and CON rules (scan vs. trigram "
        "index) — cost vs. batch size",
        series=[small, large, *(s for pair in con_pairs for s in pair)],
    )
    figure.claims = [
        (
            "registering few documents in one batch is preferable "
            f"(cost at batch 1: {small_batch:.2f} ms <= cost at largest "
            f"batch: {big_batch:.2f} ms)",
            small_batch <= big_batch * 1.25,
        ),
        (
            f"registration cost depends on the rule base size "
            f"(mean ratio {ratio:.2f} > 1)",
            ratio > 1.0,
        ),
        (
            "scan and trigram contains paths register identical hit "
            "counts at every batch size (exactness)",
            hits_identical,
        ),
        (
            f"the trigram index beats the contains scan at least 5x at "
            f"the largest batch of the {con_sizes[1]}-rule base "
            f"(speedup {speedup:.1f}x)",
            speedup >= 5.0,
        ),
        (
            f"indexed per-document contains cost grows sub-linearly in "
            f"the rule base size (plateau cost ratio {growth:.1f}x for "
            f"{size_ratio:.0f}x more rules)",
            growth < size_ratio / 2,
        ),
    ]
    return figure


def figure14(quick: bool = True, sizes=None, batches=None) -> FigureResult:
    """JOIN rules: the complete filter machinery."""
    sizes = sizes or ((1_000, 5_000) if quick else (1_000, 10_000))
    small = _sweep(WorkloadSpec("JOIN", sizes[0]), quick, batches)
    large = _sweep(WorkloadSpec("JOIN", sizes[1]), quick, batches)
    ratio = _mean_cost(large) / _mean_cost(small)
    figure = FigureResult(
        "Figure 14",
        "JOIN rules — average registration cost vs. batch size",
        series=[small, large],
    )
    figure.claims = [
        ("amortization with batch size", _amortizes(small) and _amortizes(large)),
        (
            f"registration cost depends on the rule base size "
            f"(mean ratio {ratio:.2f} > 1)",
            ratio > 1.0,
        ),
    ]
    return figure


def figure15(
    quick: bool = True,
    rule_count: int | None = None,
    batches=None,
    con_rules: int | None = None,
) -> FigureResult:
    """COMP rules: varying triggered percentage; CON: varying tokens."""
    if rule_count is None:
        rule_count = 2_000 if quick else 10_000
    if con_rules is None:
        con_rules = 10_000 if quick else 20_000
    fractions = (0.01, 0.05, 0.1, 0.2)
    series = [
        _sweep(WorkloadSpec("COMP", rule_count, match_fraction=f), quick, batches)
        for f in fractions
    ]
    # CON at two match levels (k and 4k embedded tokens), each measured
    # on both contains paths over the same prepared rule base.
    token_counts = (_CON_TOKENS, 4 * _CON_TOKENS)
    con_pairs = [
        _con_sweep_pair(con_rules, quick, batches, tokens=tokens)
        for tokens in token_counts
    ]
    figure = FigureResult(
        "Figure 15",
        f"{rule_count} COMP rules — varying batch sizes and triggered "
        f"rule base percentage; {con_rules} CON rules — scan vs. "
        f"trigram index at varying match levels",
        series=[*series, *(s for pair in con_pairs for s in pair)],
    )
    monotone = True
    for batch_size in series[0].batch_sizes():
        costs = [sweep.cost_at(batch_size) for sweep in series]
        if any(b < a * 0.95 for a, b in zip(costs, costs[1:])):
            monotone = False
            break
    (scan_low, trigram_low), (scan_high, trigram_high) = con_pairs
    con_monotone = (
        _plateau_cost(scan_high) > _plateau_cost(scan_low)
        and _plateau_cost(trigram_high) > _plateau_cost(trigram_low)
    )
    trigram_below = (
        _plateau_cost(trigram_low) < _plateau_cost(scan_low)
        and _plateau_cost(trigram_high) < _plateau_cost(scan_high)
    )
    figure.claims = [
        (
            "a higher triggered rule percentage results in higher "
            "registration costs, independent of the batch size",
            monotone,
        ),
        (
            "embedding more contains needles per document raises the "
            "plateau cost of both the scan and the trigram path",
            con_monotone,
        ),
        (
            "the trigram path stays cheaper than the contains scan at "
            "both match levels",
            trigram_below,
        ),
    ]
    return figure


FIGURES = {
    "fig11": figure11,
    "fig12": figure12,
    "fig13": figure13,
    "fig14": figure14,
    "fig15": figure15,
    # Beyond the paper: the whole-registry rule-base audit sweep
    # (BENCH_analysis.json; see repro.bench.analysis).
    "analysis": figure_analysis,
    # Startup recovery (audit + repair) wall time vs. store size
    # (BENCH_recovery.json; see repro.bench.recovery).
    "recovery": figure_recovery,
    # Triggering backends (sql scan / sql trigram / counting) vs.
    # rule-base size (BENCH_matcher.json; see repro.bench.matcher).
    "matcher": figure_matcher,
    # The served daemon over real sockets: throughput and p50/p99
    # latency vs. concurrent clients (BENCH_service.json; see
    # repro.bench.service).
    "service": figure_service,
    # Semantic tier hot-path cost: publish ms/document per semantics=
    # degree over a vocabulary-divergent COMP base
    # (BENCH_semantics.json; see repro.bench.semantics).
    "semantics": figure_semantics,
}


def all_figures(quick: bool = True) -> list[FigureResult]:
    return [build(quick) for build in FIGURES.values()]
