"""Perf-regression gate over ``BENCH_*.json`` artifacts.

``python -m repro.bench.regression --baseline-dir benchmarks/baselines``
compares freshly produced ``BENCH_<figure>.json`` files against the
checked-in baselines and fails (exit 1) when any figure's wall time
regressed by more than the tolerance (default 25%).

Wall time on shared CI runners is noisy, so the gate compares the
*figure-level* wall time (the sum over every measured point — tens of
filter runs), not individual points, and the deterministic hot-path
counters are reported alongside: a wall-time regression with unchanged
counters is likely runner noise; moving counters indicate a real
behavioural change (more statements, more rows, more rule-group
evaluations).

Overriding: a genuinely intended slowdown (e.g. a correctness fix that
costs work) is landed by refreshing the baselines in the same PR
(re-run the sweeps, commit the new ``benchmarks/baselines/*.json``) or
by applying the ``perf-override`` label to the PR, which skips this
gate in CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["compare", "main"]

#: A figure may be this much slower than its baseline before the gate
#: trips (1.25 = +25%).
DEFAULT_TOLERANCE = 1.25


def _counter_totals(payload: dict) -> dict[str, float]:
    totals: dict[str, float] = {}
    for series in payload.get("series", []):
        for point in series.get("points", []):
            for name, value in point.get("counters", {}).items():
                totals[name] = totals.get(name, 0.0) + value
    return totals


def compare(
    baseline: dict, current: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[str]:
    """Compare one figure's run against its baseline.

    Returns a list of failure messages (empty = within tolerance).
    """
    failures: list[str] = []
    figure = current.get("figure", "?")
    base_wall = float(baseline.get("wall_time_seconds", 0.0))
    curr_wall = float(current.get("wall_time_seconds", 0.0))
    if base_wall > 0 and curr_wall > base_wall * tolerance:
        failures.append(
            f"{figure}: wall time regressed "
            f"{base_wall:.3f}s -> {curr_wall:.3f}s "
            f"(+{(curr_wall / base_wall - 1) * 100:.0f}%, "
            f"tolerance +{(tolerance - 1) * 100:.0f}%)"
        )
        base_counters = _counter_totals(baseline)
        curr_counters = _counter_totals(current)
        moved = sorted(
            name
            for name in set(base_counters) | set(curr_counters)
            if abs(curr_counters.get(name, 0.0) - base_counters.get(name, 0.0))
            > 0.5
        )
        if moved:
            failures.append(
                f"{figure}: counters moved too (behavioural change?): "
                + ", ".join(
                    f"{name} {base_counters.get(name, 0):.0f}"
                    f"->{curr_counters.get(name, 0):.0f}"
                    for name in moved[:8]
                )
            )
        else:
            failures.append(
                f"{figure}: hot-path counters are unchanged — if this is "
                f"runner noise, re-run; if intended, refresh the baseline "
                f"or apply the perf-override label"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.regression",
        description="Fail when BENCH_*.json wall times regressed past "
        "the tolerance vs the checked-in baselines.",
    )
    parser.add_argument(
        "--baseline-dir",
        default="benchmarks/baselines",
        help="directory holding the committed BENCH_*.json baselines",
    )
    parser.add_argument(
        "--current-dir",
        default=".",
        help="directory holding the freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed wall-time ratio current/baseline (default 1.25)",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    current_dir = Path(args.current_dir)
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"no baselines under {baseline_dir}/", file=sys.stderr)
        return 2

    failures: list[str] = []
    compared = 0
    for baseline_path in baselines:
        current_path = current_dir / baseline_path.name
        if not current_path.exists():
            failures.append(
                f"{baseline_path.name}: no current run found in "
                f"{current_dir}/ (did the perf job produce it?)"
            )
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(current_path.read_text())
        compared += 1
        wall = (
            f"{float(baseline.get('wall_time_seconds', 0.0)):.3f}s -> "
            f"{float(current.get('wall_time_seconds', 0.0)):.3f}s"
        )
        print(f"{baseline_path.name}: {wall}")
        failures.extend(compare(baseline, current, args.tolerance))

    # The reverse direction: a freshly produced figure with no committed
    # baseline would otherwise silently skip the gate — a new figure
    # must land together with its baseline.
    baseline_names = {path.name for path in baselines}
    for current_path in sorted(current_dir.glob("BENCH_*.json")):
        if current_path.name not in baseline_names:
            failures.append(
                f"{current_path.name}: produced by the perf run but has "
                f"no committed baseline in {baseline_dir}/ — commit one "
                f"so the figure enters the gate"
            )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"ok: {compared} figure(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
