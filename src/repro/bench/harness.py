"""Measurement harness for the paper's Section 4 experiments.

The paper's protocol: build a rule base of one type, register a batch of
documents, measure the overall filter runtime, divide by the batch size.
*"The average registration time of a single RDF document was calculated
by dividing the overall runtime by the batch size."*

:class:`FilterBench` prepares the rule base once into a template
database; every measurement point restores a pristine copy via the
SQLite backup API, so expensive rule registration is paid once per
``(rule type, rule base size)`` combination.  Small batches are repeated
and averaged to tame timer noise; repeats advance the document index
range so the one-to-one matching contract of OID/PATH/JOIN workloads is
preserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.filter.engine import FilterEngine
from repro.obs.metrics import default_registry
from repro.rdf.schema import Schema, objectglobe_schema
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_rule
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.workload.scenarios import WorkloadSpec

__all__ = ["MeasurementPoint", "SweepResult", "FilterBench", "DEFAULT_BATCH_SIZES"]

#: The batch sizes swept by default (the paper's x axis).
DEFAULT_BATCH_SIZES = (1, 2, 5, 10, 20, 50, 100, 200)

#: Repeats aim for at least this many registered documents per point so
#: single-millisecond batches do not drown in timer noise.
_MIN_DOCUMENTS_PER_POINT = 20
_MAX_REPEATS = 10


@dataclass(frozen=True)
class MeasurementPoint:
    """One (workload, batch size) measurement."""

    spec: WorkloadSpec
    batch_size: int
    repeats: int
    total_seconds: float
    hits: int
    iterations: int
    #: Per-repeat batch durations; the metric uses their median so a
    #: single GC pause or scheduler hiccup cannot distort sub-millisecond
    #: points (small batches are repeated up to 10 times).
    repeat_seconds: tuple[float, ...] = ()
    #: Counter deltas accumulated while measuring this point (sorted
    #: ``(name, delta)`` pairs from the default metrics registry, e.g.
    #: atoms scanned, rule-group evaluations, SQL statements).
    counters: tuple[tuple[str, float], ...] = ()

    @property
    def documents_registered(self) -> int:
        return self.batch_size * self.repeats

    @property
    def ms_per_document(self) -> float:
        """The paper's metric: average registration cost per document."""
        if self.repeat_seconds:
            ordered = sorted(self.repeat_seconds)
            median = ordered[len(ordered) // 2]
            return median * 1000.0 / self.batch_size
        return self.total_seconds * 1000.0 / self.documents_registered


@dataclass
class SweepResult:
    """A batch-size sweep for one workload (one curve of a figure)."""

    spec: WorkloadSpec
    points: list[MeasurementPoint] = field(default_factory=list)
    prepare_seconds: float = 0.0
    #: Display label override (the parallel comparison uses it to tell
    #: ``… parallel=4`` curves apart from the serial baseline).
    label_override: str | None = None

    @property
    def label(self) -> str:
        return self.label_override or self.spec.label()

    @property
    def wall_seconds(self) -> float:
        """Total measured batch time across the sweep (speedup metric)."""
        return sum(point.total_seconds for point in self.points)

    def cost_at(self, batch_size: int) -> float:
        for point in self.points:
            if point.batch_size == batch_size:
                return point.ms_per_document
        raise KeyError(batch_size)

    def batch_sizes(self) -> list[int]:
        return [point.batch_size for point in self.points]


class FilterBench:
    """Prepares a rule base once and measures batch registrations."""

    def __init__(
        self,
        spec: WorkloadSpec,
        schema: Schema | None = None,
        use_rule_groups: bool = True,
        deduplicate: bool = True,
        join_evaluation: str = "scan",
        parallelism: int = 1,
        contains_index: str = "scan",
        triggering: str = "sql",
    ):
        self.spec = spec
        self.schema = schema or objectglobe_schema()
        self.use_rule_groups = use_rule_groups
        self.deduplicate = deduplicate
        self.join_evaluation = join_evaluation
        #: Triggering-stage shard count (1 = the paper's serial filter).
        self.parallelism = parallelism
        #: ``contains`` matching strategy ("scan" = the paper's join,
        #: "trigram" = the repro.text inverted index).
        self.contains_index = contains_index
        #: Triggering backend ("sql" = the paper's joins, "counting" =
        #: the in-memory counting matcher).
        self.triggering = triggering
        self._template: Database | None = None
        self._borrowed_template = False
        self.prepare_seconds = 0.0

    # ------------------------------------------------------------------
    # Preparation
    # ------------------------------------------------------------------
    def prepare(self) -> None:
        """Build the rule-base template database (idempotent)."""
        if self._template is not None:
            return
        started = time.perf_counter()
        db = Database()
        create_all(db)
        registry = RuleRegistry(db, deduplicate=self.deduplicate)
        engine = FilterEngine(
            db, registry, self.use_rule_groups, self.join_evaluation
        )
        subscriber = "bench-lmr"
        with db.transaction():
            for text in self.spec.rule_texts():
                normalized = normalize_rule(parse_rule(text), self.schema)[0]
                decomposed = decompose_rule(normalized, self.schema)
                registration = registry.register_subscription(
                    subscriber, text, decomposed
                )
                engine.initialize_rules(registration.created)
        db.execute("ANALYZE")
        db.commit()
        self._template = db
        self.prepare_seconds = time.perf_counter() - started

    def close(self) -> None:
        if self._template is not None:
            if not self._borrowed_template:
                self._template.close()
            self._template = None

    def fresh_engine(self) -> tuple[Database, FilterEngine]:
        """A pristine copy of the prepared rule base plus its engine."""
        self.prepare()
        assert self._template is not None
        db = self._template.clone()
        registry = RuleRegistry(db, deduplicate=self.deduplicate)
        return db, FilterEngine(
            db, registry, self.use_rule_groups, self.join_evaluation,
            parallelism=self.parallelism,
            contains_index=self.contains_index,
            triggering=self.triggering,
        )

    def variant(
        self,
        parallelism: int | None = None,
        contains_index: str | None = None,
        triggering: str | None = None,
    ) -> FilterBench:
        """A bench sharing this one's prepared template, differing only
        in ``parallelism``, ``contains_index`` and/or ``triggering``
        (``None`` keeps this bench's value) — ablation comparisons
        measure both settings against the *same* rule base.
        Registration maintains the trigram tables unconditionally, so
        one template serves either read path.  Close the parent last;
        the variant borrows the template and must not outlive it.
        """
        self.prepare()
        twin = FilterBench(
            self.spec,
            schema=self.schema,
            use_rule_groups=self.use_rule_groups,
            deduplicate=self.deduplicate,
            join_evaluation=self.join_evaluation,
            parallelism=self.parallelism if parallelism is None else parallelism,
            contains_index=(
                self.contains_index if contains_index is None else contains_index
            ),
            triggering=(
                self.triggering if triggering is None else triggering
            ),
        )
        twin._template = self._template
        twin._borrowed_template = True
        twin.prepare_seconds = self.prepare_seconds
        return twin

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def repeats_for(self, batch_size: int) -> int:
        repeats = max(1, _MIN_DOCUMENTS_PER_POINT // batch_size)
        repeats = min(repeats, _MAX_REPEATS)
        if self.spec.rule_type not in ("COMP", "CON"):
            # Repeats advance the index range; stay within the rule base.
            repeats = min(repeats, max(1, self.spec.rule_count // batch_size))
        return repeats

    def measure(self, batch_size: int, repeats: int | None = None) -> MeasurementPoint:
        """Measure the average registration cost at one batch size."""
        if repeats is None:
            repeats = self.repeats_for(batch_size)
        db, engine = self.fresh_engine()
        try:
            # Shard construction and rule replication are one-time server
            # costs, not per-batch costs — keep them out of the timed loop.
            engine.warm_shards()
            durations: list[float] = []
            hits = 0
            iterations = 0
            before = default_registry().counter_values()
            for repeat in range(repeats):
                documents = self.spec.documents(
                    batch_size, start_index=repeat * batch_size
                )
                resources = [r for doc in documents for r in doc]
                started = time.perf_counter()
                outcome = engine.process_insertions(resources, collect="none")
                durations.append(time.perf_counter() - started)
                hits += engine.result_count()
                iterations = max(iterations, outcome.passes[0].iterations)
            counters = tuple(
                default_registry().counters_since(before).items()
            )
            return MeasurementPoint(
                spec=self.spec,
                batch_size=batch_size,
                repeats=repeats,
                total_seconds=sum(durations),
                hits=hits,
                iterations=iterations,
                repeat_seconds=tuple(durations),
                counters=counters,
            )
        finally:
            engine.close()
            db.close()

    def sweep(self, batch_sizes=DEFAULT_BATCH_SIZES) -> SweepResult:
        """Measure every batch size; returns one figure curve."""
        self.prepare()
        extras = []
        if self.parallelism > 1:
            extras.append(f"parallel={self.parallelism}")
        if self.contains_index != "scan":
            extras.append(f"contains={self.contains_index}")
        if self.triggering != "sql":
            extras.append(f"triggering={self.triggering}")
        label = (
            " ".join([self.spec.label(), *extras]) if extras else None
        )
        result = SweepResult(
            spec=self.spec,
            prepare_seconds=self.prepare_seconds,
            label_override=label,
        )
        for batch_size in batch_sizes:
            if (
                self.spec.rule_type not in ("COMP", "CON")
                and batch_size > self.spec.rule_count
            ):
                continue
            result.points.append(self.measure(batch_size))
        return result
