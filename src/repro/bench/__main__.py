"""Command-line entry point: ``python -m repro.bench <figure> [--full]``.

Examples::

    python -m repro.bench fig11
    python -m repro.bench all --full
    python -m repro.bench fig15 --csv fig15.csv
    python -m repro.bench fig12 --metrics            # writes BENCH_fig12.json
    python -m repro.bench all --metrics --metrics-dir artifacts/
    python -m repro.bench fig11 --parallel 4         # serial vs sharded
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.ablations import ABLATIONS
from repro.bench.figures import FIGURES
from repro.bench.parallel import PARALLEL_SPECS, parallel_figure, write_parallel_json
from repro.bench.reporting import (
    render_chart,
    render_claims,
    render_figure,
    write_bench_json,
)
from repro.obs.metrics import default_registry, reset_default_registry

__all__ = ["main"]


def _write_csv(figure, path: str) -> None:
    with open(path, "w") as handle:
        handle.write("figure,series,batch_size,ms_per_document,hits\n")
        for sweep in figure.series:
            for point in sweep.points:
                handle.write(
                    f"{figure.figure_id},{sweep.label},{point.batch_size},"
                    f"{point.ms_per_document:.4f},{point.hits}\n"
                )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the evaluation figures of the MDV paper "
        "(ICDE 2002).",
    )
    parser.add_argument(
        "figure",
        choices=[*FIGURES, "all", "ablations"],
        help="which figure to reproduce, 'all' figures, or 'ablations'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's rule base sizes (slower; quick mode scales "
        "them down)",
    )
    parser.add_argument("--csv", help="also write the points to a CSV file")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render an ASCII chart of each figure",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="write BENCH_<figure>.json (wall time + hot-path counters "
        "per point) and dump the metrics registry snapshot",
    )
    parser.add_argument(
        "--metrics-dir",
        default=".",
        help="directory for BENCH_*.json artifacts (default: cwd)",
    )
    parser.add_argument(
        "--parallel",
        type=int,
        default=0,
        metavar="N",
        help="compare the serial filter against N triggering shards on "
        "the figure's workload (writes BENCH_<figure>_parallel.json "
        "with --metrics); 0 disables",
    )
    args = parser.parse_args(argv)
    # Fresh registry per invocation: the run's metrics, nothing else's.
    reset_default_registry()

    if args.figure == "ablations":
        failures = 0
        for name, build in ABLATIONS.items():
            started = time.perf_counter()
            result = build()
            elapsed = time.perf_counter() - started
            print(result.render())
            print(f"(wall time: {elapsed:.1f}s)\n")
            if not result.all_claims_hold:
                failures += 1
        return 1 if failures else 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]

    if args.parallel:
        failures = 0
        for name in names:
            if name not in PARALLEL_SPECS:
                print(f"(no parallel workload for {name}; skipped)")
                continue
            started = time.perf_counter()
            figure = parallel_figure(name, parallelism=args.parallel)
            elapsed = time.perf_counter() - started
            print(render_figure(figure))
            if args.chart:
                print(render_chart(figure))
            print(render_claims(figure))
            print(f"(wall time: {elapsed:.1f}s)\n")
            if args.metrics:
                path = write_parallel_json(
                    figure,
                    name,
                    args.metrics_dir,
                    extra={"elapsed_seconds": round(elapsed, 6)},
                )
                print(f"(wrote {path})")
            if not figure.all_claims_hold:
                failures += 1
        if args.metrics:
            print(json.dumps(default_registry().snapshot(), indent=2))
        return 1 if failures else 0

    failures = 0
    for name in names:
        started = time.perf_counter()
        figure = FIGURES[name](quick=not args.full)
        elapsed = time.perf_counter() - started
        print(render_figure(figure))
        if args.chart:
            print(render_chart(figure))
        print(render_claims(figure))
        print(f"(wall time: {elapsed:.1f}s)\n")
        if args.csv:
            _write_csv(figure, args.csv if len(names) == 1 else f"{name}.csv")
        if args.metrics:
            path = write_bench_json(
                figure,
                args.metrics_dir,
                extra={
                    "elapsed_seconds": round(elapsed, 6),
                    "mode": "full" if args.full else "quick",
                },
            )
            print(f"(wrote {path})")
        if not figure.all_claims_hold:
            failures += 1
    if args.metrics:
        print(json.dumps(default_registry().snapshot(), indent=2))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
