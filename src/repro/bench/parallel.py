"""Serial-vs-parallel comparison of the filter's triggering stage.

Runs one figure workload twice against the *same* prepared rule base —
once with the paper's serial filter (``parallelism=1``, the correctness
oracle) and once with the sharded evaluator
(:mod:`repro.filter.shards`) — and checks two claims:

1. **Correctness** (must always hold): every measured point produces
   the same hit count under both evaluators.  The differential test
   suite (``tests/filter/test_parallel_differential.py``) checks full
   outcome equality; the bench re-checks the cheap invariant on the
   actual benchmark workload.
2. **Speedup** (hardware-conditional): on a multi-core host the sharded
   evaluator must reach at least :data:`SPEEDUP_TARGET` over serial in
   sweep wall time.  On a single-core host thread parallelism cannot
   beat serial — there the claim degrades to an *overhead bound*
   (parallel may cost at most 2× serial) and the artifact records the
   measured ratio and the CPU count honestly, so the ≥1.5× expectation
   can be validated on capable hardware (EXPERIMENTS.md, "Parallel
   filter evaluation").

The artifact (``BENCH_<figure>_parallel.json``) is written next to the
regular figure artifacts but is **not** part of the CI regression-gate
baselines, which stay pinned to the serial filter.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.bench.figures import _QUICK_BATCHES
from repro.bench.harness import FilterBench, SweepResult
from repro.bench.reporting import FigureResult, figure_to_dict
from repro.workload.scenarios import WorkloadSpec

__all__ = [
    "PARALLEL_SPECS",
    "SPEEDUP_TARGET",
    "parallel_figure",
    "write_parallel_json",
]

#: Per-figure workload used for the comparison: the figure's larger
#: quick-mode rule base (``(rule_type, rule_count, match_fraction)``).
PARALLEL_SPECS: dict[str, tuple[str, int, float | None]] = {
    "fig11": ("OID", 20_000, None),
    "fig12": ("PATH", 5_000, None),
    "fig13": ("COMP", 5_000, 0.1),
    "fig14": ("JOIN", 5_000, None),
    "fig15": ("COMP", 2_000, 0.2),
}

#: Required sweep-wall-time speedup of parallel over serial on hosts
#: with at least this many cores available to the process.
SPEEDUP_TARGET = 1.5
#: On single-core hosts the claim degrades to an overhead bound: the
#: sharded evaluator may cost at most ``1 / SPEEDUP_FLOOR`` of serial.
SPEEDUP_FLOOR = 0.5


def _available_cpus() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spec_for(figure: str) -> WorkloadSpec:
    try:
        rule_type, rule_count, fraction = PARALLEL_SPECS[figure]
    except KeyError:
        raise ValueError(
            f"no parallel workload for {figure!r}; "
            f"one of {sorted(PARALLEL_SPECS)}"
        ) from None
    if fraction is None:
        return WorkloadSpec(rule_type, rule_count)
    return WorkloadSpec(rule_type, rule_count, match_fraction=fraction)


def parallel_figure(
    figure: str,
    parallelism: int = 4,
    batches=_QUICK_BATCHES,
    spec: WorkloadSpec | None = None,
) -> FigureResult:
    """Measure one figure's workload serial vs sharded.

    Returns a :class:`FigureResult` with two series (serial baseline
    first) and the correctness/speedup claims described in the module
    docstring.  ``spec`` overrides the registered workload (tests use a
    tiny one).
    """
    workload = spec if spec is not None else _spec_for(figure)
    serial_bench = FilterBench(workload)
    try:
        parallel_bench = serial_bench.variant(parallelism)
        serial = serial_bench.sweep(batches)
        parallel = parallel_bench.sweep(batches)
        parallel_bench.close()
    finally:
        serial_bench.close()
    return _compare(figure, parallelism, serial, parallel)


def _compare(
    figure: str,
    parallelism: int,
    serial: SweepResult,
    parallel: SweepResult,
) -> FigureResult:
    hit_pairs = [
        (s.batch_size, s.hits, p.hits)
        for s, p in zip(serial.points, parallel.points)
    ]
    hits_equal = all(s == p for __, s, p in hit_pairs)
    speedup = (
        serial.wall_seconds / parallel.wall_seconds
        if parallel.wall_seconds > 0
        else float("inf")
    )
    cpus = _available_cpus()

    claims = [
        (
            f"sharded evaluation (N={parallelism}) produces the serial "
            f"hit count at every batch size",
            hits_equal,
        )
    ]
    if cpus > 1:
        claims.append(
            (
                f"parallel speedup {speedup:.2f}x >= {SPEEDUP_TARGET}x "
                f"on {cpus} CPUs",
                speedup >= SPEEDUP_TARGET,
            )
        )
    else:
        # Single-core host: threads cannot run concurrently, so assert
        # the overhead stays bounded and record the measured ratio; the
        # >= 1.5x expectation applies on multi-core hardware only.
        claims.append(
            (
                f"single-core host (1 CPU available): measured speedup "
                f"{speedup:.2f}x; overhead bound {SPEEDUP_FLOOR}x holds "
                f"(>= {SPEEDUP_TARGET}x expected on multi-core)",
                speedup >= SPEEDUP_FLOOR,
            )
        )

    result = FigureResult(
        figure_id=f"{figure} (parallel)",
        title=(
            f"Sharded triggering: {serial.spec.label()} serial vs "
            f"parallel={parallelism}"
        ),
        series=[serial, parallel],
        claims=claims,
    )
    # Stash the comparison scalars for the artifact writer.
    result.parallel_summary = {  # type: ignore[attr-defined]
        "parallelism": parallelism,
        "cpu_count": cpus,
        "speedup": round(speedup, 4),
        "serial_wall_seconds": round(serial.wall_seconds, 6),
        "parallel_wall_seconds": round(parallel.wall_seconds, 6),
        "hits_equal": hits_equal,
    }
    return result


def write_parallel_json(
    figure: FigureResult,
    name: str,
    directory: str | Path = ".",
    extra: dict | None = None,
) -> Path:
    """Write ``BENCH_<name>_parallel.json``; returns the path.

    Bypasses :func:`~repro.bench.reporting.write_bench_json` naming
    (``figure_slug`` would collapse ``"fig11 (parallel)"`` into the
    serial artifact's name) and merges the comparison summary into the
    payload top level.
    """
    import json

    payload = figure_to_dict(figure)
    payload["figure"] = f"{name}_parallel"
    payload.update(getattr(figure, "parallel_summary", {}))
    if extra:
        payload.update(extra)
    target = Path(directory) / f"BENCH_{name}_parallel.json"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return target
