"""A span-based tracer on a pluggable clock.

A :class:`Tracer` produces :class:`Span` trees: ``with
tracer.span("filter.run"):`` opens a span, nested ``span()`` calls
become children, and closing a span records its duration.  The clock is
any zero-argument callable returning milliseconds — wall time
(``time.perf_counter`` scaled) in the filter tier, the network bus's
*simulated* clock in the delivery tier — so one tracer implementation
covers both timelines.

Completed root spans are kept in a bounded ring (newest wins) for
inspection; when the tracer is built over a
:class:`~repro.obs.metrics.MetricsRegistry`, every completed span also
feeds a ``trace.<name>.ms`` histogram and a ``trace.<name>.count``
counter, which is how span timings reach ``--metrics`` dumps and
``BENCH_*.json`` without anyone walking span trees.
"""

from __future__ import annotations

import time
from collections import deque
from collections.abc import Callable, Iterator
from contextlib import contextmanager

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer", "wall_clock_ms"]


def wall_clock_ms() -> float:
    """Wall time in milliseconds (the default tracer clock)."""
    return time.perf_counter() * 1000.0


class Span:
    """One traced operation: name, timing, attributes, children."""

    __slots__ = ("name", "start_ms", "end_ms", "attributes", "children")

    def __init__(self, name: str, start_ms: float) -> None:
        self.name = name
        self.start_ms = start_ms
        self.end_ms: float | None = None
        self.attributes: dict[str, object] = {}
        self.children: list[Span] = []

    @property
    def finished(self) -> bool:
        return self.end_ms is not None

    @property
    def duration_ms(self) -> float:
        if self.end_ms is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_ms - self.start_ms

    def set(self, key: str, value: object) -> None:
        """Attach an attribute (iteration number, row count, …)."""
        self.attributes[key] = value

    def tree(self, indent: int = 0) -> str:
        """A readable rendering of this span and its descendants."""
        duration = (
            f"{self.duration_ms:.3f}ms" if self.finished else "(open)"
        )
        attributes = (
            " " + " ".join(f"{k}={v}" for k, v in sorted(self.attributes.items()))
            if self.attributes
            else ""
        )
        lines = [f"{'  ' * indent}{self.name} {duration}{attributes}"]
        for child in self.children:
            lines.append(child.tree(indent + 1))
        return "\n".join(lines)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "start_ms": self.start_ms,
            "duration_ms": self.duration_ms if self.finished else None,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }


class Tracer:
    """Produces nested spans timed by an arbitrary millisecond clock."""

    def __init__(
        self,
        clock: Callable[[], float] = wall_clock_ms,
        registry: MetricsRegistry | None = None,
        keep: int = 256,
    ) -> None:
        self._clock = clock
        self._registry = registry
        self._stack: list[Span] = []
        #: Completed *root* spans, newest last, bounded to ``keep``.
        self.finished_roots: deque[Span] = deque(maxlen=keep)

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attributes: object) -> Iterator[Span]:
        """Open a span; nested calls become children of the current one."""
        opened = Span(name, self._clock())
        opened.attributes.update(attributes)
        if self._stack:
            self._stack[-1].children.append(opened)
        self._stack.append(opened)
        try:
            yield opened
        finally:
            closed = self._stack.pop()
            closed.end_ms = self._clock()
            if not self._stack:
                self.finished_roots.append(closed)
            if self._registry is not None:
                self._registry.histogram(f"trace.{closed.name}.ms").observe(
                    closed.duration_ms
                )
                self._registry.counter(f"trace.{closed.name}.count").inc()

    def last_root(self) -> Span | None:
        """The most recently completed root span."""
        return self.finished_roots[-1] if self.finished_roots else None
