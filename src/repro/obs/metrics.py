"""Counters, gauges and fixed-bucket histograms in a snapshot registry.

Design constraints, in order:

1. **Hot-path cheap.**  The filter engine and the storage layer update
   these metrics once per SQL statement; an update is one attribute
   add on a pre-resolved instrument object.  Call sites are expected to
   resolve instruments once (``self._m_statements =
   registry.counter("storage.statements")``) and update the cached
   handle, never to look names up per event.
2. **Deterministic snapshots.**  :meth:`MetricsRegistry.snapshot`
   renders instruments sorted by name and label, so two runs performing
   the same work produce byte-identical JSON — the property the chaos
   suite and the benchmark baselines rely on.
3. **Zero dependencies.**  Plain dataclass-free Python; the bucket
   semantics follow the Prometheus convention (a bucket's upper bound
   is *inclusive*: ``value <= le``) so the numbers read familiarly, but
   nothing here speaks any wire protocol.
"""

from __future__ import annotations

import bisect
import threading
from collections.abc import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "default_registry",
    "reset_default_registry",
]

#: Default histogram boundaries for latency-shaped observations, in ms.
#: Geometric-ish spacing from sub-millisecond filter statements to the
#: multi-second backoff ceiling of the outbox retry policy.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: A label set: name → value, rendered sorted into the metric key.
Labels = Mapping[str, str]

_InstrumentKey = tuple[str, tuple[tuple[str, str], ...]]


def _instrument_key(name: str, labels: Labels | None) -> _InstrumentKey:
    if not name:
        raise ValueError("metric name must be non-empty")
    if labels:
        return name, tuple(sorted(labels.items()))
    return name, ()


def _render_key(key: _InstrumentKey) -> str:
    name, labels = key
    if not labels:
        return name
    rendered = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{rendered}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += amount


class Gauge:
    """A value that may go up and down (lag, queue depth, clock)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A fixed-boundary histogram with inclusive upper bounds.

    An observation lands in the first bucket whose boundary is ``>=``
    the value; values beyond the last boundary land in the implicit
    overflow bucket reported as ``"+Inf"``.  Boundaries are fixed at
    construction: merging snapshots across processes or runs never
    needs bucket realignment.
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "total")

    def __init__(self, boundaries: Iterable[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("a histogram needs at least one boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(
                f"boundaries must be strictly increasing, got {bounds!r}"
            )
        self.boundaries = bounds
        #: Per-bucket counts; index ``len(boundaries)`` is overflow.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.boundaries, value)
        self.bucket_counts[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the boundary of the covering bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            seen += bucket_count
            if seen >= rank and bucket_count:
                if index < len(self.boundaries):
                    return self.boundaries[index]
                return float("inf")
        return float("inf")  # pragma: no cover - loop always covers count

    def snapshot(self) -> dict[str, object]:
        buckets: dict[str, int] = {}
        for boundary, bucket_count in zip(self.boundaries, self.bucket_counts):
            buckets[f"{boundary:g}"] = bucket_count
        buckets["+Inf"] = self.bucket_counts[-1]
        return {
            "count": self.count,
            "sum": self.total,
            "buckets": buckets,
        }


class MetricsRegistry:
    """Get-or-create instrument store with a deterministic snapshot.

    Instruments are keyed by ``(name, sorted labels)``; asking for an
    existing name with a different instrument type is an error (one
    name, one meaning).  A process-wide instance from
    :func:`default_registry` backs every component that is not handed
    an explicit registry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[_InstrumentKey, Counter] = {}
        self._gauges: dict[_InstrumentKey, Gauge] = {}
        self._histograms: dict[_InstrumentKey, Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str, labels: Labels | None = None) -> Counter:
        key = _instrument_key(name, labels)
        with self._lock:
            self._check_unique(key, self._counters)
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
            return instrument

    def gauge(self, name: str, labels: Labels | None = None) -> Gauge:
        key = _instrument_key(name, labels)
        with self._lock:
            self._check_unique(key, self._gauges)
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
            return instrument

    def histogram(
        self,
        name: str,
        boundaries: Iterable[float] = DEFAULT_LATENCY_BUCKETS_MS,
        labels: Labels | None = None,
    ) -> Histogram:
        key = _instrument_key(name, labels)
        with self._lock:
            self._check_unique(key, self._histograms)
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(boundaries)
            return instrument

    def _check_unique(
        self,
        key: _InstrumentKey,
        own: Mapping[_InstrumentKey, object],
    ) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not own and key in family:
                raise ValueError(
                    f"metric {_render_key(key)!r} already registered with a "
                    f"different instrument type"
                )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """The full registry state, deterministically ordered."""
        with self._lock:
            counters = {
                _render_key(key): self._counters[key].value
                for key in sorted(self._counters)
            }
            gauges = {
                _render_key(key): self._gauges[key].value
                for key in sorted(self._gauges)
            }
            histograms = {
                _render_key(key): self._histograms[key].snapshot()
                for key in sorted(self._histograms)
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def counter_values(self) -> dict[str, float]:
        """Flat ``name -> value`` view of every counter (delta maths)."""
        with self._lock:
            return {
                _render_key(key): counter.value
                for key, counter in self._counters.items()
            }

    def counters_since(self, before: Mapping[str, float]) -> dict[str, float]:
        """Non-zero counter deltas against an earlier
        :meth:`counter_values` capture, sorted by name."""
        now = self.counter_values()
        delta = {
            name: value - before.get(name, 0.0)
            for name, value in now.items()
            if value != before.get(name, 0.0)
        }
        return dict(sorted(delta.items()))

    def reset(self) -> None:
        """Drop every instrument (tests and CLI isolation)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


_default_registry = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry used when none is passed explicitly."""
    return _default_registry


def reset_default_registry() -> None:
    """Clear the process-wide registry (test isolation, CLI runs).

    Components cache instrument handles; instruments are cleared from
    the registry but cached handles keep functioning — they are simply
    no longer reported.  Long-lived components should therefore be
    constructed *after* the reset, which is how the CLIs use it.
    """
    _default_registry.reset()
