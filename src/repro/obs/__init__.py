"""Observability: zero-dependency metrics and tracing for the hot paths.

The paper's evaluation (Section 4) is built on *measurement* — per-batch
filter cost, curve shapes across rule-base sizes — yet a production MDV
deployment needs the same visibility at runtime: how many atoms the
filter scanned, how many rule groups each iteration touched, how far a
replica or a subscriber cache is lagging.  This package supplies that
layer without any third-party dependency:

- :mod:`repro.obs.metrics` — :class:`Counter`, :class:`Gauge`,
  :class:`Histogram` (fixed bucket boundaries) collected in a
  :class:`MetricsRegistry` with a deterministic snapshot API;
- :mod:`repro.obs.tracing` — a span-based :class:`Tracer` driven by a
  pluggable clock, so spans measure *simulated* milliseconds in the
  network tier and wall milliseconds in the filter tier with one
  implementation.

Every instrumented component (:class:`~repro.filter.engine.FilterEngine`,
:class:`~repro.storage.engine.Database`, :class:`~repro.mdv.outbox.Outbox`,
:class:`~repro.net.bus.NetworkBus`, …) accepts an explicit registry and
falls back to the process-wide :func:`default_registry`, which the
``--metrics`` flags of ``python -m repro.mdv`` and ``python -m
repro.bench`` dump as JSON.  docs/OBSERVABILITY.md catalogues the metric
names and the span taxonomy.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "Span",
    "Tracer",
]
