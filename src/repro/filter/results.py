"""Result types of filter runs and of the update/delete algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.model import URIRef

__all__ = ["FilterRunResult", "PublishOutcome"]


@dataclass
class FilterRunResult:
    """The outcome of one execution of the filter (one pass).

    ``pairs`` holds every distinct ``(rule_id, uri_reference)`` row the
    run wrote into ``ResultObjects`` across all iterations; ``by_rule``
    groups them.  ``iterations`` counts join-evaluation waves (the paper
    bounds it by the longest dependency-graph path); ``triggering_hits``
    is the size of the initial iteration.
    """

    pairs: set[tuple[int, URIRef]] = field(default_factory=set)
    iterations: int = 0
    triggering_hits: int = 0
    #: Wall time spent matching triggering rules (iteration 0).
    triggering_seconds: float = 0.0
    #: Wall time spent in join-rule (group) iterations.
    join_seconds: float = 0.0

    @property
    def by_rule(self) -> dict[int, set[URIRef]]:
        grouped: dict[int, set[URIRef]] = {}
        for rule_id, uri in self.pairs:
            grouped.setdefault(rule_id, set()).add(uri)
        return grouped

    def matches_of(self, rule_ids: set[int]) -> dict[int, set[URIRef]]:
        """The pairs restricted to the given (end) rules."""
        result: dict[int, set[URIRef]] = {}
        for rule_id, uri in self.pairs:
            if rule_id in rule_ids:
                result.setdefault(rule_id, set()).add(uri)
        return result

    def uris_of(self, rule_ids: set[int]) -> set[URIRef]:
        return {uri for rule_id, uri in self.pairs if rule_id in rule_ids}

    def all_uris(self) -> set[URIRef]:
        return {uri for __, uri in self.pairs}


@dataclass
class PublishOutcome:
    """What one registration/update/deletion means for subscribers.

    - ``matched``: per end rule, the resources that (newly or still)
      match after the change — the publisher sends their content.
    - ``unmatched``: per end rule, the *true candidates* of the paper's
      Section 3.5 — resources that no longer match that rule.
    - ``deleted``: resources removed from the store entirely.
    - ``passes`` records the :class:`FilterRunResult` of each executed
      filter pass (one for inserts, three for updates/deletions).
    """

    matched: dict[int, set[URIRef]] = field(default_factory=dict)
    unmatched: dict[int, set[URIRef]] = field(default_factory=dict)
    deleted: set[URIRef] = field(default_factory=set)
    passes: list[FilterRunResult] = field(default_factory=list)

    def add_matched(self, rule_id: int, uri: URIRef) -> None:
        self.matched.setdefault(rule_id, set()).add(uri)

    def add_unmatched(self, rule_id: int, uri: URIRef) -> None:
        self.unmatched.setdefault(rule_id, set()).add(uri)

    @property
    def has_notifications(self) -> bool:
        return bool(self.matched or self.unmatched or self.deleted)

    def matched_uris(self) -> set[URIRef]:
        return {uri for uris in self.matched.values() for uri in uris}

    def summary(self) -> str:
        matched = sum(len(v) for v in self.matched.values())
        unmatched = sum(len(v) for v in self.unmatched.values())
        return (
            f"publish(matched={matched}, unmatched={unmatched}, "
            f"deleted={len(self.deleted)}, passes={len(self.passes)})"
        )
