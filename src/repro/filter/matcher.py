"""Determination of affected triggering rules (paper, Section 3.4).

*"Our prototype implementation starts with joining the table FilterData
with FilterRules and all FilterRulesOP tables using a join predicate
depending on the actual FilterRules/FilterRulesOP table."*

This module emits exactly those joins: one ``INSERT … SELECT`` per
triggering index table, matching the run's input atoms
(``filter_input``) against the rules and writing hits into
``result_objects`` at iteration 0.  The same predicates, re-targeted at
the persistent ``filter_data`` table, serve to initialize the
materialized results of a *newly registered* triggering rule against the
already-stored metadata.

Index behaviour mirrors the paper's findings:

- equality predicates (and the ``rdf#subject`` identity used by OID
  rules) probe the ``(class, property, value)`` index — their cost is
  independent of the rule base size (Figure 11);
- range and ``contains`` predicates scan all rules sharing
  ``(class, property)`` — their cost grows with the rule base size and
  the match percentage (Figures 13 and 15).

``contains_index="trigram"`` replaces the second finding for text
predicates: indexable ``contains`` rules (needle at least one trigram
long) are matched through the inverted index of :mod:`repro.text.index`
— probe the postings with the value's trigram set, verify candidates —
while short needles stay on the scan join, restricted to
``length(fr.value) < 3`` so the two paths partition the rule base
exactly.  The default remains the paper's scan.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.rdf.namespaces import RDF_SUBJECT
from repro.storage.engine import Database
from repro.text.index import CONTAINS_INDEX_MODES, match_contains_indexed
from repro.text.ngrams import TRIGRAM_LENGTH, contains_sql_condition

__all__ = [
    "TRIGGERING_JOINS",
    "match_triggering_rules",
    "select_triggering_hits",
    "initialize_triggering_rule",
]

#: ``(index table, SQL condition)`` per matching join.  ``fi`` is the
#: atom side (``filter_input`` or ``filter_data``), ``fr`` the rule side.
#: Ordering operators compare numerically — constants are stored as
#: strings and re-converted, as in the paper's Section 3.3.4.  Every
#: condition requires ``fr.class = fi.class`` and relates one atom row to
#: one rule row — the property the sharded evaluator
#: (:mod:`repro.filter.shards`) relies on to partition the input.
TRIGGERING_JOINS = (
    (
        "filter_rules_class",
        f"fr.class = fi.class AND fi.property = '{RDF_SUBJECT}'",
    ),
    (
        "filter_rules_eq",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND fr.value = fi.value",
    ),
    (
        "filter_rules_ne",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND fr.value != fi.value",
    ),
    (
        "filter_rules_con",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND " + contains_sql_condition("fi.value", "fr.value"),
    ),
    (
        "filter_rules_lt",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) < CAST(fr.value AS REAL)",
    ),
    (
        "filter_rules_le",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) <= CAST(fr.value AS REAL)",
    ),
    (
        "filter_rules_gt",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) > CAST(fr.value AS REAL)",
    ),
    (
        "filter_rules_ge",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) >= CAST(fr.value AS REAL)",
    ),
)

#: In trigram mode the scan join keeps only the rules the index cannot
#: hold.  ``length()`` counts codepoints on TEXT, matching Python's
#: ``len`` in :func:`repro.text.ngrams.is_indexable` — the two paths
#: partition ``filter_rules_con`` exactly.
_CONTAINS_FALLBACK = f" AND length(fr.value) < {TRIGRAM_LENGTH}"


def _check_mode(contains_index: str) -> None:
    if contains_index not in CONTAINS_INDEX_MODES:
        raise ValueError(
            f"contains_index must be one of {CONTAINS_INDEX_MODES}, got "
            f"{contains_index!r}"
        )


def _joins(contains_index: str) -> list[tuple[str, str, str]]:
    """The triggering joins as ``(table, FROM clause, condition)``.

    The ``CROSS JOIN`` order is load-bearing twice over.  Normally the
    (small) input batch drives and the rule index is probed per atom —
    left to itself the planner may scan the rule table and probe the
    input, O(rule base) per statement, which would destroy the OID
    flatness of Figure 11.  The trigram mode's contains fallback flips
    the order: its rule side is the partial index over short needles
    (``idx_frcon_short``, usually near-empty), and driving from it keeps
    the statement O(short rules) — input-driven, the planner builds a
    bloom filter by scanning all of ``filter_rules_con``.
    """
    joins = []
    for table, condition in TRIGGERING_JOINS:
        from_clause = f"filter_input fi CROSS JOIN {table} fr"
        if table == "filter_rules_con" and contains_index == "trigram":
            condition = condition + _CONTAINS_FALLBACK
            from_clause = f"{table} fr CROSS JOIN filter_input fi"
        joins.append((table, from_clause, condition))
    return joins


def match_triggering_rules(
    db: Database,
    contains_index: str = "scan",
    metrics: MetricsRegistry | None = None,
) -> int:
    """Join ``filter_input`` against every triggering index table.

    Hits are written into ``result_objects`` at iteration 0.  Returns the
    number of distinct ``(resource, rule)`` hits inserted.  With
    ``contains_index="trigram"``, indexable ``contains`` rules are
    matched through the trigram postings instead of the scan join.
    """
    _check_mode(contains_index)
    inserted = 0
    fallback_hits = 0
    for table, from_clause, condition in _joins(contains_index):
        cursor = db.execute(
            f"INSERT OR IGNORE INTO result_objects "
            f"(uri_reference, rule_id, iteration) "
            f"SELECT DISTINCT fi.uri_reference, fr.rule_id, 0 "
            f"FROM {from_clause} WHERE {condition}"
        )
        inserted += cursor.rowcount
        if table == "filter_rules_con" and contains_index == "trigram":
            fallback_hits = max(cursor.rowcount, 0)
    if contains_index == "trigram":
        registry = metrics if metrics is not None else default_registry()
        registry.counter("text.fallback_hits").inc(fallback_hits)
        hits = match_contains_indexed(db, metrics=registry)
        if hits:
            cursor = db.executemany(
                "INSERT OR IGNORE INTO result_objects "
                "(uri_reference, rule_id, iteration) VALUES (?, ?, 0)",
                hits,
            )
            inserted += max(cursor.rowcount, 0)
    return inserted


def select_triggering_hits(
    db: Database,
    contains_index: str = "scan",
    metrics: MetricsRegistry | None = None,
) -> list[tuple[str, int]]:
    """The matching joins as plain SELECTs: ``(uri_reference, rule_id)``.

    Same predicates and join order as :func:`match_triggering_rules`, but
    the hits are returned to the caller instead of being inserted into
    ``result_objects`` — the shape a worker shard needs, whose database
    holds the rule replicas but not the run's result table.
    """
    _check_mode(contains_index)
    hits: list[tuple[str, int]] = []
    fallback_hits = 0
    for table, from_clause, condition in _joins(contains_index):
        rows = db.query_all(
            f"SELECT DISTINCT fi.uri_reference, fr.rule_id "
            f"FROM {from_clause} WHERE {condition}"
        )
        hits.extend((str(row[0]), int(row[1])) for row in rows)
        if table == "filter_rules_con" and contains_index == "trigram":
            fallback_hits = len(rows)
    if contains_index == "trigram":
        registry = metrics if metrics is not None else default_registry()
        registry.counter("text.fallback_hits").inc(fallback_hits)
        hits.extend(match_contains_indexed(db, metrics=registry))
    return hits


def initialize_triggering_rule(db: Database, rule_id: int) -> int:
    """Materialize a newly registered triggering rule over ``filter_data``.

    Runs the same matching joins as :func:`match_triggering_rules`, but
    against the persistent atom store and restricted to ``rule_id``,
    inserting straight into ``materialized``.  Returns the number of
    matching resources found.  Always uses the scan joins: the trigram
    index is over rule *needles*, and here the rule side is a single row
    — the atom store is the big side either way.
    """
    inserted = 0
    for table, condition in TRIGGERING_JOINS:
        # Here the rule side is a single rule and the atom store is the
        # big side — drive from the rule row, probe the atom indexes.
        cursor = db.execute(
            f"INSERT OR IGNORE INTO materialized (rule_id, uri_reference) "
            f"SELECT DISTINCT fr.rule_id, fi.uri_reference "
            f"FROM {table} fr CROSS JOIN filter_data fi "
            f"WHERE fr.rule_id = ? AND {condition}",
            (rule_id,),
        )
        inserted += cursor.rowcount
    return inserted
