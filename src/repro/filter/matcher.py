"""Determination of affected triggering rules (paper, Section 3.4).

*"Our prototype implementation starts with joining the table FilterData
with FilterRules and all FilterRulesOP tables using a join predicate
depending on the actual FilterRules/FilterRulesOP table."*

This module emits exactly those joins: one ``INSERT … SELECT`` per
triggering index table, matching the run's input atoms
(``filter_input``) against the rules and writing hits into
``result_objects`` at iteration 0.  The same predicates, re-targeted at
the persistent ``filter_data`` table, serve to initialize the
materialized results of a *newly registered* triggering rule against the
already-stored metadata.

Index behaviour mirrors the paper's findings:

- equality predicates (and the ``rdf#subject`` identity used by OID
  rules) probe the ``(class, property, value)`` index — their cost is
  independent of the rule base size (Figure 11);
- range and ``contains`` predicates scan all rules sharing
  ``(class, property)`` — their cost grows with the rule base size and
  the match percentage (Figures 13 and 15).
"""

from __future__ import annotations

from repro.rdf.namespaces import RDF_SUBJECT
from repro.storage.engine import Database

__all__ = [
    "TRIGGERING_JOINS",
    "match_triggering_rules",
    "select_triggering_hits",
    "initialize_triggering_rule",
]

#: ``(index table, SQL condition)`` per matching join.  ``fi`` is the
#: atom side (``filter_input`` or ``filter_data``), ``fr`` the rule side.
#: Ordering operators compare numerically — constants are stored as
#: strings and re-converted, as in the paper's Section 3.3.4.  Every
#: condition requires ``fr.class = fi.class`` and relates one atom row to
#: one rule row — the property the sharded evaluator
#: (:mod:`repro.filter.shards`) relies on to partition the input.
TRIGGERING_JOINS = (
    (
        "filter_rules_class",
        f"fr.class = fi.class AND fi.property = '{RDF_SUBJECT}'",
    ),
    (
        "filter_rules_eq",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND fr.value = fi.value",
    ),
    (
        "filter_rules_ne",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND fr.value != fi.value",
    ),
    (
        "filter_rules_con",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND instr(fi.value, fr.value) > 0",
    ),
    (
        "filter_rules_lt",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) < CAST(fr.value AS REAL)",
    ),
    (
        "filter_rules_le",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) <= CAST(fr.value AS REAL)",
    ),
    (
        "filter_rules_gt",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) > CAST(fr.value AS REAL)",
    ),
    (
        "filter_rules_ge",
        "fr.class = fi.class AND fr.property = fi.property "
        "AND CAST(fi.value AS REAL) >= CAST(fr.value AS REAL)",
    ),
)


def match_triggering_rules(db: Database) -> int:
    """Join ``filter_input`` against every triggering index table.

    Hits are written into ``result_objects`` at iteration 0.  Returns the
    number of distinct ``(resource, rule)`` hits inserted.
    """
    inserted = 0
    for table, condition in TRIGGERING_JOINS:
        # CROSS JOIN pins the join order: scan the (small) input batch,
        # probe the rule index per atom.  Left to itself the planner may
        # scan the rule table and probe the input — O(rule base) per
        # statement, which would destroy the OID flatness of Figure 11.
        cursor = db.execute(
            f"INSERT OR IGNORE INTO result_objects "
            f"(uri_reference, rule_id, iteration) "
            f"SELECT DISTINCT fi.uri_reference, fr.rule_id, 0 "
            f"FROM filter_input fi CROSS JOIN {table} fr WHERE {condition}"
        )
        inserted += cursor.rowcount
    return inserted


def select_triggering_hits(db: Database) -> list[tuple[str, int]]:
    """The matching joins as plain SELECTs: ``(uri_reference, rule_id)``.

    Same predicates and join order as :func:`match_triggering_rules`, but
    the hits are returned to the caller instead of being inserted into
    ``result_objects`` — the shape a worker shard needs, whose database
    holds the rule replicas but not the run's result table.
    """
    hits: list[tuple[str, int]] = []
    for table, condition in TRIGGERING_JOINS:
        rows = db.query_all(
            f"SELECT DISTINCT fi.uri_reference, fr.rule_id "
            f"FROM filter_input fi CROSS JOIN {table} fr WHERE {condition}"
        )
        hits.extend((str(row[0]), int(row[1])) for row in rows)
    return hits


def initialize_triggering_rule(db: Database, rule_id: int) -> int:
    """Materialize a newly registered triggering rule over ``filter_data``.

    Runs the same matching joins as :func:`match_triggering_rules`, but
    against the persistent atom store and restricted to ``rule_id``,
    inserting straight into ``materialized``.  Returns the number of
    matching resources found.
    """
    inserted = 0
    for table, condition in TRIGGERING_JOINS:
        # Here the rule side is a single rule and the atom store is the
        # big side — drive from the rule row, probe the atom indexes.
        cursor = db.execute(
            f"INSERT OR IGNORE INTO materialized (rule_id, uri_reference) "
            f"SELECT DISTINCT fr.rule_id, fi.uri_reference "
            f"FROM {table} fr CROSS JOIN filter_data fi "
            f"WHERE fr.rule_id = ? AND {condition}",
            (rule_id,),
        )
        inserted += cursor.rowcount
    return inserted
