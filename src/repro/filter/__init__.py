"""The publish & subscribe filter algorithm (paper, Section 3).

Submodules map to the paper's steps: document decomposition (§3.2),
triggering-rule matching and join-rule evaluation (§3.4), and the
orchestrating engine including the three-pass update/delete algorithm
(§3.5).
"""

from repro.filter.counting import TRIGGERING_MODES, CountingMatcher
from repro.filter.decompose import document_atoms, resource_atoms, resources_atoms
from repro.filter.engine import FilterEngine
from repro.filter.joins import GroupSpec, initialize_join_rule, load_group
from repro.filter.matcher import initialize_triggering_rule, match_triggering_rules
from repro.filter.results import FilterRunResult, PublishOutcome

__all__ = [
    "FilterEngine",
    "FilterRunResult",
    "PublishOutcome",
    "CountingMatcher",
    "TRIGGERING_MODES",
    "GroupSpec",
    "document_atoms",
    "resource_atoms",
    "resources_atoms",
    "match_triggering_rules",
    "initialize_triggering_rule",
    "initialize_join_rule",
    "load_group",
]
