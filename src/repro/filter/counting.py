"""In-memory counting matcher for the triggering stage.

``triggering="counting"`` replaces the paper's SQL triggering joins with
the classic publish/subscribe *counting algorithm* (Yan & Garcia-Molina;
the same skeleton Gryphon, Le Subscribe and SIENA's predicate indexes
use): one compiled index per ``(class, property, operator)`` over the
registered triggering predicates, probed once per input atom, plus a
per-rule satisfied-conjunct counter that fires the rule when every
conjunct of its predicate has been seen.

Index layout (one structure per operator family):

- **class membership** (``rdf#subject`` atoms) — hash map
  ``class → rules``;
- **eq** — two-level hash map ``(class, property) → value → rules``:
  probe cost is O(1) in the rule-base size;
- **ne** — per ``(class, property)`` the rules with their constants; a
  probe scans only that bucket (ne rules are rare; SQL text
  inequality is replicated exactly);
- **lt/le/gt/ge** — per ``(class, property, op)`` a sorted array of
  bounds with parallel rule ids; a probe is one :mod:`bisect` plus the
  matching slice, O(log n + answers).  Bounds compare as SQLite REALs:
  both sides of the paper's join are ``CAST(… AS REAL)``, replicated by
  :func:`sqlite_cast_real`;
- **contains** — the trigram machinery of :mod:`repro.text` held in
  memory: postings ``trigram → rules``, candidates where the *entire*
  needle-trigram set was found, verified with the canonical substring
  check.  Needles shorter than a trigram sit in a per-bucket list and
  are brute-forced, so the two paths partition the rules exactly as the
  SQL trigram mode does.

**Counter protocol.**  Matching a batch keeps a per-``(resource, rule)``
counter and a satisfied-conjunct set; an index hit increments the
counter once per distinct conjunct and the rule fires when the counter
reaches the rule's conjunct count.  In this system a triggering atom is
a *single* predicate (conjunctions become join rules in the dependency
graph, evaluated by the shared closure) and extension classes are OR'd
(one index entry per class), so every rule's conjunct count is 1 — the
protocol is kept in its general form for fidelity to the algorithm and
for the day decomposition inlines conjunctions.

**Memory model.**  All index state lives in ``_idx_*`` attributes and
every mutation happens under ``self._lock`` — the MDV066 lint enforces
this lexically, so worker threads of the parallel fan-out can never
observe a torn index.  Maintenance is incremental: the
:class:`~repro.rules.registry.RuleRegistry` appends a
:class:`~repro.rules.registry.RuleMutation` to its bounded log whenever
``mutation_version`` moves (the same replication contract the SQL
shards key their replica refresh on); :meth:`CountingMatcher.refresh`
re-syncs exactly the touched rules from the database when the log covers
the version gap and falls back to a full rebuild otherwise (fresh
matcher, log overflow, crash recovery).  Re-syncing — drop then reload
from the store — is idempotent and rollback-proof: a log entry whose
transaction never committed simply reloads the unchanged rows.

**Parallelism.**  With ``parallelism > 1`` the engine's
:class:`~repro.filter.shards.ShardPlan` partitions the input by resource
and the partitions are matched on a thread pool sharing this one index
(readers take the same lock).  This is a determinism/parity arrangement,
not a speedup: pure-Python probing holds the GIL, so the parallel knob
exists to keep ``parallelism × triggering`` orthogonal — the speedup
comes from the index, not the fan-out (docs/CONCURRENCY.md).

Instruments: ``counting.rebuilds``, ``counting.incremental`` (log
entries applied), ``counting.rules`` (gauge), ``counting.batches``,
``counting.rows``, ``counting.hits``, ``counting.candidates`` /
``counting.false_positives`` (contains verification) and the per-batch
latency histogram ``counting.match_ms``.
"""

from __future__ import annotations

import re
import threading
import time
from bisect import bisect_left, bisect_right
from collections.abc import Iterable, Iterator, Sequence
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING

from repro.filter.shards import ShardPlan
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.rdf.namespaces import RDF_SUBJECT
from repro.storage.engine import Database
from repro.storage.schema import COMPARISON_TABLES
from repro.storage.tables import AtomRow
from repro.text.ngrams import contains_match, is_indexable, trigrams

if TYPE_CHECKING:  # imported lazily to avoid a module cycle
    from repro.rules.registry import RuleMutation

__all__ = [
    "TRIGGERING_MODES",
    "CountingMatcher",
    "PendingCountingMatch",
    "sqlite_cast_real",
]

#: Valid values of the ``triggering=`` knob on the filter engine and the
#: provider: ``"sql"`` is the paper's relational triggering join (the
#: default, for fidelity), ``"counting"`` this module's in-memory index.
TRIGGERING_MODES = ("sql", "counting")

#: One ``(uri_reference, rule_id)`` triggering hit.
Hit = tuple[str, int]

#: The prefix of a string SQLite's ``CAST(… AS REAL)`` consumes:
#: optional ASCII whitespace, optional sign, ASCII digits with optional
#: fraction, optional complete exponent.  Anything after the longest
#: valid prefix is ignored, exactly like ``sqlite3AtoF``.
_CAST_REAL = re.compile(
    r"[ \t\n\v\f\r]*"
    r"(?P<sign>[+-]?)"
    r"(?P<int>[0-9]*)"
    r"(?:\.(?P<frac>[0-9]*))?"
    r"(?:[eE](?P<exp>[+-]?[0-9]+))?"
)


def sqlite_cast_real(text: str) -> float:
    """Python replica of SQLite's ``CAST(text AS REAL)``.

    The paper's range joins compare ``CAST(fi.value AS REAL)`` against
    ``CAST(fr.value AS REAL)``; the counting index must order bounds by
    the *same* conversion or range verdicts diverge from the SQL path on
    non-numeric junk ("abc" → 0.0), partial prefixes ("1.5x" → 1.5,
    "1e" → 1.0) and hex-looking strings ("0x10" → 0.0).  Pinned against
    the real engine by a Hypothesis property test.
    """
    match = _CAST_REAL.match(text)
    assert match is not None  # every prefix (even empty) matches
    int_part = match.group("int")
    frac = match.group("frac") or ""
    if not int_part and not frac:
        return 0.0
    sign = match.group("sign")
    exp = match.group("exp") or "0"
    return float(f"{sign}{int_part or '0'}.{frac or '0'}e{exp}")


class _RangeIndex:
    """Sorted bound array with parallel rule ids for one range bucket."""

    __slots__ = ("bounds", "rules")

    def __init__(self) -> None:
        self.bounds: list[float] = []
        self.rules: list[int] = []

    def add(self, bound: float, rule_id: int) -> None:
        at = bisect_right(self.bounds, bound)
        self.bounds.insert(at, bound)
        self.rules.insert(at, rule_id)

    def remove(self, bound: float, rule_id: int) -> None:
        at = bisect_left(self.bounds, bound)
        while at < len(self.bounds) and self.bounds[at] == bound:
            if self.rules[at] == rule_id:
                del self.bounds[at]
                del self.rules[at]
                return
            at += 1

    def matches(self, op: str, value: float) -> Sequence[int]:
        """Rules whose join ``CAST(atom) <op> CAST(bound)`` holds."""
        if op == "<":  # atom < bound: bounds strictly above the value
            return self.rules[bisect_right(self.bounds, value):]
        if op == "<=":
            return self.rules[bisect_left(self.bounds, value):]
        if op == ">":  # atom > bound: bounds strictly below the value
            return self.rules[: bisect_left(self.bounds, value)]
        return self.rules[: bisect_right(self.bounds, value)]  # >=


class _ContainsBucket:
    """Per ``(class, property)`` contains rules: postings + short list."""

    __slots__ = ("postings", "needles", "short")

    def __init__(self) -> None:
        #: trigram → rules whose needle contains it (insertion-ordered
        #: dict as a set, for O(1) removal).
        self.postings: dict[str, dict[int, None]] = {}
        #: rule → (needle, distinct trigram count) for indexable needles.
        self.needles: dict[int, tuple[str, int]] = {}
        #: rule → needle for sub-trigram needles (brute-forced, exactly
        #: the SQL trigram mode's short-needle fallback join).
        self.short: dict[int, str] = {}

    @property
    def empty(self) -> bool:
        return not self.needles and not self.short


class PendingCountingMatch:
    """An in-flight counting match; duck-types
    :class:`~repro.filter.shards.PendingMatch` (``gather()`` /
    ``row_count``) so the engine merges either kind identically."""

    def __init__(
        self,
        matcher: CountingMatcher,
        futures: list[Future[list[Hit]]],
        ready: list[Hit],
        row_count: int,
    ):
        self._matcher = matcher
        self._futures = futures
        self._ready = ready
        #: Total atoms routed (the run's ``atoms_scanned``).
        self.row_count = row_count

    def gather(self) -> list[Hit]:
        """Wait for every partition; returns the merged hits.

        Partition results are concatenated in shard order, so the merged
        list is deterministic for a given input and parallelism.
        """
        hits = list(self._ready)
        for future in self._futures:
            hits.extend(future.result())
        self._matcher.hits_counter.inc(len(hits))
        return hits


class CountingMatcher:
    """The compiled predicate index plus its maintenance and fan-out."""

    def __init__(
        self,
        parallelism: int = 1,
        metrics: MetricsRegistry | None = None,
    ):
        self.metrics = metrics if metrics is not None else default_registry()
        self._plan = ShardPlan(parallelism)
        # Reentrant: refresh() holds the lock across its helper calls
        # and every mutating helper takes it again lexically — the
        # MDV066 lint checks each `self._idx_*` mutation sits inside a
        # `with self._lock:` block, so fan-out workers can never read a
        # torn index.
        self._lock = threading.RLock()
        #: Registry mutation version the index was built at.
        self.rules_version: int | None = None
        self._idx_class: dict[str, dict[int, None]] = {}
        self._idx_eq: dict[tuple[str, str], dict[str, dict[int, None]]] = {}
        self._idx_ne: dict[tuple[str, str], dict[int, str]] = {}
        self._idx_rng: dict[tuple[str, str, str], _RangeIndex] = {}
        self._idx_con: dict[tuple[str, str], _ContainsBucket] = {}
        #: rule → reverse list of index entries, for drops/re-syncs.
        self._idx_entries: dict[int, list[tuple[str, ...]]] = {}
        #: rule → conjuncts required to fire (see the module docstring:
        #: always 1 today, the protocol is kept general).
        self._idx_needed: dict[int, int] = {}
        self._executor: ThreadPoolExecutor | None = None
        if parallelism > 1:
            self._executor = ThreadPoolExecutor(
                max_workers=parallelism, thread_name_prefix="mdv-counting"
            )
        self._m_rebuilds = self.metrics.counter("counting.rebuilds")
        self._m_incremental = self.metrics.counter("counting.incremental")
        self._m_rules = self.metrics.gauge("counting.rules")
        self._m_batches = self.metrics.counter("counting.batches")
        self._m_rows = self.metrics.counter("counting.rows")
        self.hits_counter = self.metrics.counter("counting.hits")
        self._m_candidates = self.metrics.counter("counting.candidates")
        self._m_false = self.metrics.counter("counting.false_positives")
        self._m_match_ms = self.metrics.histogram("counting.match_ms")

    @property
    def parallelism(self) -> int:
        return self._plan.shard_count

    @property
    def rule_count(self) -> int:
        """Triggering rules currently indexed."""
        return len(self._idx_needed)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def refresh(
        self,
        db: Database,
        version: int,
        log: Iterable[RuleMutation] = (),
    ) -> bool:
        """Bring the index up to registry ``version``.

        When the mutation log covers the gap since the version the index
        was built at, only the touched rules are re-synced from ``db``;
        otherwise (fresh matcher, log overflow) the index is rebuilt
        from the triggering tables.  Returns ``True`` when work was
        done.
        """
        with self._lock:
            if version == self.rules_version:
                return False
            if self.rules_version is not None:
                delta = [m for m in log if m.version > self.rules_version]
                covers = (
                    len(delta) == version - self.rules_version
                    and delta
                    and delta[0].version == self.rules_version + 1
                )
                if covers:
                    for mutation in delta:
                        self._resync_rule(db, mutation.rule_id)
                    self.rules_version = version
                    self._m_incremental.inc(len(delta))
                    self._m_rules.set(float(self.rule_count))
                    return True
            self._rebuild(db)
            self.rules_version = version
            self._m_rebuilds.inc()
            self._m_rules.set(float(self.rule_count))
            return True

    def _rebuild(self, db: Database) -> None:
        """Full rebuild from the triggering index tables."""
        with self._lock:
            self._idx_class.clear()
            self._idx_eq.clear()
            self._idx_ne.clear()
            self._idx_rng.clear()
            self._idx_con.clear()
            self._idx_entries.clear()
            self._idx_needed.clear()
        for row in db.query_all(
            "SELECT rule_id, class FROM filter_rules_class "
            "ORDER BY rule_id, class"
        ):
            self._add_class_entry(int(row[0]), str(row[1]))
        for operator, table in COMPARISON_TABLES.items():
            for row in db.query_all(
                f"SELECT rule_id, class, property, value FROM {table} "
                f"ORDER BY rule_id, class"
            ):
                self._add_op_entry(
                    int(row[0]), operator, str(row[1]), str(row[2]),
                    str(row[3]),
                )

    def _resync_rule(self, db: Database, rule_id: int) -> None:
        """Drop and reload one rule's entries from the store.

        Idempotent for every log entry kind: an insert loads the new
        rows, a delete finds none, and an entry whose transaction rolled
        back reloads exactly what was already there.
        """
        self._drop_rule(rule_id)
        for row in db.query_all(
            "SELECT class FROM filter_rules_class WHERE rule_id = ? "
            "ORDER BY class",
            (rule_id,),
        ):
            self._add_class_entry(rule_id, str(row[0]))
        for operator, table in COMPARISON_TABLES.items():
            for row in db.query_all(
                f"SELECT class, property, value FROM {table} "
                f"WHERE rule_id = ? ORDER BY class",
                (rule_id,),
            ):
                self._add_op_entry(
                    rule_id, operator, str(row[0]), str(row[1]), str(row[2])
                )

    def _register(self, rule_id: int, entry: tuple[str, ...]) -> None:
        with self._lock:
            self._idx_entries.setdefault(rule_id, []).append(entry)
            # Every entry of a rule belongs to its single conjunct
            # (extension classes are OR'd); the conjunct count is 1
            # either way.
            self._idx_needed[rule_id] = 1

    def _add_class_entry(self, rule_id: int, cls: str) -> None:
        with self._lock:
            self._idx_class.setdefault(cls, {})[rule_id] = None
        self._register(rule_id, ("class", cls))

    def _add_op_entry(
        self, rule_id: int, operator: str, cls: str, prop: str, value: str
    ) -> None:
        key = (cls, prop)
        entry: tuple[str, ...]
        with self._lock:
            if operator == "=":
                self._idx_eq.setdefault(key, {}).setdefault(value, {})[
                    rule_id
                ] = None
                entry = ("eq", cls, prop, value)
            elif operator == "!=":
                self._idx_ne.setdefault(key, {})[rule_id] = value
                entry = ("ne", cls, prop)
            elif operator == "contains":
                bucket = self._idx_con.setdefault(key, _ContainsBucket())
                if is_indexable(value):
                    grams = trigrams(value)
                    bucket.needles[rule_id] = (value, len(grams))
                    for gram in sorted(grams):
                        bucket.postings.setdefault(gram, {})[rule_id] = None
                else:
                    bucket.short[rule_id] = value
                entry = ("con", cls, prop)
            else:  # <, <=, >, >=
                bound = sqlite_cast_real(value)
                self._idx_rng.setdefault(
                    (operator, cls, prop), _RangeIndex()
                ).add(bound, rule_id)
                entry = ("rng", operator, cls, prop, repr(bound))
        self._register(rule_id, entry)

    def _drop_rule(self, rule_id: int) -> None:
        """Remove every index entry of one rule (no-op when the rule
        was never indexed)."""
        with self._lock:
            entries = self._idx_entries.pop(rule_id, None)
            if entries is None:
                return
            self._idx_needed.pop(rule_id, None)
            for entry in entries:
                kind = entry[0]
                if kind == "class":
                    bucket = self._idx_class.get(entry[1])
                    if bucket is not None:
                        bucket.pop(rule_id, None)
                        if not bucket:
                            del self._idx_class[entry[1]]
                elif kind == "eq":
                    __, cls, prop, value = entry
                    by_value = self._idx_eq.get((cls, prop))
                    if by_value is not None:
                        rules = by_value.get(value)
                        if rules is not None:
                            rules.pop(rule_id, None)
                            if not rules:
                                del by_value[value]
                        if not by_value:
                            del self._idx_eq[(cls, prop)]
                elif kind == "ne":
                    ne = self._idx_ne.get((entry[1], entry[2]))
                    if ne is not None:
                        ne.pop(rule_id, None)
                        if not ne:
                            del self._idx_ne[(entry[1], entry[2])]
                elif kind == "rng":
                    __, operator, cls, prop, bound_repr = entry
                    rng = self._idx_rng.get((operator, cls, prop))
                    if rng is not None:
                        rng.remove(float(bound_repr), rule_id)
                        if not rng.bounds:
                            del self._idx_rng[(operator, cls, prop)]
                else:  # con
                    con = self._idx_con.get((entry[1], entry[2]))
                    if con is not None:
                        needle = con.needles.pop(rule_id, None)
                        con.short.pop(rule_id, None)
                        if needle is not None:
                            for gram in trigrams(needle[0]):
                                post = con.postings.get(gram)
                                if post is not None:
                                    post.pop(rule_id, None)
                                    if not post:
                                        del con.postings[gram]
                        if con.empty:
                            del self._idx_con[(entry[1], entry[2])]

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match_rows(self, rows: Sequence[AtomRow]) -> list[Hit]:
        """Match one batch of input atoms against the index.

        Returns deduplicated ``(uri_reference, rule_id)`` hits — exactly
        the pairs the SQL triggering joins produce for the same input.
        """
        started = time.perf_counter()
        hits: dict[Hit, None] = {}
        counts: dict[Hit, int] = {}
        satisfied: set[tuple[str, int, int]] = set()
        with self._lock:
            for uri, cls, prop, value in rows:
                for rule_id in self._probe(cls, prop, value):
                    conjunct_key = (uri, rule_id, 0)
                    if conjunct_key in satisfied:
                        continue
                    satisfied.add(conjunct_key)
                    pair = (uri, rule_id)
                    count = counts.get(pair, 0) + 1
                    counts[pair] = count
                    if count >= self._idx_needed[rule_id]:
                        hits[pair] = None
        self._m_match_ms.observe((time.perf_counter() - started) * 1000.0)
        return list(hits)

    def _probe(self, cls: str, prop: str, value: str) -> Iterator[int]:
        """Rules whose triggering predicate one atom satisfies.

        Yields may repeat a rule (several extension-class entries); the
        counter protocol in :meth:`match_rows` deduplicates per conjunct.
        """
        if prop == RDF_SUBJECT:
            class_bucket = self._idx_class.get(cls)
            if class_bucket:
                yield from class_bucket
        key = (cls, prop)
        by_value = self._idx_eq.get(key)
        if by_value:
            exact = by_value.get(value)
            if exact:
                yield from exact
        ne = self._idx_ne.get(key)
        if ne:
            for rule_id, constant in ne.items():
                if constant != value:
                    yield rule_id
        numeric: float | None = None
        for operator in ("<", "<=", ">", ">="):
            rng = self._idx_rng.get((operator, cls, prop))
            if rng is not None:
                if numeric is None:
                    numeric = sqlite_cast_real(value)
                yield from rng.matches(operator, numeric)
        con = self._idx_con.get(key)
        if con is not None:
            yield from self._probe_contains(con, value)

    def _probe_contains(
        self, bucket: _ContainsBucket, value: str
    ) -> Iterator[int]:
        if bucket.needles:
            grams = trigrams(value)
            if grams:
                matched: dict[int, int] = {}
                for gram in grams:
                    post = bucket.postings.get(gram)
                    if post:
                        for rule_id in post:
                            matched[rule_id] = matched.get(rule_id, 0) + 1
                for rule_id, count in matched.items():
                    needle, needed = bucket.needles[rule_id]
                    if count == needed:
                        self._m_candidates.inc()
                        if contains_match(value, needle):
                            yield rule_id
                        else:
                            self._m_false.inc()
        for rule_id, needle in bucket.short.items():
            if contains_match(value, needle):
                yield rule_id

    # ------------------------------------------------------------------
    # Dispatch (the engine-facing contract, mirroring ShardPool)
    # ------------------------------------------------------------------
    def dispatch(self, rows: Iterable[AtomRow]) -> PendingCountingMatch:
        """Match a batch, fanning out by resource when parallel.

        With ``parallelism == 1`` the match runs inline and the returned
        pending object is already resolved; the engine's overlap path is
        unaffected either way.
        """
        materialized = list(rows)
        self._m_batches.inc()
        self._m_rows.inc(len(materialized))
        if self._executor is None:
            ready = self.match_rows(materialized)
            return PendingCountingMatch(self, [], ready, len(materialized))
        parts = self._plan.partition(materialized)
        futures = [
            self._executor.submit(self.match_rows, part)
            for part in parts
            if part
        ]
        return PendingCountingMatch(self, futures, [], len(materialized))

    def match(self, rows: Iterable[AtomRow]) -> list[Hit]:
        """Dispatch and gather in one call (convenience)."""
        return self.dispatch(rows).gather()

    def close(self) -> None:
        """Stop the fan-out executor, if any (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> CountingMatcher:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
