"""The filter engine: matching documents and rules (paper, §3.4–3.5).

:class:`FilterEngine` owns the execution of filter runs over one MDP
store:

- :meth:`run` — one execution of the filter: load input atoms, determine
  affected triggering rules, then iterate join-rule (group) evaluation
  until no dependent rules remain.  Termination is guaranteed because
  the dependency graph is acyclic; the longest leaf-to-root path bounds
  the iteration count (paper, Section 3.4).
- :meth:`process_insertions` — registration of new resources: decompose
  into atoms, store them, run the filter once.
- :meth:`process_diff` — the paper's three-pass update/delete algorithm
  (Section 3.5): old versions → *candidates*; candidates against the new
  state → *wrong candidates*; new versions → new matches.  True
  candidates (candidates minus wrong candidates) are reported as
  unmatched so LMR caches can evict them.
- :meth:`initialize_rules` — full evaluation of newly registered atomic
  rules against pre-existing metadata, so a new subscription immediately
  sees already-registered resources and later incremental runs find
  correct materialized inputs.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer
from repro.rdf.diff import DocumentDiff
from repro.rdf.model import Resource, URIRef
from repro.rules.atoms import AtomNode, TriggeringAtom
from repro.rules.registry import RuleRegistry
from repro.filter.decompose import resources_atoms
from repro.filter.joins import (
    evaluate_groups_at,
    initialize_join_rule,
    load_group,
)
from repro.filter.counting import (
    TRIGGERING_MODES,
    CountingMatcher,
    PendingCountingMatch,
)
from repro.filter.matcher import initialize_triggering_rule, match_triggering_rules
from repro.filter.results import FilterRunResult, PublishOutcome
from repro.filter.shards import MAX_SHARDS, PendingMatch, ShardPool
from repro.text.index import CONTAINS_INDEX_MODES
from repro.storage.engine import Database
from repro.storage.tables import (
    AtomRow,
    FilterDataTable,
    FilterInputTable,
    MaterializedTable,
)

__all__ = ["FilterEngine"]

#: Either flavour of in-flight triggering match the engine can merge:
#: the SQL shards' and the counting matcher's pending objects share the
#: ``gather()`` / ``row_count`` contract.
PendingHits = PendingMatch | PendingCountingMatch

#: Hard cap on join iterations; the dependency graph bounds real runs far
#: below this, the cap only turns a hypothetical logic bug into an error.
_MAX_ITERATIONS = 1000


class FilterEngine:
    """Executes the publish & subscribe filter over one MDP database.

    ``use_rule_groups`` keeps the paper's grouped join evaluation
    (Section 3.3.3); setting it to ``False`` evaluates every join rule
    individually — an ablation knob used by the benchmark suite.
    """

    def __init__(
        self,
        db: Database,
        registry: RuleRegistry,
        use_rule_groups: bool = True,
        join_evaluation: str = "probe",
        metrics: MetricsRegistry | None = None,
        parallelism: int = 1,
        contains_index: str = "scan",
        triggering: str = "sql",
    ):
        if join_evaluation not in ("scan", "probe"):
            raise ValueError(
                f"join_evaluation must be 'scan' or 'probe', got "
                f"{join_evaluation!r}"
            )
        if not 1 <= parallelism <= MAX_SHARDS:
            raise ValueError(
                f"parallelism must be in 1..{MAX_SHARDS}, got {parallelism}"
            )
        if contains_index not in CONTAINS_INDEX_MODES:
            raise ValueError(
                f"contains_index must be one of {CONTAINS_INDEX_MODES}, got "
                f"{contains_index!r}"
            )
        if triggering not in TRIGGERING_MODES:
            raise ValueError(
                f"triggering must be one of {TRIGGERING_MODES}, got "
                f"{triggering!r}"
            )
        self._db = db
        self._registry = registry
        self._filter_data = FilterDataTable(db)
        self._filter_input = FilterInputTable(db)
        self._materialized = MaterializedTable(db)
        self.use_rule_groups = use_rule_groups
        #: "probe" (the default) = the delta-driven optimization, 10×
        #: faster and independent of the rule base size on PATH/JOIN
        #: workloads (EXPERIMENTS.md, ablations); "scan" = the paper's
        #: combined member evaluation, kept for the figure reproductions
        #: and ablations (see repro.filter.joins).
        self.join_evaluation = join_evaluation
        #: ``1`` (the default) runs the paper's serial triggering stage
        #: — the correctness oracle.  ``N > 1`` shards the triggering
        #: joins across ``N`` worker threads, each with its own
        #: connection (see :mod:`repro.filter.shards`); the join-rule
        #: closure and all results are unchanged, byte for byte.
        self.parallelism = parallelism
        #: ``"scan"`` (the default) matches ``contains`` rules with the
        #: paper's O(rule base) join; ``"trigram"`` probes the inverted
        #: needle index of :mod:`repro.text` instead and verifies the
        #: candidates — same hits, sub-linear cost (docs/TEXT_INDEX.md).
        self.contains_index = contains_index
        #: ``"sql"`` (the default) evaluates the triggering stage with
        #: the paper's relational joins; ``"counting"`` probes the
        #: in-memory predicate index of :mod:`repro.filter.counting` —
        #: same hits, match cost independent of the rule base size
        #: (docs/FILTER_ALGORITHM.md).  The join-rule closure, the
        #: materialization and all results are unchanged either way.
        self.triggering = triggering
        self._shards: ShardPool | None = None
        self._counting: CountingMatcher | None = None
        #: Total filter runs executed (diagnostics).
        self.runs_executed = 0
        self.metrics = metrics if metrics is not None else default_registry()
        #: Span tree of every run (``trace.filter.*`` histograms).
        self.tracer = Tracer(registry=self.metrics)
        self._m_runs = self.metrics.counter("filter.runs")
        self._m_atoms = self.metrics.counter("filter.atoms_scanned")
        self._m_triggered = self.metrics.counter("filter.rules_triggered")
        self._m_iterations = self.metrics.counter("filter.iterations")
        self._m_result_rows = self.metrics.counter("filter.result_rows")

    # ------------------------------------------------------------------
    # One filter execution
    # ------------------------------------------------------------------
    def run(
        self,
        input_atoms: Iterable[AtomRow] | None = None,
        input_uris: Iterable[str] | None = None,
        materialize: bool = True,
        collect: str = "all",
        prematched: PendingHits | None = None,
    ) -> FilterRunResult:
        """Execute the filter once.

        Input atoms come either from ``input_atoms`` directly or, with
        ``input_uris``, from the current ``filter_data`` state of the
        given resources (the shape pass 2 of the update algorithm needs).

        ``collect`` controls which ``(rule, resource)`` pairs are read
        back into Python: ``"all"`` (default), ``"end"`` (only rules that
        are some subscription's end rule) or ``"none"``.

        With ``parallelism > 1``, ``prematched`` may carry an
        already-dispatched shard match (:meth:`ShardPool.dispatch`)
        whose results are merged instead of evaluating triggering here —
        :meth:`process_insertions` uses this to overlap shard matching
        with the ``filter_data`` ingest.
        """
        result = FilterRunResult()
        with self._db.transaction(), self.tracer.span("filter.run") as run_span:
            self._filter_input.clear()
            self._db.execute("DELETE FROM result_objects")
            if self.parallelism > 1 or self.triggering == "counting":
                atoms_scanned = self._run_triggering_gathered(
                    result, input_atoms, input_uris, prematched
                )
            else:
                if input_atoms is not None:
                    self._filter_input.load(input_atoms)
                if input_uris is not None:
                    self._db.executemany(
                        "INSERT INTO filter_input "
                        "SELECT uri_reference, class, property, value "
                        "FROM filter_data WHERE uri_reference = ?",
                        ((uri,) for uri in set(input_uris)),
                    )
                atoms_scanned = self._db.count("filter_input")
                started = time.perf_counter()
                with self.tracer.span("filter.triggering"):
                    result.triggering_hits = match_triggering_rules(
                        self._db,
                        contains_index=self.contains_index,
                        metrics=self.metrics,
                    )
                result.triggering_seconds = time.perf_counter() - started
            self._m_atoms.inc(atoms_scanned)
            run_span.set("atoms", atoms_scanned)
            self._m_triggered.inc(result.triggering_hits)
            started = time.perf_counter()
            iteration = 0
            inserted_total = result.triggering_hits
            while iteration < _MAX_ITERATIONS:
                with self.tracer.span(
                    "filter.iteration", iteration=iteration
                ) as iteration_span:
                    inserted = evaluate_groups_at(
                        self._db,
                        iteration,
                        iteration + 1,
                        self.use_rule_groups,
                        self.join_evaluation,
                        metrics=self.metrics,
                    )
                    iteration_span.set("inserted", inserted)
                if inserted == 0:
                    break
                inserted_total += inserted
                iteration += 1
            result.iterations = iteration
            result.join_seconds = time.perf_counter() - started
            self._m_iterations.inc(iteration)
            self._m_result_rows.inc(inserted_total)
            run_span.set("iterations", iteration)
            run_span.set("triggering_hits", result.triggering_hits)
            with self.tracer.span("filter.closure"):
                if materialize:
                    # The paper materializes "the results of atomic rules
                    # join rules depend on"; end rules are materialized too,
                    # since new subscriptions and the update algorithm read
                    # a rule's current matches from there.
                    self._db.execute(
                        "INSERT OR IGNORE INTO materialized "
                        "(rule_id, uri_reference) "
                        "SELECT DISTINCT ro.rule_id, ro.uri_reference "
                        "FROM result_objects ro "
                        "WHERE EXISTS (SELECT 1 FROM rule_dependencies rd "
                        "              WHERE rd.source_rule = ro.rule_id) "
                        "   OR ro.rule_id IN "
                        "(SELECT end_rule FROM subscriptions)"
                    )
                result.pairs = self._collect(collect)
        self.runs_executed += 1
        self._m_runs.inc()
        return result

    def _run_triggering_gathered(
        self,
        result: FilterRunResult,
        input_atoms: Iterable[AtomRow] | None,
        input_uris: Iterable[str] | None,
        prematched: PendingHits | None,
    ) -> int:
        """Gathered triggering (SQL shards or counting index): dispatch,
        gather, merge into the main run.

        Both evaluators compute the same ``(resource, rule)`` hit set as
        the serial joins (see :mod:`repro.filter.shards` and
        :mod:`repro.filter.counting` for the arguments); merging inserts
        the hits at iteration 0 so the join closure proceeds exactly as
        in the serial path.  Returns the atom count scanned.
        """
        started = time.perf_counter()
        pending = prematched
        if pending is None:
            rows: list[AtomRow] = []
            if input_atoms is not None:
                rows.extend(input_atoms)
            if input_uris is not None:
                rows.extend(self._input_rows_for(input_uris))
            pending = self._dispatch_matching(rows)
        span_name = (
            "filter.triggering.counting"
            if self.triggering == "counting"
            else "filter.triggering.parallel"
        )
        with self.tracer.span(span_name, shards=self.parallelism):
            hits = pending.gather()
        with self.tracer.span("filter.shard.merge"):
            cursor = self._db.executemany(
                "INSERT OR IGNORE INTO result_objects "
                "(uri_reference, rule_id, iteration) VALUES (?, ?, 0)",
                hits,
            )
        # Partitioned hits are globally unique, so the insert rowcount
        # equals the serial sum of per-join rowcounts.
        result.triggering_hits = max(cursor.rowcount, 0)
        result.triggering_seconds = time.perf_counter() - started
        return pending.row_count

    def _input_rows_for(self, uris: Iterable[str]) -> list[AtomRow]:
        """Current ``filter_data`` rows of the given resources (pass 2).

        Iteration is over the sorted, deduplicated URI set so shard
        dispatch sees a deterministic row order.
        """
        rows: list[AtomRow] = []
        for uri in sorted({str(uri) for uri in uris}):
            fetched = self._db.query_all(
                "SELECT uri_reference, class, property, value "
                "FROM filter_data WHERE uri_reference = ?",
                (uri,),
            )
            rows.extend(
                (row[0], row[1], row[2], row[3]) for row in fetched
            )
        return rows

    def _shard_pool(self) -> ShardPool:
        if self._shards is None:
            self._shards = ShardPool(
                self.parallelism,
                metrics=self.metrics,
                contains_index=self.contains_index,
            )
        return self._shards

    def _counting_matcher(self) -> CountingMatcher:
        if self._counting is None:
            self._counting = CountingMatcher(
                parallelism=self.parallelism, metrics=self.metrics
            )
        return self._counting

    def _dispatch_matching(self, rows: Iterable[AtomRow]) -> PendingHits:
        """Refresh the active triggering evaluator and fan a batch out."""
        if self.triggering == "counting":
            matcher = self._counting_matcher()
            matcher.refresh(
                self._db,
                self._registry.mutation_version,
                self._registry.mutation_log,
            )
            return matcher.dispatch(rows)
        pool = self._shard_pool()
        pool.refresh_rules(self._db, self._registry.mutation_version)
        return pool.dispatch(rows)

    def warm_shards(self) -> None:
        """Eagerly build the triggering evaluator's derived state.

        With ``parallelism > 1`` this constructs the shard pool and
        loads the rule replicas; with ``triggering="counting"`` it
        (re)builds the in-memory predicate index.  A no-op for the
        serial SQL path.  The benchmark harness calls this before its
        timing loop so one-time construction and replication are
        excluded from the measured region (they amortize over a server's
        lifetime, not per batch); the provider calls it after crash
        recovery so the index is rebuilt from the repaired store before
        the first publish.
        """
        if self.triggering == "counting":
            self._counting_matcher().refresh(
                self._db,
                self._registry.mutation_version,
                self._registry.mutation_log,
            )
        elif self.parallelism > 1:
            pool = self._shard_pool()
            pool.refresh_rules(self._db, self._registry.mutation_version)

    def close(self) -> None:
        """Release the shard pool / counting fan-out threads (idempotent).

        The main database belongs to the caller and stays open.
        """
        if self._shards is not None:
            self._shards.close()
            self._shards = None
        if self._counting is not None:
            self._counting.close()
            self._counting = None

    def _collect(self, mode: str) -> set[tuple[int, URIRef]]:
        if mode == "none":
            return set()
        if mode == "end":
            rows = self._db.query_all(
                "SELECT DISTINCT ro.rule_id, ro.uri_reference "
                "FROM result_objects ro WHERE ro.rule_id IN "
                "(SELECT DISTINCT end_rule FROM subscriptions)"
            )
        else:
            rows = self._db.query_all(
                "SELECT DISTINCT rule_id, uri_reference FROM result_objects"
            )
        return {
            (int(row["rule_id"]), URIRef(row["uri_reference"]))
            for row in rows
        }

    # ------------------------------------------------------------------
    # Insert path (initial registrations)
    # ------------------------------------------------------------------
    def process_insertions(
        self, resources: Sequence[Resource], collect: str = "end"
    ) -> PublishOutcome:
        """Register brand-new resources and run the filter once.

        ``collect="none"`` skips reading result pairs back into Python —
        the benchmark harness uses it and counts hits with an aggregate
        query instead, because the paper measures the filter up to the
        production of ``ResultObjects``.
        """
        atoms = resources_atoms(resources)
        outcome = PublishOutcome()
        with self._db.transaction():
            if self.parallelism > 1 or self.triggering == "counting":
                # Overlap: dispatch the match first, then ingest into
                # filter_data while the shards (or counting workers)
                # evaluate.  The two touch disjoint state; filter_data
                # only has to be current before join iteration 1 reads it.
                pending = self._dispatch_matching(atoms)
                self._filter_data.insert_atoms(atoms)
                run = self.run(
                    prematched=pending, materialize=True, collect=collect
                )
            else:
                self._filter_data.insert_atoms(atoms)
                run = self.run(
                    input_atoms=atoms, materialize=True, collect=collect
                )
        outcome.passes.append(run)
        if collect != "none":
            end_ids = self._registry.end_rule_ids()
            outcome.matched = run.matches_of(end_ids)
        return outcome

    def result_count(self) -> int:
        """Distinct ``(rule, resource)`` hits of the last run (SQL-side)."""
        return int(
            self._db.scalar(
                "SELECT COUNT(*) FROM (SELECT DISTINCT rule_id, "
                "uri_reference FROM result_objects)"
            )
        )

    # ------------------------------------------------------------------
    # Update/delete path (paper, Section 3.5)
    # ------------------------------------------------------------------
    def process_diff(self, diff: DocumentDiff) -> PublishOutcome:
        """Apply a document diff and compute all notifications.

        Implements the paper's three filter executions.  Pure insertions
        (initial registrations) short-circuit to the single-pass path.
        """
        old_changed = diff.old_versions_of_changed()
        if not old_changed:
            return self.process_insertions(diff.inserted)

        end_ids = self._registry.end_rule_ids()
        outcome = PublishOutcome()
        outcome.deleted = {resource.uri for resource in diff.deleted}
        changed_uris = [str(r.uri) for r in old_changed]

        with self._db.transaction():
            # Pass 1 — old versions of updated and deleted resources.
            # The database still holds the old state, so derivations are
            # consistent with what previous runs materialized.
            pass1 = self.run(
                input_atoms=resources_atoms(old_changed),
                materialize=False,
                collect="all",
            )
            candidates = pass1.matches_of(end_ids)

            # Every pass-1 derivation depended on the old state of the
            # changed resources; drop it from the materialized results.
            # Passes 2 and 3 re-derive whatever still holds.
            self._materialized.delete_pairs(
                (rule_id, str(uri)) for rule_id, uri in pass1.pairs
            )

            # Write the modified metadata into the database.
            self._filter_data.delete_for(changed_uris)
            new_resources = diff.new_versions_of_changed()
            self._filter_data.insert_atoms(resources_atoms(new_resources))

            # Pass 2 — the candidate resources, evaluated against the new
            # database state.  Input covers *all* resources pass 1 derived
            # (not only end-rule hits) so intermediate materializations
            # are rebuilt too.
            pass2 = self.run(
                input_uris=[str(uri) for uri in pass1.all_uris()],
                materialize=True,
                collect="end",
            )

            # Pass 3 — the modified metadata itself (the one execution
            # that would suffice without updates and deletions).
            pass3 = self.run(
                input_atoms=resources_atoms(new_resources),
                materialize=True,
                collect="end",
            )

        outcome.passes = [pass1, pass2, pass3]
        final: dict[int, set[URIRef]] = {}
        for run in (pass2, pass3):
            for rule_id, uris in run.matches_of(end_ids).items():
                final.setdefault(rule_id, set()).update(uris)
        outcome.matched = final
        for rule_id, uris in candidates.items():
            stale = uris - final.get(rule_id, set())
            if stale:
                outcome.unmatched[rule_id] = stale
        return outcome

    def delete_resources(self, resources: Sequence[Resource]) -> PublishOutcome:
        """Remove resources entirely (whole-document deletion)."""
        diff = DocumentDiff(
            document_uri=resources[0].uri.document_uri if resources else "",
        )
        diff.deleted.extend(resources)
        return self.process_diff(diff)

    # ------------------------------------------------------------------
    # Rule initialization (new subscriptions over existing data)
    # ------------------------------------------------------------------
    def initialize_rules(
        self, created: Sequence[tuple[int, AtomNode]]
    ) -> int:
        """Fully evaluate newly created atomic rules over existing data.

        ``created`` must be in children-first order (as produced by
        :meth:`~repro.rules.registry.RuleRegistry.ensure_atoms`) so a
        join rule's inputs are always materialized before the join runs.
        Returns the total number of materialized rows produced.
        """
        produced = 0
        with self._db.transaction():
            for rule_id, atom in created:
                if isinstance(atom, TriggeringAtom):
                    produced += initialize_triggering_rule(self._db, rule_id)
                    continue
                row = self._db.query_one(
                    "SELECT left_rule, right_rule, group_id FROM atomic_rules "
                    "WHERE rule_id = ?",
                    (rule_id,),
                )
                assert row is not None
                group = load_group(self._db, int(row["group_id"]))
                produced += initialize_join_rule(
                    self._db,
                    rule_id,
                    int(row["left_rule"]),
                    int(row["right_rule"]),
                    group,
                )
        return produced

    def current_matches(self, end_rule_id: int) -> list[URIRef]:
        """The resources currently matching an end rule (materialized)."""
        return self._materialized.uris_for(end_rule_id)
