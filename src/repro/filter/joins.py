"""Incremental evaluation of join rules and rule groups (paper, §3.4).

*"Now, all join rules depending on affected triggering rules are
evaluated.  With join rules complete incremental evaluation is not
possible, so the results of atomic rules join rules depend on are
materialized.  The evaluation consists of several iterations.  In each
iteration all atomic rules depending on the atomic rules currently
stored in ResultObjects are determined using the table RuleDependencies.
Then, the rule groups of these atomic rules are evaluated using the
resources currently stored in ResultObjects and — if necessary —
materialized data as input."*

Implementation notes:

- Evaluation is **delta-driven**: each statement starts at the previous
  iteration's ``result_objects`` rows, probes ``rule_dependencies`` for
  dependent member rules (using the denormalized ``group_id`` the paper
  stores there "for efficiency reasons"), follows the group's shared
  where part through indexed ``filter_data`` lookups, and finally probes
  the other input side.  Work is therefore proportional to the delta
  size times the average fan-out — independent of how many member rules
  a group has.  This is the paper's "combine their input data, evaluate
  the shared where part, split up the result" (Figure 6): the split is
  the ``rd.target_rule`` carried through each produced row.
- The join order is forced with ``CROSS JOIN`` (a SQLite planner
  directive); every probe is a full-key index lookup.
- Both delta sides are tried (a new resource may arrive on either input
  of a join); the primary key of ``result_objects`` deduplicates.
- A full (non-incremental) evaluation with both sides read from
  ``materialized`` initializes newly registered join rules against
  pre-existing metadata.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.storage.engine import Database

__all__ = ["GroupSpec", "load_group", "evaluate_groups_at", "initialize_join_rule"]


@dataclass(frozen=True, slots=True)
class GroupSpec:
    """One row of ``rule_groups`` (the shared join shape)."""

    group_id: int
    left_class: str
    right_class: str
    left_property: str | None
    right_property: str | None
    operator: str
    register_side: str
    numeric: bool
    self_join: bool


def load_group(db: Database, group_id: int) -> GroupSpec:
    row = db.query_one(
        "SELECT * FROM rule_groups WHERE group_id = ?", (group_id,)
    )
    if row is None:
        raise ValueError(f"no rule group {group_id}")
    return _group_from_row(row)


def _group_from_row(row: sqlite3.Row) -> GroupSpec:
    return GroupSpec(
        group_id=int(row["group_id"]),
        left_class=row["left_class"],
        right_class=row["right_class"],
        left_property=row["left_property"],
        right_property=row["right_property"],
        operator=row["operator"],
        register_side=row["register_side"],
        numeric=bool(row["numeric_compare"]),
        self_join=bool(row["self_join"]),
    )


def _value_comparison(operator: str, numeric: bool, left: str, right: str) -> str:
    """SQL comparing two value expressions under the group's operator."""
    if numeric:
        left = f"CAST({left} AS REAL)"
        right = f"CAST({right} AS REAL)"
    return f"{left} {operator} {right}"


def _delta_chain(
    group: GroupSpec, delta_side: str
) -> tuple[list[str], list[str], str]:
    """``(tables, conditions, o_link)`` for the group's where part.

    ``tables`` are extra ``filter_data`` scans resolving property
    accesses, ``conditions`` their WHERE clauses, ``o_link`` the
    condition tying the other input row ``o`` into the chain.  The group
    predicate is stored left-to-right; value expressions are assigned to
    the stored sides explicitly, so the delta may arrive on either input
    without operator mirroring.
    """
    delta_prop = (
        group.left_property if delta_side == "left" else group.right_property
    )
    other_prop = (
        group.right_property if delta_side == "left" else group.left_property
    )
    plain_equality = group.operator == "=" and not group.numeric

    def oriented(delta_expr: str, other_expr: str) -> tuple[str, str]:
        """(left_value, right_value) of the stored predicate."""
        if delta_side == "left":
            return delta_expr, other_expr
        return other_expr, delta_expr

    if delta_prop is None and other_prop is None:
        if plain_equality:
            return [], [], "o.uri_reference = d.uri_reference"
        left_value, right_value = oriented("d.uri_reference", "o.uri_reference")
        return [], [], _value_comparison(
            group.operator, group.numeric, left_value, right_value
        )

    if delta_prop is not None and other_prop is None:
        tables = ["filter_data fdd"]
        conditions = [
            "fdd.uri_reference = d.uri_reference",
            "fdd.property = :delta_prop",
        ]
        if plain_equality:
            return tables, conditions, "o.uri_reference = fdd.value"
        left_value, right_value = oriented("fdd.value", "o.uri_reference")
        return tables, conditions, _value_comparison(
            group.operator, group.numeric, left_value, right_value
        )

    if delta_prop is None and other_prop is not None:
        tables = ["filter_data fdo"]
        conditions = ["fdo.property = :other_prop"]
        if plain_equality:
            conditions.append("fdo.value = d.uri_reference")
        else:
            left_value, right_value = oriented("d.uri_reference", "fdo.value")
            conditions.append(
                _value_comparison(
                    group.operator, group.numeric, left_value, right_value
                )
            )
        return tables, conditions, "o.uri_reference = fdo.uri_reference"

    # Both sides access properties.
    tables = ["filter_data fdd", "filter_data fdo"]
    conditions = [
        "fdd.uri_reference = d.uri_reference",
        "fdd.property = :delta_prop",
        "fdo.property = :other_prop",
    ]
    if plain_equality:
        conditions.append("fdo.value = fdd.value")
    else:
        left_value, right_value = oriented("fdd.value", "fdo.value")
        conditions.append(
            _value_comparison(group.operator, group.numeric, left_value, right_value)
        )
    return tables, conditions, "o.uri_reference = fdo.uri_reference"


def _group_params(group: GroupSpec, delta_side: str = "left") -> dict[str, object]:
    return {
        "group_id": group.group_id,
        "delta_prop": (
            group.left_property
            if delta_side == "left"
            else group.right_property
        ),
        "other_prop": (
            group.right_property
            if delta_side == "left"
            else group.left_property
        ),
    }


def _evaluate_delta_side(
    db: Database,
    group: GroupSpec,
    delta_side: str,
    other_source: str,
    prev_iteration: int,
    iteration: int,
    member_condition: str,
    member_order: str,
) -> int:
    """One incremental statement: delta on ``delta_side``, the other
    input read from ``other_source`` (``materialized`` or this run's
    ``result_objects``).  Returns the number of rows inserted.

    ``member_order`` selects how member join rules are associated:

    - ``"scan"`` (the paper's combined evaluation): the member list of
      the group is scanned once per statement, each member probing the
      delta — "combining their input data, evaluating the shared where
      part, and splitting up the result afterwards" (Figure 6).  Cost
      has an O(group size) component per batch, which is what makes the
      paper's PATH/JOIN registration costs depend on the rule base size
      (Figures 12 and 14) while amortizing over the batch.
    - ``"probe"`` (a beyond-paper optimization, see the ablation bench):
      statements start at the delta, follow the shared where part to the
      candidate other-side rows, and only then look up the member join
      rule by its ``(left input, right input)`` pair — so the member
      list is never scanned and a shared triggering atom feeding
      thousands of members does not fan out.
    """
    other_side = "right" if delta_side == "left" else "left"
    chain_tables, chain_conditions, o_link = _delta_chain(group, delta_side)
    if (group.register_side == "left") == (delta_side == "left"):
        out_uri = "d.uri_reference"
    else:
        out_uri = "o.uri_reference"
    if member_order == "scan":
        tables = [
            "atomic_rules ar",
            "result_objects d",
            *chain_tables,
            f"{other_source} o",
        ]
        where = [
            member_condition,
            f"d.rule_id = ar.{delta_side}_rule",
            "d.iteration = :prev",
            *chain_conditions,
            f"o.rule_id = ar.{other_side}_rule",
            o_link,
        ]
    else:
        tables = [
            "result_objects d",
            *chain_tables,
            f"{other_source} o",
            "atomic_rules ar",
        ]
        where = [
            "d.iteration = :prev",
            *chain_conditions,
            o_link,
            f"ar.{delta_side}_rule = d.rule_id",
            f"ar.{other_side}_rule = o.rule_id",
            member_condition,
        ]
    sql = (
        f"INSERT OR IGNORE INTO result_objects "
        f"(uri_reference, rule_id, iteration) "
        f"SELECT DISTINCT {out_uri}, ar.rule_id, :iteration "
        f"FROM " + " CROSS JOIN ".join(tables) + " WHERE " + " AND ".join(where)
    )
    params = _group_params(group, delta_side)
    params["iteration"] = iteration
    params["prev"] = prev_iteration
    return db.execute(sql, params).rowcount


def _evaluate_self_join(
    db: Database,
    group: GroupSpec,
    prev_iteration: int,
    iteration: int,
    member_condition: str,
) -> int:
    """Self joins constrain both property accesses to one resource."""
    comparison = _value_comparison(
        group.operator, group.numeric, "fdl.value", "fdr.value"
    )
    sql = (
        f"INSERT OR IGNORE INTO result_objects "
        f"(uri_reference, rule_id, iteration) "
        f"SELECT DISTINCT d.uri_reference, ar.rule_id, :iteration "
        f"FROM result_objects d "
        f"CROSS JOIN atomic_rules ar "
        f"CROSS JOIN filter_data fdl "
        f"CROSS JOIN filter_data fdr "
        f"WHERE d.iteration = :prev "
        f"AND ar.left_rule = d.rule_id "
        f"AND {member_condition} "
        f"AND fdl.uri_reference = d.uri_reference "
        f"AND fdl.property = :delta_prop "
        f"AND fdr.uri_reference = d.uri_reference "
        f"AND fdr.property = :other_prop "
        f"AND {comparison}"
    )
    params = _group_params(group, "left")
    params["iteration"] = iteration
    params["prev"] = prev_iteration
    return db.execute(sql, params).rowcount


def _evaluate_spec(
    db: Database,
    group: GroupSpec,
    prev_iteration: int,
    iteration: int,
    member_condition: str,
    member_order: str,
) -> int:
    if group.self_join:
        return _evaluate_self_join(
            db, group, prev_iteration, iteration, member_condition
        )
    inserted = 0
    for delta_side in ("left", "right"):
        for other_source in ("materialized", "result_objects"):
            inserted += _evaluate_delta_side(
                db,
                group,
                delta_side,
                other_source,
                prev_iteration,
                iteration,
                member_condition,
                member_order,
            )
    return inserted


def evaluate_groups_at(
    db: Database,
    prev_iteration: int,
    iteration: int,
    use_rule_groups: bool = True,
    member_order: str = "scan",
    metrics: MetricsRegistry | None = None,
) -> int:
    """Evaluate every join rule depending on the previous iteration.

    Dependent rules are found through ``rule_dependencies`` (with the
    denormalized ``group_id`` the paper stores there "for efficiency
    reasons").  With ``use_rule_groups`` (the paper's design) all member
    rules of a group are handled by one set of statements; without it
    (ablation) each dependent join rule runs its own statements,
    restricted to its ``rule_id``.  ``member_order`` selects the paper's
    member-scan evaluation (``"scan"``) or the delta-probe optimization
    (``"probe"``); see :func:`_evaluate_delta_side`.

    Returns the number of new ``result_objects`` rows.
    """
    if use_rule_groups:
        rows = db.query_all(
            "SELECT DISTINCT rd.group_id FROM result_objects ro "
            "JOIN rule_dependencies rd ON rd.source_rule = ro.rule_id "
            "WHERE ro.iteration = ?",
            (prev_iteration,),
        )
        inserted = 0
        for row in rows:
            group = load_group(db, int(row["group_id"]))
            inserted += _evaluate_spec(
                db, group, prev_iteration, iteration,
                "ar.group_id = :group_id", member_order,
            )
    else:
        rows = db.query_all(
            "SELECT DISTINCT rd.target_rule, rd.group_id "
            "FROM result_objects ro "
            "JOIN rule_dependencies rd ON rd.source_rule = ro.rule_id "
            "WHERE ro.iteration = ?",
            (prev_iteration,),
        )
        inserted = 0
        for row in rows:
            group = load_group(db, int(row["group_id"]))
            inserted += _evaluate_spec(
                db, group, prev_iteration, iteration,
                f"ar.rule_id = {int(row['target_rule'])}", member_order,
            )
    if metrics is not None and rows:
        metrics.counter(f"filter.groups_evaluated.{member_order}").inc(
            len(rows)
        )
        metrics.counter("filter.join_rows_inserted").inc(inserted)
    return inserted


# ----------------------------------------------------------------------
# Full evaluation (new-rule initialization)
# ----------------------------------------------------------------------
def initialize_join_rule(
    db: Database,
    rule_id: int,
    left_rule: int,
    right_rule: int,
    group: GroupSpec,
) -> int:
    """Full (non-incremental) evaluation of a newly registered join rule.

    Both inputs are read from ``materialized`` — children are always
    initialized first (the registry yields atoms children-first) — and
    the result goes straight into the rule's own materialized set.  This
    step is what makes a *new* subscription see metadata registered
    before it existed.
    """
    params: dict[str, object] = {
        "rule_id": rule_id,
        "left_rule": left_rule,
        "right_rule": right_rule,
        "left_prop": group.left_property,
        "right_prop": group.right_property,
    }
    if group.self_join:
        comparison = _value_comparison(
            group.operator, group.numeric, "fdl.value", "fdr.value"
        )
        sql = (
            f"INSERT OR IGNORE INTO materialized (rule_id, uri_reference) "
            f"SELECT DISTINCT :rule_id, l.uri_reference "
            f"FROM materialized l "
            f"CROSS JOIN filter_data fdl CROSS JOIN filter_data fdr "
            f"WHERE l.rule_id = :left_rule "
            f"AND fdl.uri_reference = l.uri_reference "
            f"AND fdl.property = :left_prop "
            f"AND fdr.uri_reference = l.uri_reference "
            f"AND fdr.property = :right_prop "
            f"AND {comparison}"
        )
        return db.execute(sql, params).rowcount

    out_uri = (
        "l.uri_reference" if group.register_side == "left" else "r.uri_reference"
    )
    tables = ["materialized l"]
    where = ["l.rule_id = :left_rule"]
    if group.left_property is None:
        left_value = "l.uri_reference"
    else:
        tables.append("filter_data fdl")
        where.append("fdl.uri_reference = l.uri_reference")
        where.append("fdl.property = :left_prop")
        left_value = "fdl.value"
    if group.right_property is None:
        right_value = "r.uri_reference"
    else:
        tables.append("filter_data fdr")
        where.append("fdr.property = :right_prop")
        right_value = "fdr.value"
    tables.append("materialized r")
    where.append("r.rule_id = :right_rule")
    if group.right_property is not None:
        where.append("r.uri_reference = fdr.uri_reference")
    where.append(
        _value_comparison(group.operator, group.numeric, left_value, right_value)
    )
    sql = (
        f"INSERT OR IGNORE INTO materialized (rule_id, uri_reference) "
        f"SELECT DISTINCT :rule_id, {out_uri} "
        f"FROM " + " CROSS JOIN ".join(tables) + " WHERE " + " AND ".join(where)
    )
    return db.execute(sql, params).rowcount
