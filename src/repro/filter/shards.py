"""Sharded, parallel evaluation of the triggering stage.

The paper's filter pushes all matching into the RDBMS; this module
splits the *triggering* joins of one filter run across ``N`` worker
shards so document batches can be matched in parallel (the direction of
Burcea et al. and Zervakis et al.: partition subscription evaluation
across workers).  Design:

- **Partitioning is by resource, not by rule.**  Every triggering join
  condition (:data:`repro.filter.matcher.TRIGGERING_JOINS`) relates one
  input atom to one rule row and requires ``fr.class = fi.class`` — a
  hit ``(resource, rule)`` is derived from a *single* atom row.  The
  union of per-partition hit sets over any partition of the input atoms
  therefore equals the serial hit set exactly.  Routing whole resources
  (all atoms share their resource's ``uri_reference``) keeps every hit
  on exactly one shard, so the merged set is duplicate-free by
  construction.  The route key hashes the URI reference with a
  *deterministic* hash (crc32), keeping shard assignment reproducible
  across processes and runs.
- **Each shard owns one thread and one connection.**  sqlite3
  connections are thread-affine; a :class:`TriggerShard` runs a
  dedicated single-thread executor and creates its private in-memory
  :class:`~repro.storage.engine.Database` *inside* that thread, so the
  default ``check_same_thread`` protection stays enabled.  All shard
  work is submitted to that executor.
- **Rule replicas are refreshed by version.**  Shards hold full copies
  of the eight triggering index tables (small relative to the data:
  one row per triggering rule and extension class) and of the trigram
  index tables of :mod:`repro.text` (needed when
  ``contains_index="trigram"``).  The
  :class:`~repro.rules.registry.RuleRegistry` bumps a mutation counter
  whenever index rows change; :meth:`ShardPool.refresh_rules` reloads
  the replicas only when the counter moved, so steady-state publishes
  pay nothing for replication.
- **Merging is serial.**  The per-shard hit lists are inserted into the
  main database's ``result_objects`` at iteration 0 by the engine; the
  join-rule/rule-group closure then runs unchanged on the shared
  dependency graph.  Parallel output is byte-identical to serial —
  enforced by ``tests/filter/test_parallel_differential.py``.

Metrics (all in the engine's registry): ``filter.shard.dispatches``,
``filter.shard.rows`` (atoms routed), ``filter.shard.hits`` (merged
hits), ``filter.shard.rule_reloads`` and the per-shard latency
histogram ``filter.shard.batch_ms``.  See docs/CONCURRENCY.md.
"""

from __future__ import annotations

import time
import zlib
from collections.abc import Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor

from repro.filter.matcher import select_triggering_hits
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.engine import Database
from repro.storage.schema import COMPARISON_TABLES, TEXT_TABLES, TRIGGER_TABLES
from repro.storage.tables import AtomRow
from repro.text.ngrams import TRIGRAM_LENGTH

__all__ = ["MAX_SHARDS", "ShardPlan", "TriggerShard", "ShardPool", "PendingMatch"]

#: Upper bound on the ``parallelism=`` knob — far above any sensible
#: fan-out, it only turns a typo into an error instead of 10k threads.
MAX_SHARDS = 64

#: Shard-local DDL: the run input table plus the triggering index
#: tables, same names and shapes as the main schema so the triggering
#: join SQL runs verbatim against a shard connection.
_SHARD_INPUT_DDL = """
CREATE TABLE IF NOT EXISTS filter_input (
    uri_reference TEXT NOT NULL,
    class         TEXT NOT NULL,
    property      TEXT NOT NULL,
    value         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_fi_class_prop
    ON filter_input(class, property);

CREATE TABLE IF NOT EXISTS filter_rules_class (
    rule_id  INTEGER NOT NULL,
    class    TEXT NOT NULL,
    semantic INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (rule_id, class)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_frc_class ON filter_rules_class(class);
"""

_SHARD_OP_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS {table} (
    rule_id  INTEGER NOT NULL,
    class    TEXT NOT NULL,
    property TEXT NOT NULL,
    value    TEXT NOT NULL,
    numeric  INTEGER NOT NULL DEFAULT 0,
    semantic INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (rule_id, class, property, value)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_{table}
    ON {table}(class, property, value);
"""

#: Shard replica of the trigram index (:mod:`repro.text`), mirroring
#: the main schema (minus foreign keys, like the other shard replicas)
#: so the indexed matching SQL runs verbatim against a shard connection.
_SHARD_TEXT_DDL = """
CREATE TABLE IF NOT EXISTS filter_rules_con_tri (
    rule_id       INTEGER NOT NULL,
    class         TEXT NOT NULL,
    property      TEXT NOT NULL,
    value         TEXT NOT NULL,
    trigram_count INTEGER NOT NULL,
    PRIMARY KEY (rule_id, class, property)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_frct_class_prop
    ON filter_rules_con_tri(class, property);

CREATE TABLE IF NOT EXISTS text_postings (
    trigram TEXT NOT NULL,
    rule_id INTEGER NOT NULL,
    PRIMARY KEY (trigram, rule_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_tp_rule ON text_postings(rule_id);

-- Same partial index as the main schema: keeps the trigram mode's
-- short-needle fallback join from scanning every contains rule.
CREATE INDEX IF NOT EXISTS idx_frcon_short
    ON filter_rules_con(class, property, value)
    WHERE length(value) < {length};
"""


class ShardPlan:
    """Deterministic routing of atom rows to shards, by resource."""

    def __init__(self, shard_count: int):
        if shard_count < 1 or shard_count > MAX_SHARDS:
            raise ValueError(
                f"shard_count must be in 1..{MAX_SHARDS}, got {shard_count}"
            )
        self.shard_count = shard_count

    def shard_of(self, uri_reference: str) -> int:
        """The shard owning a resource (stable across processes)."""
        return zlib.crc32(uri_reference.encode("utf-8")) % self.shard_count

    def partition(self, rows: Iterable[AtomRow]) -> list[list[AtomRow]]:
        """Split atom rows into per-shard batches.

        Atom rows of one resource are contiguous in practice (decompose
        emits them together), so the route of the previous row is cached
        — partitioning cost is one crc32 per *resource*, not per atom.
        """
        parts: list[list[AtomRow]] = [[] for __ in range(self.shard_count)]
        last_uri: str | None = None
        target = parts[0]
        for row in rows:
            uri = row[0]
            if uri != last_uri:
                target = parts[self.shard_of(uri)]
                last_uri = uri
            target.append(row)
        return parts


class TriggerShard:
    """One worker: a dedicated thread owning one shard database."""

    def __init__(
        self,
        index: int,
        metrics: MetricsRegistry,
        contains_index: str = "scan",
    ):
        self.index = index
        self._metrics = metrics
        self._contains_index = contains_index
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix=f"mdv-shard-{index}"
        )
        self._db: Database | None = None
        self._closed = False
        # The connection is created (and only ever used) inside the
        # shard's own thread — sqlite3's thread check stays on.
        self._executor.submit(self._open, metrics).result()

    def _open(self, metrics: MetricsRegistry) -> None:
        db = Database(metrics=metrics)
        db.executescript(_SHARD_INPUT_DDL)
        for table in COMPARISON_TABLES.values():
            db.executescript(_SHARD_OP_TABLE_DDL.format(table=table))
        db.executescript(_SHARD_TEXT_DDL.format(length=TRIGRAM_LENGTH))
        self._db = db

    def load_rules(
        self, table_rows: dict[str, list[tuple[object, ...]]]
    ) -> Future[None]:
        """Replace the shard's rule replicas (runs on the shard thread)."""

        def work() -> None:
            db = self._db
            assert db is not None
            for table, rows in table_rows.items():
                db.execute(f"DELETE FROM {table}")
                if rows:
                    placeholders = ",".join("?" * len(rows[0]))
                    db.executemany(
                        f"INSERT INTO {table} VALUES ({placeholders})", rows
                    )
            db.commit()

        return self._executor.submit(work)

    def match(
        self, rows: Sequence[AtomRow]
    ) -> Future[tuple[list[tuple[str, int]], float]]:
        """Match an input partition; resolves to ``(hits, seconds)``."""

        def work() -> tuple[list[tuple[str, int]], float]:
            started = time.perf_counter()
            db = self._db
            assert db is not None
            db.execute("DELETE FROM filter_input")
            db.executemany(
                "INSERT INTO filter_input "
                "(uri_reference, class, property, value) VALUES (?, ?, ?, ?)",
                rows,
            )
            hits = select_triggering_hits(
                db,
                contains_index=self._contains_index,
                metrics=self._metrics,
            )
            db.commit()
            return hits, time.perf_counter() - started

        return self._executor.submit(work)

    def close(self) -> None:
        """Close the shard connection and stop its thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._db is not None:
            self._executor.submit(self._db.close).result()
            self._db = None
        self._executor.shutdown(wait=True)


class PendingMatch:
    """An in-flight sharded match; ``gather()`` merges the hit sets.

    Returned by :meth:`ShardPool.dispatch` so callers can overlap other
    work (e.g. the ``filter_data`` ingest) with the shard evaluation.
    """

    def __init__(
        self,
        pool: ShardPool,
        futures: list[Future[tuple[list[tuple[str, int]], float]]],
        row_count: int,
    ):
        self._pool = pool
        self._futures = futures
        #: Total atoms routed (the run's ``atoms_scanned``).
        self.row_count = row_count

    def gather(self) -> list[tuple[str, int]]:
        """Wait for every shard; returns the merged ``(uri, rule)`` hits.

        Shard results are concatenated in shard order, so the merged
        list is deterministic for a given input and shard count.
        """
        hits: list[tuple[str, int]] = []
        for future in self._futures:
            shard_hits, seconds = future.result()
            self._pool.batch_latency.observe(seconds * 1000.0)
            hits.extend(shard_hits)
        self._pool.hits_counter.inc(len(hits))
        return hits


class ShardPool:
    """``N`` trigger shards plus the routing plan and rule replication."""

    def __init__(
        self,
        shard_count: int,
        metrics: MetricsRegistry | None = None,
        contains_index: str = "scan",
    ):
        self.plan = ShardPlan(shard_count)
        self.contains_index = contains_index
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_dispatches = self.metrics.counter("filter.shard.dispatches")
        self._m_rows = self.metrics.counter("filter.shard.rows")
        self.hits_counter = self.metrics.counter("filter.shard.hits")
        self._m_reloads = self.metrics.counter("filter.shard.rule_reloads")
        self.batch_latency = self.metrics.histogram("filter.shard.batch_ms")
        self.shards = [
            TriggerShard(index, self.metrics, contains_index=contains_index)
            for index in range(shard_count)
        ]
        #: Registry mutation version the replicas were loaded at.
        self.rules_version: int | None = None
        self._closed = False

    @property
    def shard_count(self) -> int:
        return self.plan.shard_count

    def refresh_rules(self, db: Database, version: int) -> bool:
        """Reload every shard's rule replicas if ``version`` moved.

        The index-table rows are read from ``db`` on the *calling*
        thread (the main connection is thread-affine too) and shipped to
        the shard threads.  Returns ``True`` when a reload happened.
        """
        if version == self.rules_version:
            return False
        # The trigram replicas ride along with the triggering tables:
        # both change only on registry mutations, so one version counter
        # covers them.
        table_rows = {
            table: [tuple(row) for row in db.query_all(f"SELECT * FROM {table}")]
            for table in (*TRIGGER_TABLES, *TEXT_TABLES)
        }
        for future in [shard.load_rules(table_rows) for shard in self.shards]:
            future.result()
        self.rules_version = version
        self._m_reloads.inc()
        return True

    def dispatch(self, rows: Iterable[AtomRow]) -> PendingMatch:
        """Fan an atom batch out to the shards (non-blocking).

        Shards whose partition is empty are skipped — they contribute no
        hits and their stale input table is cleared on their next use.
        """
        parts = self.plan.partition(rows)
        total = sum(len(part) for part in parts)
        futures = [
            shard.match(part)
            for shard, part in zip(self.shards, parts)
            if part
        ]
        self._m_dispatches.inc()
        self._m_rows.inc(total)
        return PendingMatch(self, futures, total)

    def match(self, rows: Iterable[AtomRow]) -> list[tuple[str, int]]:
        """Dispatch and gather in one call (convenience)."""
        return self.dispatch(rows).gather()

    def close(self) -> None:
        """Close every shard (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> ShardPool:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
