"""Decomposition of documents into atoms (paper, Section 3.2, Figure 4).

Every registered RDF document is decomposed into its atoms — RDF
statements — and the atoms are inserted into the ``FilterData`` table.
Additionally, *"for each resource a tuple is inserted containing the URI
reference and the class name (with property set to rdf#subject and value
set to the resource's URI reference).  Thus, rules are able to register a
single resource using its URI reference."*

The same atom rows double as the input of a filter run (loaded into
``filter_input``).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.rdf.model import Document, Resource
from repro.rdf.namespaces import RDF_SUBJECT
from repro.storage.tables import AtomRow

__all__ = ["resource_atoms", "document_atoms", "resources_atoms"]


def resource_atoms(resource: Resource) -> list[AtomRow]:
    """The ``FilterData`` rows of one resource.

    The identity atom (``rdf#subject``) comes first, then one row per
    property value, exactly the shape of the paper's Figure 4.
    """
    uri = str(resource.uri)
    rows: list[AtomRow] = [(uri, resource.rdf_class, RDF_SUBJECT, uri)]
    for statement in resource.statements():
        rows.append(
            (uri, resource.rdf_class, statement.predicate, statement.sql_value())
        )
    return rows


def resources_atoms(resources: Iterable[Resource]) -> list[AtomRow]:
    """The ``FilterData`` rows of several resources, in input order."""
    rows: list[AtomRow] = []
    for resource in resources:
        rows.extend(resource_atoms(resource))
    return rows


def document_atoms(document: Document) -> list[AtomRow]:
    """The ``FilterData`` rows of a whole document."""
    return resources_atoms(document)
