"""The RDF data model used throughout the library.

The paper's MDV system stores metadata as RDF documents: each document
defines a set of *resources*, each resource is an instance of a schema
class and carries *properties* whose values are either literals or
references to other resources (paper, Section 2.1).  A resource is
globally identified by its *URI reference* — the document URI combined
with the resource's local ``rdf:ID``.

This module provides the value types (:class:`URIRef`, :class:`Literal`),
the triple type (:class:`Statement`) used by the filter's atom
decomposition, and the container types (:class:`Resource`,
:class:`Document`).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "URIRef",
    "Literal",
    "Value",
    "Statement",
    "Resource",
    "Document",
    "make_uri_reference",
]


class URIRef(str):
    """A URI reference identifying an RDF resource.

    MDV constructs URI references by combining a resource's local
    identifier (its ``rdf:ID``) with the globally unique URI of the RDF
    document that defines it, separated by ``#`` (paper, Section 2.1).
    ``URIRef`` is a :class:`str` subclass so it can be used directly as a
    dictionary key, SQL parameter, and in set operations.
    """

    __slots__ = ()

    @property
    def document_uri(self) -> str:
        """The URI of the document this reference points into.

        URI references without a fragment are treated as document-level
        references and returned unchanged.
        """
        head, separator, __ = self.rpartition("#")
        return head if separator else str(self)

    @property
    def local_name(self) -> str:
        """The local identifier (the part after ``#``), or ``''``."""
        head, separator, tail = self.rpartition("#")
        return tail if separator else ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"URIRef({str(self)!r})"


def make_uri_reference(document_uri: str, local_id: str) -> URIRef:
    """Combine a document URI and a local ``rdf:ID`` into a URI reference.

    >>> make_uri_reference("doc.rdf", "host")
    URIRef('doc.rdf#host')
    """
    return URIRef(f"{document_uri}#{local_id}")


@dataclass(frozen=True, slots=True)
class Literal:
    """A literal RDF property value.

    The underlying Python value may be a string, an integer or a float.
    Following the paper's storage design (Section 3.3.4), literals are
    stored in the database as strings and re-converted for numeric
    comparisons; :meth:`sql_value` produces the canonical string form.
    """

    value: str | int | float

    def __post_init__(self) -> None:
        if isinstance(self.value, bool) or not isinstance(
            self.value, (str, int, float)
        ):
            raise TypeError(
                f"literal values must be str, int or float, got "
                f"{type(self.value).__name__}"
            )

    @property
    def is_numeric(self) -> bool:
        """Whether this literal holds a number (int or float)."""
        return isinstance(self.value, (int, float))

    def sql_value(self) -> str:
        """The canonical string stored in the ``FilterData`` table.

        Following the paper's storage design, constants live as strings
        and equality compares them textually; only the ordering
        operators reconvert to numbers.  Integers keep their plain
        decimal form and *integral floats render like integers*
        (``64.0`` → ``"64"``) so int/float equality stays consistent.
        """
        if isinstance(self.value, float) and self.value.is_integer():
            return str(int(self.value))
        return str(self.value)

    def __str__(self) -> str:
        return self.sql_value()


#: A property value: either a reference to another resource or a literal.
Value = URIRef | Literal


@dataclass(frozen=True, slots=True)
class Statement:
    """An RDF statement (triple): ``subject — predicate → value``.

    Statements are the *atoms* the filter algorithm decomposes documents
    into (paper, Section 3.2).  ``rdf_class`` carries the schema class of
    the subject resource because the ``FilterData`` table keys triggering
    lookups by ``(class, property)``.
    """

    subject: URIRef
    rdf_class: str
    predicate: str
    value: Value

    def sql_value(self) -> str:
        """The value column as stored in ``FilterData``."""
        return str(self.value)

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.subject}> [{self.rdf_class}] {self.predicate} {self.value!r}"


class Resource:
    """An RDF resource: an instance of a schema class with properties.

    Properties are multi-valued: RDF allows a property name to appear
    several times on the same resource (the paper's ``?`` operator exists
    for exactly this case).  Single-valued access is provided through
    :meth:`get_one`.

    Two resources compare equal when their URI, class and full property
    map coincide — this is the equality used by the document differ to
    detect updated resources (paper, Section 3.5).
    """

    __slots__ = ("uri", "rdf_class", "_properties")

    def __init__(
        self,
        uri: URIRef | str,
        rdf_class: str,
        properties: Iterable[tuple[str, Value]] = (),
    ):
        self.uri = URIRef(uri)
        self.rdf_class = rdf_class
        self._properties: dict[str, list[Value]] = {}
        for name, value in properties:
            self.add(name, value)

    def add(self, name: str, value: Value | str | int | float) -> None:
        """Add a property value; plain Python scalars are wrapped as literals."""
        if not isinstance(value, (URIRef, Literal)):
            value = Literal(value)
        self._properties.setdefault(name, []).append(value)

    def set(self, name: str, value: Value | str | int | float) -> None:
        """Replace all values of property ``name`` with a single value."""
        self._properties.pop(name, None)
        self.add(name, value)

    def remove(self, name: str) -> None:
        """Remove every value of property ``name`` (no-op when absent)."""
        self._properties.pop(name, None)

    def get(self, name: str) -> list[Value]:
        """All values of property ``name`` (empty list when absent)."""
        return list(self._properties.get(name, ()))

    def get_one(self, name: str) -> Value | None:
        """The single value of ``name``; ``None`` when absent.

        Raises :class:`ValueError` when the property is multi-valued,
        because silently picking one value would hide schema violations.
        """
        values = self._properties.get(name)
        if not values:
            return None
        if len(values) > 1:
            raise ValueError(
                f"property {name!r} of <{self.uri}> has {len(values)} values"
            )
        return values[0]

    def property_names(self) -> list[str]:
        """The names of all properties present on this resource."""
        return list(self._properties)

    def references(self) -> Iterator[tuple[str, URIRef]]:
        """Yield ``(property, target)`` for every resource-valued property."""
        for name, values in self._properties.items():
            for value in values:
                if isinstance(value, URIRef):
                    yield name, value

    def statements(self) -> Iterator[Statement]:
        """Decompose this resource into RDF statements (atoms).

        The resource's own identity atom (``rdf#subject``) is *not*
        included here; :func:`repro.filter.decompose.decompose_document`
        adds it, following the paper's Section 3.2.
        """
        for name, values in self._properties.items():
            for value in values:
                yield Statement(self.uri, self.rdf_class, name, value)

    def copy(self) -> Resource:
        """A deep-enough copy (values are immutable, the map is copied)."""
        duplicate = Resource(self.uri, self.rdf_class)
        duplicate._properties = {
            name: list(values) for name, values in self._properties.items()
        }
        return duplicate

    def _signature(self) -> tuple:
        return (
            self.uri,
            self.rdf_class,
            {name: tuple(values) for name, values in self._properties.items()},
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Resource):
            return NotImplemented
        return self._signature() == other._signature()

    def __hash__(self) -> int:
        # Resources are mutable; hash by identity-stable URI only so they
        # can live in sets keyed by their unique URI reference.
        return hash(self.uri)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({str(self.uri)!r}, {self.rdf_class!r})"


@dataclass
class Document:
    """An RDF document: a URI plus the resources it defines.

    Registration, update and deletion of metadata all happen at document
    granularity in MDV (paper, Section 2.2): updating means re-registering
    a modified version of the document, deleting means removing resources
    from it or removing the whole document.
    """

    uri: str
    resources: dict[URIRef, Resource] = field(default_factory=dict)

    def add(self, resource: Resource) -> Resource:
        """Add ``resource``; its URI must belong to this document."""
        if resource.uri.document_uri != self.uri:
            raise ValueError(
                f"resource <{resource.uri}> does not belong to document "
                f"{self.uri!r}"
            )
        self.resources[resource.uri] = resource
        return resource

    def new_resource(self, local_id: str, rdf_class: str) -> Resource:
        """Create, add and return a resource with the given local id."""
        resource = Resource(make_uri_reference(self.uri, local_id), rdf_class)
        return self.add(resource)

    def get(self, uri: URIRef | str) -> Resource | None:
        """The resource with the given URI reference, or ``None``."""
        return self.resources.get(URIRef(uri))

    def remove(self, uri: URIRef | str) -> Resource | None:
        """Remove and return the resource with the given URI, if present."""
        return self.resources.pop(URIRef(uri), None)

    def statements(self) -> Iterator[Statement]:
        """All statements of all resources in this document."""
        for resource in self.resources.values():
            yield from resource.statements()

    def copy(self) -> Document:
        """A deep copy suitable for building an updated version."""
        duplicate = Document(self.uri)
        for uri, resource in self.resources.items():
            duplicate.resources[uri] = resource.copy()
        return duplicate

    def __len__(self) -> int:
        return len(self.resources)

    def __iter__(self) -> Iterator[Resource]:
        return iter(self.resources.values())

    def __contains__(self, uri: object) -> bool:
        return URIRef(str(uri)) in self.resources
