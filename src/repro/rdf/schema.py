"""RDF Schema support: class/property definitions and validation.

MDV uses RDF Schema to define the schema its RDF metadata must conform to
(paper, Section 2) and augments it with vocabulary for declaring *strong*
and *weak* references (Section 2.4):

- a **strong** reference means the referenced resource is always
  transmitted together with the referencing resource;
- a **weak** reference is never followed when transmitting.

The decision is made by the schema designer, which is why reference
strength lives here and not on individual documents.

The schema is also what makes rule normalization possible: resolving a
path expression such as ``c.serverInformation.memory`` requires knowing
that ``serverInformation`` on ``CycleProvider`` references a
``ServerInformation`` resource.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import (
    SchemaError,
    SchemaValidationError,
    UnknownClassError,
    UnknownPropertyError,
)
from repro.rdf.model import Document, Literal, Resource, URIRef

__all__ = [
    "PropertyKind",
    "RefStrength",
    "PropertyDef",
    "ClassDef",
    "Schema",
]


class PropertyKind(Enum):
    """The value type of a schema property."""

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    REFERENCE = "reference"


class RefStrength(Enum):
    """Reference strength for :attr:`PropertyKind.REFERENCE` properties.

    See paper Section 2.4; the strength decides whether the referenced
    resource travels with the referencing one when it is published.
    """

    STRONG = "strong"
    WEAK = "weak"


@dataclass(frozen=True, slots=True)
class PropertyDef:
    """Definition of a property on a schema class.

    ``target_class`` and ``strength`` are only meaningful for reference
    properties; ``multivalued`` marks set-valued properties, the ones the
    rule language's ``?`` (any) operator applies to.
    """

    name: str
    kind: PropertyKind
    target_class: str | None = None
    strength: RefStrength = RefStrength.WEAK
    multivalued: bool = False
    required: bool = False

    def __post_init__(self) -> None:
        if self.kind is PropertyKind.REFERENCE and not self.target_class:
            raise SchemaError(
                f"reference property {self.name!r} needs a target class"
            )
        if self.kind is not PropertyKind.REFERENCE and self.target_class:
            raise SchemaError(
                f"non-reference property {self.name!r} must not declare a "
                f"target class"
            )

    @property
    def is_reference(self) -> bool:
        return self.kind is PropertyKind.REFERENCE

    @property
    def is_strong(self) -> bool:
        return self.is_reference and self.strength is RefStrength.STRONG

    @property
    def is_numeric(self) -> bool:
        return self.kind in (PropertyKind.INTEGER, PropertyKind.FLOAT)


@dataclass
class ClassDef:
    """Definition of a schema class with its properties.

    ``superclass`` implements ``rdfs:subClassOf``: instances of a subclass
    are members of every superclass extension, which matters for rule
    matching (a rule over the superclass also matches subclass instances).
    """

    name: str
    properties: dict[str, PropertyDef] = field(default_factory=dict)
    superclass: str | None = None

    def add(self, prop: PropertyDef) -> None:
        if prop.name in self.properties:
            raise SchemaError(
                f"class {self.name!r} already defines property {prop.name!r}"
            )
        self.properties[prop.name] = prop


class Schema:
    """A complete MDV schema: a set of class definitions.

    The schema offers the lookups the rest of the library relies on:

    - :meth:`property_def` — resolve a property on a class, walking the
      superclass chain;
    - :meth:`resolve_path` — type a rule path expression;
    - :meth:`subclasses_of` / :meth:`extension_classes` — the classes whose
      instances belong to a class extension;
    - :meth:`validate_document` — check a document before registration;
    - :meth:`strong_reference_properties` — drive the strong-ref closure.
    """

    def __init__(self, classes: Iterable[ClassDef] = ()):
        self._classes: dict[str, ClassDef] = {}
        for class_def in classes:
            self.add_class(class_def)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_class(self, class_def: ClassDef) -> ClassDef:
        """Register a class definition (names must be unique)."""
        if class_def.name in self._classes:
            raise SchemaError(f"class {class_def.name!r} already defined")
        self._classes[class_def.name] = class_def
        return class_def

    def define_class(
        self,
        name: str,
        properties: Iterable[PropertyDef] = (),
        superclass: str | None = None,
    ) -> ClassDef:
        """Convenience wrapper: build and register a :class:`ClassDef`."""
        class_def = ClassDef(name, superclass=superclass)
        for prop in properties:
            class_def.add(prop)
        return self.add_class(class_def)

    def freeze_check(self) -> None:
        """Verify referential integrity of the whole schema.

        Checks that every superclass and every reference target is itself
        a defined class and that the superclass graph is acyclic.  Call
        this once after the schema is fully built.
        """
        for class_def in self._classes.values():
            if class_def.superclass and class_def.superclass not in self._classes:
                raise UnknownClassError(class_def.superclass)
            for prop in class_def.properties.values():
                if prop.is_reference and prop.target_class not in self._classes:
                    raise UnknownClassError(str(prop.target_class))
        for name in self._classes:
            seen = set()
            current: str | None = name
            while current is not None:
                if current in seen:
                    raise SchemaError(
                        f"superclass cycle involving class {name!r}"
                    )
                seen.add(current)
                current = self._classes[current].superclass

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def class_names(self) -> list[str]:
        return list(self._classes)

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def class_def(self, name: str) -> ClassDef:
        try:
            return self._classes[name]
        except KeyError:
            raise UnknownClassError(name) from None

    def superclass_chain(self, name: str) -> Iterator[str]:
        """Yield ``name`` and then each (transitive) superclass."""
        current: str | None = name
        while current is not None:
            yield current
            current = self.class_def(current).superclass

    def subclasses_of(self, name: str) -> list[str]:
        """All classes whose instances belong to ``name``'s extension.

        Includes ``name`` itself and every direct or transitive subclass.
        """
        self.class_def(name)  # raise early on unknown classes
        return [
            candidate
            for candidate in self._classes
            if name in self.superclass_chain(candidate)
        ]

    # Kept as an alias that reads well at rule-compilation call sites.
    extension_classes = subclasses_of

    def property_def(self, class_name: str, property_name: str) -> PropertyDef:
        """Resolve ``property_name`` on ``class_name`` (superclasses too)."""
        for ancestor in self.superclass_chain(class_name):
            prop = self._classes[ancestor].properties.get(property_name)
            if prop is not None:
                return prop
        raise UnknownPropertyError(class_name, property_name)

    def has_property(self, class_name: str, property_name: str) -> bool:
        try:
            self.property_def(class_name, property_name)
        except UnknownPropertyError:
            return False
        return True

    def resolve_path(self, class_name: str, path: Iterable[str]) -> PropertyDef:
        """Type-check a path expression starting at ``class_name``.

        Every step except the last must be a reference property; the
        definition of the final step is returned.  This is the lookup
        rule normalization uses to split ``c.serverInformation.memory``
        into single-property accesses with fresh variables.
        """
        steps = list(path)
        if not steps:
            raise SchemaError("empty property path")
        current_class = class_name
        prop: PropertyDef | None = None
        for index, step in enumerate(steps):
            prop = self.property_def(current_class, step)
            is_last = index == len(steps) - 1
            if not is_last:
                if not prop.is_reference:
                    raise SchemaError(
                        f"path step {step!r} on class {current_class!r} is "
                        f"not a reference property"
                    )
                current_class = str(prop.target_class)
        assert prop is not None
        return prop

    def path_classes(self, class_name: str, path: Iterable[str]) -> list[str]:
        """The class at each step of a path (the *target* of each step).

        For a terminal literal step the literal kind has no class; the
        list therefore has one entry per reference step.
        """
        classes: list[str] = []
        current_class = class_name
        for step in path:
            prop = self.property_def(current_class, step)
            if prop.is_reference:
                current_class = str(prop.target_class)
                classes.append(current_class)
        return classes

    def strong_reference_properties(self, class_name: str) -> list[PropertyDef]:
        """All strong reference properties visible on ``class_name``."""
        result: dict[str, PropertyDef] = {}
        for ancestor in reversed(list(self.superclass_chain(class_name))):
            for prop in self._classes[ancestor].properties.values():
                if prop.is_strong:
                    result[prop.name] = prop
        return list(result.values())

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_resource(self, resource: Resource) -> None:
        """Check a single resource against its class definition."""
        if not self.has_class(resource.rdf_class):
            raise SchemaValidationError(
                f"resource <{resource.uri}> has undefined class "
                f"{resource.rdf_class!r}"
            )
        for name in resource.property_names():
            try:
                prop = self.property_def(resource.rdf_class, name)
            except UnknownPropertyError as exc:
                raise SchemaValidationError(str(exc)) from None
            values = resource.get(name)
            if len(values) > 1 and not prop.multivalued:
                raise SchemaValidationError(
                    f"property {name!r} of <{resource.uri}> is single-valued "
                    f"but has {len(values)} values"
                )
            for value in values:
                self._validate_value(resource, prop, value)
        for ancestor in self.superclass_chain(resource.rdf_class):
            for prop in self._classes[ancestor].properties.values():
                if prop.required and not resource.get(prop.name):
                    raise SchemaValidationError(
                        f"required property {prop.name!r} missing on "
                        f"<{resource.uri}>"
                    )

    def _validate_value(
        self, resource: Resource, prop: PropertyDef, value: Literal | URIRef
    ) -> None:
        if prop.is_reference:
            if not isinstance(value, URIRef):
                raise SchemaValidationError(
                    f"property {prop.name!r} of <{resource.uri}> must be a "
                    f"resource reference"
                )
            return
        if isinstance(value, URIRef):
            raise SchemaValidationError(
                f"property {prop.name!r} of <{resource.uri}> must be a "
                f"literal, not a reference"
            )
        if prop.kind is PropertyKind.INTEGER and not isinstance(value.value, int):
            raise SchemaValidationError(
                f"property {prop.name!r} of <{resource.uri}> must be an "
                f"integer, got {value.value!r}"
            )
        if prop.kind is PropertyKind.FLOAT and not isinstance(
            value.value, (int, float)
        ):
            raise SchemaValidationError(
                f"property {prop.name!r} of <{resource.uri}> must be a "
                f"number, got {value.value!r}"
            )
        if prop.kind is PropertyKind.STRING and not isinstance(value.value, str):
            raise SchemaValidationError(
                f"property {prop.name!r} of <{resource.uri}> must be a "
                f"string, got {value.value!r}"
            )

    def validate_document(self, document: Document) -> None:
        """Check every resource of a document.

        References *within* the document must point at resources of the
        declared target class; references leaving the document cannot be
        checked locally and are accepted (RDF does not distinguish nested
        from referenced resources — paper, Section 2.1).
        """
        for resource in document:
            self.validate_resource(resource)
        for resource in document:
            for name, target in resource.references():
                prop = self.property_def(resource.rdf_class, name)
                local_target = document.get(target)
                if local_target is None:
                    continue
                expected = str(prop.target_class)
                if expected not in self.superclass_chain(local_target.rdf_class):
                    raise SchemaValidationError(
                        f"reference {name!r} of <{resource.uri}> points at "
                        f"<{target}> of class {local_target.rdf_class!r}, "
                        f"expected {expected!r}"
                    )


def objectglobe_schema() -> Schema:
    """The example schema used throughout the paper (Figures 1 and 10).

    Defines ``CycleProvider`` and ``ServerInformation`` with the
    properties exercised by the paper's examples and benchmarks.  The
    ``serverInformation`` reference is *strong* so the referenced
    ``ServerInformation`` travels with its provider (Section 2.4 uses
    exactly this pair to motivate strong references).
    """
    schema = Schema()
    schema.define_class(
        "ServerInformation",
        [
            PropertyDef("memory", PropertyKind.INTEGER),
            PropertyDef("cpu", PropertyKind.INTEGER),
        ],
    )
    schema.define_class(
        "CycleProvider",
        [
            PropertyDef("serverHost", PropertyKind.STRING),
            PropertyDef("serverPort", PropertyKind.INTEGER),
            PropertyDef(
                "serverInformation",
                PropertyKind.REFERENCE,
                target_class="ServerInformation",
                strength=RefStrength.STRONG,
            ),
            PropertyDef("synthValue", PropertyKind.INTEGER),
        ],
    )
    schema.freeze_check()
    return schema


__all__.append("objectglobe_schema")
