"""RDF Schema serialization of MDV schemas (paper, Sections 2 and 2.4).

MDV "uses RDF Schema to define the schema the RDF metadata must conform
to" and "augments RDF schema with the necessary RDF properties to allow
the definition of strong and weak references" (Section 2.4).  This
module implements that document format:

- classes appear as ``rdfs:Class`` elements with optional
  ``rdfs:subClassOf``;
- properties appear as ``rdf:Property`` elements with ``rdfs:domain``
  and ``rdfs:range`` (XSD datatypes for literals, a class reference for
  references);
- the MDV vocabulary contributes ``mdv:referenceStrength``
  (``strong``/``weak``), ``mdv:multivalued`` and ``mdv:required``.

Because MDV property definitions are scoped per class (two classes may
define a property of the same name differently) while RDF properties
are global, property elements are identified as ``Class.property`` and
carry the plain name in ``mdv:name``.

``schema_to_rdfxml`` and ``parse_schema`` round-trip exactly; a
property-based test pins this down over random schemas.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.errors import DocumentParseError, SchemaError
from repro.rdf.namespaces import MDV_NS, RDF_NS, RDFS_NS, split_qualified
from repro.rdf.schema import (
    ClassDef,
    PropertyDef,
    PropertyKind,
    RefStrength,
    Schema,
)

__all__ = ["schema_to_rdfxml", "parse_schema"]

#: XSD datatype URIs for the literal property kinds.
XSD_NS = "http://www.w3.org/2001/XMLSchema#"
_KIND_TO_XSD = {
    PropertyKind.STRING: f"{XSD_NS}string",
    PropertyKind.INTEGER: f"{XSD_NS}integer",
    PropertyKind.FLOAT: f"{XSD_NS}double",
}
_XSD_TO_KIND = {uri: kind for kind, uri in _KIND_TO_XSD.items()}


def _attr(value: str) -> str:
    return escape(value, {'"': "&quot;"})


def schema_to_rdfxml(schema: Schema) -> str:
    """Serialize a schema as an RDF Schema document with MDV vocabulary."""
    lines = [
        '<?xml version="1.0" encoding="utf-8"?>',
        f'<rdf:RDF xmlns:rdf="{RDF_NS}"',
        f'         xmlns:rdfs="{RDFS_NS}"',
        f'         xmlns:mdv="{MDV_NS}">',
    ]
    for class_name in sorted(schema.class_names()):
        class_def = schema.class_def(class_name)
        if class_def.superclass:
            lines.append(f'  <rdfs:Class rdf:ID="{_attr(class_name)}">')
            lines.append(
                f'    <rdfs:subClassOf rdf:resource="#'
                f'{_attr(class_def.superclass)}"/>'
            )
            lines.append("  </rdfs:Class>")
        else:
            lines.append(f'  <rdfs:Class rdf:ID="{_attr(class_name)}"/>')
        for prop_name in sorted(class_def.properties):
            prop = class_def.properties[prop_name]
            lines.extend(_property_element(class_name, prop))
    lines.append("</rdf:RDF>")
    return "\n".join(lines) + "\n"


def _property_element(class_name: str, prop: PropertyDef) -> list[str]:
    identity = f"{class_name}.{prop.name}"
    lines = [f'  <rdf:Property rdf:ID="{_attr(identity)}">']
    lines.append(f"    <mdv:name>{escape(prop.name)}</mdv:name>")
    lines.append(
        f'    <rdfs:domain rdf:resource="#{_attr(class_name)}"/>'
    )
    if prop.is_reference:
        lines.append(
            f'    <rdfs:range rdf:resource="#{_attr(str(prop.target_class))}"/>'
        )
        lines.append(
            f"    <mdv:referenceStrength>{prop.strength.value}"
            f"</mdv:referenceStrength>"
        )
    else:
        lines.append(
            f'    <rdfs:range rdf:resource="{_KIND_TO_XSD[prop.kind]}"/>'
        )
    if prop.multivalued:
        lines.append("    <mdv:multivalued>true</mdv:multivalued>")
    if prop.required:
        lines.append("    <mdv:required>true</mdv:required>")
    lines.append("  </rdf:Property>")
    return lines


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
def _local_ref(value: str) -> str:
    """Strip the leading ``#`` of a document-local resource reference."""
    return value[1:] if value.startswith("#") else value


def parse_schema(xml_text: str) -> Schema:
    """Parse an RDF Schema document produced by :func:`schema_to_rdfxml`.

    The parser is two-pass (classes first, then properties) so property
    order in the document does not matter; the resulting schema is
    :meth:`~repro.rdf.schema.Schema.freeze_check`-ed before returning.
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DocumentParseError(f"malformed schema XML: {exc}") from exc

    classes: dict[str, ClassDef] = {}
    property_elements = []
    for element in root:
        namespace, local = split_qualified(element.tag)
        if namespace == RDFS_NS and local == "Class":
            class_def = _parse_class(element)
            if class_def.name in classes:
                raise DocumentParseError(
                    f"class {class_def.name!r} defined twice"
                )
            classes[class_def.name] = class_def
        elif namespace == RDF_NS and local == "Property":
            property_elements.append(element)
        else:
            raise DocumentParseError(
                f"unexpected schema element {element.tag!r}"
            )

    for element in property_elements:
        owner, prop = _parse_property(element)
        if owner not in classes:
            raise DocumentParseError(
                f"property {prop.name!r} declares unknown domain {owner!r}"
            )
        try:
            classes[owner].add(prop)
        except SchemaError as exc:
            raise DocumentParseError(str(exc)) from exc

    schema = Schema(classes.values())
    try:
        schema.freeze_check()
    except SchemaError as exc:
        raise DocumentParseError(str(exc)) from exc
    return schema


def _parse_class(element: ET.Element) -> ClassDef:
    name = element.get(f"{{{RDF_NS}}}ID")
    if not name:
        raise DocumentParseError("rdfs:Class without rdf:ID")
    superclass = None
    for child in element:
        namespace, local = split_qualified(child.tag)
        if namespace == RDFS_NS and local == "subClassOf":
            resource = child.get(f"{{{RDF_NS}}}resource")
            if not resource:
                raise DocumentParseError(
                    f"subClassOf of {name!r} lacks rdf:resource"
                )
            superclass = _local_ref(resource)
    return ClassDef(name, superclass=superclass)


def _parse_property(element: ET.Element) -> tuple[str, PropertyDef]:
    identity = element.get(f"{{{RDF_NS}}}ID") or ""
    name = None
    domain = None
    range_uri = None
    strength = RefStrength.WEAK
    multivalued = False
    required = False
    for child in element:
        namespace, local = split_qualified(child.tag)
        text = (child.text or "").strip()
        if namespace == MDV_NS and local == "name":
            name = text
        elif namespace == RDFS_NS and local == "domain":
            domain = _local_ref(child.get(f"{{{RDF_NS}}}resource") or "")
        elif namespace == RDFS_NS and local == "range":
            range_uri = child.get(f"{{{RDF_NS}}}resource") or ""
        elif namespace == MDV_NS and local == "referenceStrength":
            try:
                strength = RefStrength(text)
            except ValueError:
                raise DocumentParseError(
                    f"bad referenceStrength {text!r}"
                ) from None
        elif namespace == MDV_NS and local == "multivalued":
            multivalued = text == "true"
        elif namespace == MDV_NS and local == "required":
            required = text == "true"
    if name is None:
        # Fall back to the Class.property identity convention.
        name = identity.partition(".")[2] or identity
    if not name or domain is None or range_uri is None:
        raise DocumentParseError(
            f"property {identity!r} needs mdv:name, rdfs:domain and "
            f"rdfs:range"
        )
    if range_uri in _XSD_TO_KIND:
        prop = PropertyDef(
            name,
            _XSD_TO_KIND[range_uri],
            multivalued=multivalued,
            required=required,
        )
    else:
        prop = PropertyDef(
            name,
            PropertyKind.REFERENCE,
            target_class=_local_ref(range_uri),
            strength=strength,
            multivalued=multivalued,
            required=required,
        )
    return domain, prop
