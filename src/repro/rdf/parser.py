"""Parser for the RDF/XML subset used by the paper.

The paper's Figure 1 shows the document shape MDV works with::

    <rdf:RDF xmlns:rdf="..." xmlns="http://mdv...#">
      <CycleProvider rdf:ID="host">
        <serverHost>pirates.uni-passau.de</serverHost>
        <serverPort>5874</serverPort>
        <serverInformation>
          <ServerInformation rdf:ID="info">
            <memory>92</memory>
            <cpu>600</cpu>
          </ServerInformation>
        </serverInformation>
      </CycleProvider>
    </rdf:RDF>

Supported constructs:

- top-level and nested resource elements (``<Class rdf:ID="...">``);
  nesting is purely syntactic — RDF does not distinguish nested from
  referenced resources (paper, Section 2.1), so a nested resource is
  hoisted to the document and replaced by a reference;
- ``rdf:about`` as an alternative to ``rdf:ID`` for absolute URIs;
- property elements with text content (literals) or with an
  ``rdf:resource`` attribute (references);
- repeated property elements (set-valued properties).

Literal values are typed using the schema when one is supplied;
otherwise integer-looking text becomes an integer, float-looking text a
float, everything else a string.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET

from repro.errors import DocumentParseError
from repro.rdf.model import Document, Literal, Resource, URIRef, make_uri_reference
from repro.rdf.namespaces import (
    RDF_ABOUT_ATTR,
    RDF_ID_ATTR,
    RDF_RESOURCE_ATTR,
    RDF_ROOT_TAG,
    split_qualified,
)
from repro.rdf.schema import PropertyKind, Schema

__all__ = ["parse_document", "parse_literal_text"]


def parse_literal_text(text: str, kind: PropertyKind | None = None) -> Literal:
    """Convert property element text into a typed :class:`Literal`.

    When the schema ``kind`` is known it wins; untyped values fall back
    to "looks like a number" heuristics.

    >>> parse_literal_text("92").value
    92
    >>> parse_literal_text("92", PropertyKind.STRING).value
    '92'
    """
    text = text.strip()
    if kind is PropertyKind.STRING:
        return Literal(text)
    if kind is PropertyKind.INTEGER:
        try:
            return Literal(int(text))
        except ValueError:
            raise DocumentParseError(
                f"expected an integer literal, got {text!r}"
            ) from None
    if kind is PropertyKind.FLOAT:
        try:
            return Literal(float(text))
        except ValueError:
            raise DocumentParseError(
                f"expected a numeric literal, got {text!r}"
            ) from None
    # Untyped: guess.
    try:
        return Literal(int(text))
    except ValueError:
        pass
    try:
        return Literal(float(text))
    except ValueError:
        pass
    return Literal(text)


def parse_document(
    xml_text: str, document_uri: str, schema: Schema | None = None
) -> Document:
    """Parse RDF/XML text into a :class:`~repro.rdf.model.Document`.

    ``document_uri`` is the globally unique URI associated with the
    document; resource URI references are formed from it (Section 2.1).
    When ``schema`` is given it is used to type literals and to decide
    whether an element is a resource class or a property — without it the
    parser relies on structure alone (elements with ``rdf:ID``/
    ``rdf:about`` are resources).
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DocumentParseError(f"malformed XML: {exc}") from exc
    if root.tag != RDF_ROOT_TAG:
        __, local = split_qualified(root.tag)
        if local != "RDF":
            raise DocumentParseError(
                f"document element must be rdf:RDF, got {root.tag!r}"
            )
    document = Document(document_uri)
    for element in root:
        _parse_resource(element, document, schema)
    return document


def _resource_uri(element: ET.Element, document: Document) -> URIRef:
    local_id = element.get(RDF_ID_ATTR)
    if local_id is not None:
        return make_uri_reference(document.uri, local_id)
    about = element.get(RDF_ABOUT_ATTR)
    if about is not None:
        return URIRef(about)
    raise DocumentParseError(
        f"resource element {element.tag!r} lacks rdf:ID and rdf:about"
    )


def _parse_resource(
    element: ET.Element, document: Document, schema: Schema | None
) -> URIRef:
    """Parse a resource element, add it to ``document``, return its URI."""
    __, class_name = split_qualified(element.tag)
    uri = _resource_uri(element, document)
    resource = Resource(uri, class_name)
    for child in element:
        _parse_property(child, resource, document, schema)
    document.resources[resource.uri] = resource
    return resource.uri


def _parse_property(
    element: ET.Element,
    resource: Resource,
    document: Document,
    schema: Schema | None,
) -> None:
    __, property_name = split_qualified(element.tag)

    reference = element.get(RDF_RESOURCE_ATTR)
    if reference is not None:
        resource.add(property_name, URIRef(reference))
        return

    nested = list(element)
    if nested:
        # A nested resource definition: hoist it and keep a reference.
        if len(nested) != 1:
            raise DocumentParseError(
                f"property {property_name!r} of <{resource.uri}> nests "
                f"{len(nested)} elements; exactly one resource is allowed"
            )
        target_uri = _parse_resource(nested[0], document, schema)
        resource.add(property_name, target_uri)
        return

    text = element.text or ""
    kind: PropertyKind | None = None
    if schema is not None and schema.has_property(
        resource.rdf_class, property_name
    ):
        prop = schema.property_def(resource.rdf_class, property_name)
        if prop.is_reference:
            resource.add(property_name, URIRef(text.strip()))
            return
        kind = prop.kind
    resource.add(property_name, parse_literal_text(text, kind))
