"""Serializers for RDF documents.

Two formats are provided:

- :func:`to_rdfxml` — the RDF/XML subset accepted by
  :mod:`repro.rdf.parser`, written in the flat (non-nested) form where
  every resource is a top-level element and references use
  ``rdf:resource`` attributes.  Round-trips with the parser.
- :func:`to_ntriples` — one line per statement, useful for debugging and
  for stable textual fixtures in tests.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from xml.sax.saxutils import escape

from repro.rdf.model import Document, Literal, Resource, URIRef
from repro.rdf.namespaces import MDV_NS, RDF_NS

__all__ = ["to_rdfxml", "to_ntriples"]


def _rdfxml_resource(resource: Resource, lines: list[str]) -> None:
    local = resource.uri.local_name
    if local and resource.uri.document_uri:
        identity = f'rdf:ID="{escape(local, {chr(34): "&quot;"})}"'
        # rdf:ID only encodes the local part; rely on the enclosing
        # document URI for reconstruction (handled by the parser).
    else:
        identity = f'rdf:about="{escape(str(resource.uri), {chr(34): "&quot;"})}"'
    lines.append(f"  <{resource.rdf_class} {identity}>")
    for name in resource.property_names():
        for value in resource.get(name):
            if isinstance(value, URIRef):
                target = escape(str(value), {'"': "&quot;"})
                lines.append(f'    <{name} rdf:resource="{target}"/>')
            else:
                lines.append(f"    <{name}>{escape(str(value))}</{name}>")
    lines.append(f"  </{resource.rdf_class}>")


def to_rdfxml(document: Document, schema_namespace: str = MDV_NS) -> str:
    """Serialize ``document`` to RDF/XML (flat form).

    The default namespace is the schema namespace so class and property
    elements need no prefix, mirroring the paper's Figure 1.
    """
    lines = [
        '<?xml version="1.0" encoding="utf-8"?>',
        f'<rdf:RDF xmlns:rdf="{RDF_NS}" xmlns="{schema_namespace}">',
    ]
    for resource in document:
        _rdfxml_resource(resource, lines)
    lines.append("</rdf:RDF>")
    return "\n".join(lines) + "\n"


def to_ntriples(document: Document) -> str:
    """Serialize ``document`` as one ``<subject> property value`` per line.

    Statements are emitted in a deterministic order (sorted by subject,
    property, value) so the output is stable across runs.
    """
    lines = []
    for statement in document.statements():
        if isinstance(statement.value, URIRef):
            rendered = f"<{statement.value}>"
        else:
            literal = statement.value
            assert isinstance(literal, Literal)
            if literal.is_numeric:
                rendered = literal.sql_value()
            else:
                rendered = '"' + str(literal.value).replace('"', '\\"') + '"'
        lines.append(f"<{statement.subject}> {statement.predicate} {rendered} .")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def indent_xml(xml_text: str) -> str:
    """Re-indent an XML string (debugging helper; not used in hot paths)."""
    element = ET.fromstring(xml_text)
    ET.indent(element)
    return ET.tostring(element, encoding="unicode")


__all__.append("indent_xml")
