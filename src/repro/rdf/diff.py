"""Document diffing for updates and deletions.

The paper (Section 3.5) defines update/delete semantics at document
granularity: *"Updated and deleted resources can be determined by
comparing the original RDF document with the updated, re-registered one.
A resource is updated if it is contained in both documents, but at least
one property is changed, added, or removed.  A resource is deleted if it
was contained in the original document but it is no more in the updated
one.  If a complete document is deleted all contained resources are
deleted."*

:func:`diff_documents` implements exactly this comparison and returns a
:class:`DocumentDiff` the filter engine consumes to drive its three-pass
update algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.model import Document, Resource

__all__ = ["DocumentDiff", "diff_documents", "deletion_diff"]


@dataclass
class DocumentDiff:
    """The outcome of comparing two versions of one RDF document.

    Attributes hold *resources* (not URIs) because the filter needs the
    old property values of updated/deleted resources as input for its
    first pass (Section 3.5).
    """

    document_uri: str
    inserted: list[Resource] = field(default_factory=list)
    updated: list[tuple[Resource, Resource]] = field(default_factory=list)
    deleted: list[Resource] = field(default_factory=list)
    unchanged: list[Resource] = field(default_factory=list)

    @property
    def is_initial_registration(self) -> bool:
        """True when there was no previous version of the document."""
        return not (self.updated or self.deleted or self.unchanged)

    @property
    def has_changes(self) -> bool:
        return bool(self.inserted or self.updated or self.deleted)

    def old_versions_of_changed(self) -> list[Resource]:
        """Old versions of updated plus deleted resources.

        This is the input of the filter's first pass: the resources whose
        previous state may have matched rules that no longer hold.
        """
        return [old for old, __ in self.updated] + list(self.deleted)

    def new_versions_of_changed(self) -> list[Resource]:
        """New versions of updated plus inserted resources.

        This is the input of the filter's third pass: the state that may
        newly match rules.
        """
        return [new for __, new in self.updated] + list(self.inserted)

    def summary(self) -> str:
        return (
            f"diff({self.document_uri}): +{len(self.inserted)} "
            f"~{len(self.updated)} -{len(self.deleted)} "
            f"={len(self.unchanged)}"
        )


def diff_documents(old: Document | None, new: Document) -> DocumentDiff:
    """Compare two versions of a document.

    ``old`` may be ``None`` for an initial registration, in which case
    every resource of ``new`` is reported as inserted.
    """
    diff = DocumentDiff(new.uri)
    if old is None:
        diff.inserted.extend(new)
        return diff
    if old.uri != new.uri:
        raise ValueError(
            f"cannot diff documents with different URIs: "
            f"{old.uri!r} vs {new.uri!r}"
        )
    for uri, new_resource in new.resources.items():
        old_resource = old.resources.get(uri)
        if old_resource is None:
            diff.inserted.append(new_resource)
        elif old_resource == new_resource:
            diff.unchanged.append(new_resource)
        else:
            diff.updated.append((old_resource, new_resource))
    for uri, old_resource in old.resources.items():
        if uri not in new.resources:
            diff.deleted.append(old_resource)
    return diff


def deletion_diff(old: Document) -> DocumentDiff:
    """The diff describing complete removal of ``old``.

    Equivalent to diffing against an empty re-registration: every
    resource is deleted.
    """
    diff = DocumentDiff(old.uri)
    diff.deleted.extend(old)
    return diff
