"""Namespace constants used by the RDF layer.

MDV (the paper's system) uses RDF with the XML syntax and augments RDF
Schema with properties for declaring *strong* and *weak* references
(paper, Section 2.4).  This module centralizes the URI constants so the
parser, serializer and filter agree on them.
"""

from __future__ import annotations

__all__ = [
    "RDF_NS",
    "RDFS_NS",
    "MDV_NS",
    "RDF_SUBJECT",
    "RDF_ID_ATTR",
    "RDF_ABOUT_ATTR",
    "RDF_RESOURCE_ATTR",
    "RDF_ROOT_TAG",
]

#: The W3C RDF syntax namespace (as of the 1999 specification the paper cites).
RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

#: The W3C RDF Schema namespace.
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"

#: Namespace for MDV's own schema vocabulary (strong/weak reference marks).
MDV_NS = "http://mdv.db.fmi.uni-passau.de/schema#"

#: The pseudo-property under which a resource's own URI reference is stored
#: in the ``FilterData`` table.  The paper (Section 3.2) inserts, for every
#: resource, a tuple with property ``rdf#subject`` and the resource's URI
#: reference as value, so that OID-style rules (``where c = URI``) can be
#: matched with the same join machinery as ordinary property predicates.
RDF_SUBJECT = "rdf#subject"

#: XML attribute names used by the RDF/XML subset parser.
RDF_ID_ATTR = f"{{{RDF_NS}}}ID"
RDF_ABOUT_ATTR = f"{{{RDF_NS}}}about"
RDF_RESOURCE_ATTR = f"{{{RDF_NS}}}resource"

#: The document element of an RDF/XML file.
RDF_ROOT_TAG = f"{{{RDF_NS}}}RDF"


def qualified(namespace: str, local: str) -> str:
    """Return ``local`` qualified with ``namespace`` in ElementTree notation.

    >>> qualified("http://example.org/ns#", "memory")
    '{http://example.org/ns#}memory'
    """
    return f"{{{namespace}}}{local}"


def split_qualified(tag: str) -> tuple[str, str]:
    """Split an ElementTree-qualified tag into ``(namespace, local)``.

    Tags without a namespace return an empty namespace component.

    >>> split_qualified("{http://example.org/ns#}memory")
    ('http://example.org/ns#', 'memory')
    >>> split_qualified("memory")
    ('', 'memory')
    """
    if tag.startswith("{"):
        namespace, _, local = tag[1:].partition("}")
        return namespace, local
    return "", tag
