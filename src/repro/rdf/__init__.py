"""RDF substrate: data model, schema, parsing, serialization, diffing.

MDV uses RDF as its data model and RDF Schema (augmented with strong/weak
reference declarations) as its schema language (paper, Section 2).  This
package is a from-scratch implementation of the subset the system needs;
see DESIGN.md for the substitution rationale (``rdflib`` is not available
in the reproduction environment).
"""

from repro.rdf.diff import DocumentDiff, deletion_diff, diff_documents
from repro.rdf.model import (
    Document,
    Literal,
    Resource,
    Statement,
    URIRef,
    Value,
    make_uri_reference,
)
from repro.rdf.namespaces import MDV_NS, RDF_NS, RDF_SUBJECT, RDFS_NS
from repro.rdf.parser import parse_document
from repro.rdf.schema import (
    ClassDef,
    PropertyDef,
    PropertyKind,
    RefStrength,
    Schema,
    objectglobe_schema,
)
from repro.rdf.schema_io import parse_schema, schema_to_rdfxml
from repro.rdf.serializer import to_ntriples, to_rdfxml

__all__ = [
    "Document",
    "DocumentDiff",
    "Literal",
    "Resource",
    "Statement",
    "URIRef",
    "Value",
    "make_uri_reference",
    "parse_document",
    "to_ntriples",
    "to_rdfxml",
    "parse_schema",
    "schema_to_rdfxml",
    "diff_documents",
    "deletion_diff",
    "ClassDef",
    "PropertyDef",
    "PropertyKind",
    "RefStrength",
    "Schema",
    "objectglobe_schema",
    "MDV_NS",
    "RDF_NS",
    "RDFS_NS",
    "RDF_SUBJECT",
]
