"""Abstract value domains for predicate reasoning.

The linter and the subsumption checker both reason about the set of
values a single ``(variable, property)`` slot may take under a conjunct
of ``= != < <= > >= contains`` predicates.  Two small domains cover the
rule language:

- :class:`NumericConstraints` — an interval with open/closed endpoints,
  plus an equality pin and a set of excluded points, for numeric
  properties;
- :class:`StringConstraints` — an equality pin, excluded values and
  required substrings, for string properties.

Both support the three questions the analyzer asks: *is the conjunct
satisfiable*, *is one predicate implied by the others* (always true) and
*does one atomic constraint imply another* (subsumption).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "NumericConstraints",
    "StringConstraints",
    "predicate_implies",
]

_ORDERING = frozenset({"<", "<=", ">", ">="})


@dataclass
class NumericConstraints:
    """Conjunction of numeric comparisons against one value slot.

    ``lower``/``upper`` are the tightest bounds seen so far (``None`` =
    unbounded); the ``*_strict`` flags record open endpoints.  ``eq``
    pins the slot to a single value; ``excluded`` collects ``!=`` points.
    """

    lower: float | None = None
    lower_strict: bool = False
    upper: float | None = None
    upper_strict: bool = False
    eq: float | None = None
    conflicting_eq: bool = False
    excluded: set[float] = field(default_factory=set)

    def add(self, operator: str, value: float) -> None:
        """Narrow the constraint set by one predicate."""
        if operator == "=":
            if self.eq is None:
                self.eq = value
            elif self.eq != value:
                self.conflicting_eq = True
        elif operator == "!=":
            self.excluded.add(value)
        elif operator == ">":
            if self.lower is None or value >= self.lower:
                self.lower, self.lower_strict = value, True
        elif operator == ">=":
            if self.lower is None or value > self.lower:
                self.lower, self.lower_strict = value, False
        elif operator == "<":
            if self.upper is None or value <= self.upper:
                self.upper, self.upper_strict = value, True
        elif operator == "<=":
            if self.upper is None or value < self.upper:
                self.upper, self.upper_strict = value, False
        else:  # pragma: no cover - callers filter operators
            raise ValueError(f"not a numeric operator: {operator!r}")

    def allows(self, value: float) -> bool:
        """Whether ``value`` satisfies every recorded constraint."""
        if self.conflicting_eq:
            return False
        if self.eq is not None and value != self.eq:
            return False
        if value in self.excluded:
            return False
        if self.lower is not None:
            if value < self.lower or (self.lower_strict and value == self.lower):
                return False
        if self.upper is not None:
            if value > self.upper or (self.upper_strict and value == self.upper):
                return False
        return True

    def is_satisfiable(self) -> bool:
        """Whether any value satisfies the conjunction."""
        if self.conflicting_eq:
            return False
        if self.eq is not None:
            return self.allows(self.eq)
        if self.lower is not None and self.upper is not None:
            if self.lower > self.upper:
                return False
            if self.lower == self.upper:
                if self.lower_strict or self.upper_strict:
                    return False
                return self.lower not in self.excluded
        # An open interval over the reals minus finitely many points is
        # never empty (rule constants are finite literals).
        return True

    def implies(self, operator: str, value: float) -> bool:
        """Whether every allowed value satisfies ``slot operator value``."""
        if not self.is_satisfiable():
            return True  # vacuously
        if self.eq is not None:
            return _compare(self.eq, operator, value)
        if operator == "=":
            return False  # a non-pinned satisfiable set is never a point
        if operator == "!=":
            return not self.allows(value)
        if operator in (">", ">="):
            if self.lower is None:
                return False
            if self.lower > value:
                return True
            if self.lower == value:
                return self.lower_strict or operator == ">="
            return False
        if operator in ("<", "<="):
            if self.upper is None:
                return False
            if self.upper < value:
                return True
            if self.upper == value:
                return self.upper_strict or operator == "<="
            return False
        raise ValueError(f"not a numeric operator: {operator!r}")


@dataclass
class StringConstraints:
    """Conjunction of string comparisons against one value slot."""

    eq: str | None = None
    conflicting_eq: bool = False
    excluded: set[str] = field(default_factory=set)
    substrings: set[str] = field(default_factory=set)

    def add(self, operator: str, value: str) -> None:
        if operator == "=":
            if self.eq is None:
                self.eq = value
            elif self.eq != value:
                self.conflicting_eq = True
        elif operator == "!=":
            self.excluded.add(value)
        elif operator == "contains":
            self.substrings.add(value)
        else:  # pragma: no cover - callers filter operators
            raise ValueError(f"not a string operator: {operator!r}")

    def is_satisfiable(self) -> bool:
        if self.conflicting_eq:
            return False
        if self.eq is not None:
            if self.eq in self.excluded:
                return False
            return all(sub in self.eq for sub in self.substrings)
        # Without an equality pin, some long-enough string containing all
        # required substrings and avoiding the finitely many exclusions
        # always exists.
        return True

    def implies(self, operator: str, value: str) -> bool:
        """Whether every allowed value satisfies ``slot operator value``."""
        if not self.is_satisfiable():
            return True  # vacuously
        if self.eq is not None:
            return _compare_str(self.eq, operator, value)
        if operator == "=":
            return False
        if operator == "!=":
            if value in self.excluded:
                return True
            # `contains s` implies `!= v` whenever s is not inside v.
            return any(sub not in value for sub in self.substrings)
        if operator == "contains":
            # contains t implies contains s when s is a substring of t.
            return any(value in sub for sub in self.substrings)
        raise ValueError(f"not a string operator: {operator!r}")


def _compare(left: float, operator: str, right: float) -> bool:
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise ValueError(f"unknown operator {operator!r}")


def _compare_str(left: str, operator: str, right: str) -> bool:
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator == "contains":
        return right in left
    raise ValueError(f"unknown string operator {operator!r}")


def predicate_implies(
    op_a: str, value_a: str, op_b: str, value_b: str, numeric: bool
) -> bool:
    """Whether ``slot op_a value_a`` implies ``slot op_b value_b``.

    This is the single-predicate containment the subsumption checker
    uses: atom A is at least as strict as atom B iff every value
    satisfying A satisfies B.  Values arrive in their canonical stored
    string form (see ``Literal.sql_value``).
    """
    if numeric:
        constraints = NumericConstraints()
        constraints.add(op_a, float(value_a))
        return constraints.implies(op_b, float(value_b))
    if op_a in _ORDERING or op_b in _ORDERING:
        return op_a == op_b and value_a == value_b
    string_constraints = StringConstraints()
    string_constraints.add(op_a, value_a)
    return string_constraints.implies(op_b, value_b)
