"""Auditor for the persisted filter state (the paper's storage contracts).

The authoritative rule catalogue lives in relational tables
(``atomic_rules``, ``rule_dependencies``, ``rule_groups``, the
triggering-index ``filter_rules_*`` tables, ``subscriptions`` …).  The
filter algorithm's correctness and termination rest on invariants the
code maintains but never re-checks:

- the dependency graph is a DAG (the filter's iteration bound, §3.4);
- every atom's ``refcount`` equals the number of subscriptions (and
  named rules) referencing it — the garbage collector trusts this;
- every triggering atom has its index rows and no index row is orphaned
  ("the filter tables act as indexes to all triggering rules");
- join atoms, their dependency edges and their rule group agree with
  each other (§3.3.2–3.3.3);
- the iteration-depth bound derived from dependency edges matches the
  one derived from the join input columns.

``audit_database`` re-checks all of them and reports violations as
``MDV03x`` diagnostics; it never mutates the database.
"""

from __future__ import annotations

import re
import sqlite3

from repro.rules.graph import DependencyGraph
from repro.storage.engine import Database
from repro.storage.schema import TRIGGER_TABLES

from repro.analysis.diagnostics import AnalysisReport, Severity

__all__ = ["audit_database"]

#: Suffix appended to rule texts when deduplication is disabled (an
#: ablation knob of the registry); stripped before signature checks.
_SALT = re.compile(r"~!\d+$")


def audit_database(db: Database) -> AnalysisReport:
    """Audit one MDP store; returns the violations found."""
    report = AnalysisReport()
    graph = DependencyGraph.load(db)
    acyclic = _check_acyclicity(db, graph, report)
    _check_refcounts(db, report)
    _check_trigger_indexes(db, report)
    _check_groups(db, report)
    _check_join_dependencies(db, report)
    _check_dangling(db, report)
    if acyclic:
        _check_depth_bound(db, graph, report)
    return report


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _check_acyclicity(
    db: Database, graph: DependencyGraph, report: AnalysisReport
) -> bool:
    if graph.is_acyclic():
        return True
    cycle_members = _cycle_members(graph)
    report.add(
        Severity.ERROR,
        "MDV030",
        f"dependency graph contains a cycle through rule(s) "
        f"{sorted(cycle_members)}",
        hint="the filter's iteration bound is void; the affected rules "
        "can never finish evaluating",
        source="rule_dependencies",
    )
    return False


def _cycle_members(graph: DependencyGraph) -> set[int]:
    """Nodes left after repeatedly peeling zero-in-degree nodes."""
    in_degree = {rule_id: 0 for rule_id in graph.nodes}
    successors: dict[int, list[int]] = {rule_id: [] for rule_id in graph.nodes}
    for source, target, __ in graph.edges:
        if source in successors and target in in_degree:
            in_degree[target] += 1
            successors[source].append(target)
    frontier = [rule_id for rule_id, deg in in_degree.items() if deg == 0]
    remaining = set(graph.nodes)
    while frontier:
        current = frontier.pop()
        remaining.discard(current)
        for target in successors[current]:
            in_degree[target] -= 1
            if in_degree[target] == 0:
                frontier.append(target)
    return remaining


def _check_refcounts(db: Database, report: AnalysisReport) -> None:
    rows = db.query_all(
        "SELECT ar.rule_id, ar.refcount, "
        "(SELECT COUNT(*) FROM subscription_rules sr "
        " WHERE sr.rule_id = ar.rule_id) AS actual "
        "FROM atomic_rules ar WHERE ar.refcount != "
        "(SELECT COUNT(*) FROM subscription_rules sr "
        " WHERE sr.rule_id = ar.rule_id)"
    )
    for row in rows:
        report.add(
            Severity.ERROR,
            "MDV031",
            f"atom {int(row['rule_id'])} has refcount "
            f"{int(row['refcount'])} but {int(row['actual'])} subscription "
            f"reference(s)",
            hint="unsubscription cleanup will leak or over-collect this atom",
            source="atomic_rules",
        )


def _check_trigger_indexes(db: Database, report: AnalysisReport) -> None:
    for table in TRIGGER_TABLES:
        rows = db.query_all(
            f"SELECT rule_id FROM {table} WHERE rule_id NOT IN "
            f"(SELECT rule_id FROM atomic_rules)"
        )
        for row in rows:
            report.add(
                Severity.ERROR,
                "MDV032",
                f"{table} row references missing atomic rule "
                f"{int(row['rule_id'])}",
                hint="documents will keep triggering a rule that no longer "
                "exists",
                source=table,
            )
    union = " UNION ".join(f"SELECT rule_id FROM {t}" for t in TRIGGER_TABLES)
    rows = db.query_all(
        f"SELECT rule_id FROM atomic_rules WHERE kind = 'triggering' "
        f"AND rule_id NOT IN ({union})"
    )
    for row in rows:
        report.add(
            Severity.ERROR,
            "MDV033",
            f"triggering atom {int(row['rule_id'])} has no rows in any "
            f"triggering-index table",
            hint="the atom can never fire; its dependents are dead",
            source="atomic_rules",
        )
    rows = db.query_all(
        "SELECT DISTINCT rule_id FROM materialized WHERE rule_id NOT IN "
        "(SELECT rule_id FROM atomic_rules)"
    )
    for row in rows:
        report.add(
            Severity.WARNING,
            "MDV038",
            f"materialized results reference missing atomic rule "
            f"{int(row['rule_id'])}",
            source="materialized",
        )


def _expected_signature(row: sqlite3.Row) -> str:
    """Recompute a group signature from the group's stored attributes."""
    left = f"{row['left_class']}.{row['left_property'] or '*'}"
    right = f"{row['right_class']}.{row['right_property'] or '*'}"
    flags = ("n" if row["numeric_compare"] else "") + (
        "s" if row["self_join"] else ""
    )
    return (
        f"G[{left} {row['operator']} {right}"
        f"|reg={row['register_side']}|{flags}]"
    )


def _check_groups(db: Database, report: AnalysisReport) -> None:
    groups: dict[int, str] = {}
    for row in db.query_all("SELECT * FROM rule_groups"):
        group_id = int(row["group_id"])
        signature = str(row["signature"])
        groups[group_id] = signature
        expected = _expected_signature(row)
        if signature != expected:
            report.add(
                Severity.ERROR,
                "MDV034",
                f"group {group_id} stores signature {signature!r} but its "
                f"attributes say {expected!r}",
                source="rule_groups",
            )
    rows = db.query_all(
        "SELECT rule_id, rule_text, group_id FROM atomic_rules "
        "WHERE kind = 'join'"
    )
    for row in rows:
        rule_id = int(row["rule_id"])
        if row["group_id"] is None:
            report.add(
                Severity.ERROR,
                "MDV034",
                f"join atom {rule_id} belongs to no rule group",
                source="atomic_rules",
            )
            continue
        group_id = int(row["group_id"])
        signature = groups.get(group_id)
        if signature is None:
            report.add(
                Severity.ERROR,
                "MDV036",
                f"join atom {rule_id} references missing group {group_id}",
                source="atomic_rules",
            )
            continue
        rule_text = _SALT.sub("", str(row["rule_text"]))
        if not rule_text.endswith(f"|{signature}]"):
            report.add(
                Severity.ERROR,
                "MDV034",
                f"join atom {rule_id} carries a rule text inconsistent with "
                f"its group signature {signature!r}",
                hint="the group-wise evaluation would apply the wrong "
                "predicate to this rule",
                source="atomic_rules",
            )


def _check_join_dependencies(db: Database, report: AnalysisReport) -> None:
    edges: dict[tuple[int, str], list[int]] = {}
    for row in db.query_all(
        "SELECT source_rule, target_rule, side FROM rule_dependencies"
    ):
        key = (int(row["target_rule"]), str(row["side"]))
        edges.setdefault(key, []).append(int(row["source_rule"]))
    join_rows = db.query_all(
        "SELECT rule_id, left_rule, right_rule FROM atomic_rules "
        "WHERE kind = 'join'"
    )
    join_ids = set()
    for row in join_rows:
        rule_id = int(row["rule_id"])
        join_ids.add(rule_id)
        for side, column in (("left", "left_rule"), ("right", "right_rule")):
            if row[column] is None:
                report.add(
                    Severity.ERROR,
                    "MDV035",
                    f"join atom {rule_id} has no {side} input rule",
                    source="atomic_rules",
                )
                continue
            expected = [int(row[column])]
            actual = sorted(edges.get((rule_id, side), []))
            if actual != expected:
                report.add(
                    Severity.ERROR,
                    "MDV035",
                    f"join atom {rule_id} expects {side} dependency edge "
                    f"from {expected[0]} but the graph records {actual}",
                    hint="incremental evaluation would feed the join from "
                    "the wrong inputs",
                    source="rule_dependencies",
                )
    for (target, side), sources in edges.items():
        if target not in join_ids:
            report.add(
                Severity.ERROR,
                "MDV035",
                f"dependency edge(s) {sources} -> {target} ({side}) target "
                f"a rule that is not a join atom",
                source="rule_dependencies",
            )


def _check_dangling(db: Database, report: AnalysisReport) -> None:
    checks = (
        (
            "rule_dependencies",
            "SELECT DISTINCT source_rule AS rule_id FROM rule_dependencies "
            "WHERE source_rule NOT IN (SELECT rule_id FROM atomic_rules)",
        ),
        (
            "rule_dependencies",
            "SELECT DISTINCT target_rule AS rule_id FROM rule_dependencies "
            "WHERE target_rule NOT IN (SELECT rule_id FROM atomic_rules)",
        ),
        (
            "subscriptions",
            "SELECT DISTINCT end_rule AS rule_id FROM subscriptions "
            "WHERE end_rule NOT IN (SELECT rule_id FROM atomic_rules)",
        ),
        (
            "subscription_rules",
            "SELECT DISTINCT rule_id FROM subscription_rules "
            "WHERE rule_id NOT IN (SELECT rule_id FROM atomic_rules)",
        ),
        (
            "named_rules",
            "SELECT DISTINCT end_rule AS rule_id FROM named_rules "
            "WHERE end_rule NOT IN (SELECT rule_id FROM atomic_rules)",
        ),
    )
    for table, sql in checks:
        for row in db.query_all(sql):
            report.add(
                Severity.ERROR,
                "MDV036",
                f"{table} references missing atomic rule {int(row['rule_id'])}",
                source=table,
            )


def _check_depth_bound(
    db: Database, graph: DependencyGraph, report: AnalysisReport
) -> None:
    """Compare the two derivations of the filter iteration bound."""
    from_edges = graph.longest_path_length()
    depth: dict[int, int] = {}
    inputs: dict[int, tuple[int | None, int | None]] = {}
    for row in db.query_all(
        "SELECT rule_id, left_rule, right_rule FROM atomic_rules"
    ):
        inputs[int(row["rule_id"])] = (
            None if row["left_rule"] is None else int(row["left_rule"]),
            None if row["right_rule"] is None else int(row["right_rule"]),
        )

    def column_depth(rule_id: int, trail: frozenset[int]) -> int:
        if rule_id in depth:
            return depth[rule_id]
        if rule_id in trail:  # corrupt cycle through input columns
            return 0
        left, right = inputs.get(rule_id, (None, None))
        children = [c for c in (left, right) if c is not None and c in inputs]
        value = (
            0
            if not children
            else 1 + max(column_depth(c, trail | {rule_id}) for c in children)
        )
        depth[rule_id] = value
        return value

    from_columns = (
        max((column_depth(rule_id, frozenset()) for rule_id in inputs), default=0)
    )
    if from_edges != from_columns:
        report.add(
            Severity.ERROR,
            "MDV037",
            f"iteration-depth bound is {from_edges} by dependency edges but "
            f"{from_columns} by join input columns",
            hint="rule_dependencies and atomic_rules disagree about the "
            "graph shape",
            source="rule_dependencies",
        )
