"""Command-line entry point: ``python -m repro.analysis <command>``.

Commands:

- ``lint [FILE ...] [--rule TEXT] [--db PATH]`` — lint subscription
  rules.  Rule files hold one rule per paragraph (blank-line separated;
  ``#`` starts a comment line).  With ``--db`` the rules are also
  checked for duplication/subsumption against the registry stored in
  that MDP database.
- ``audit --db PATH [--analysis-json PATH]`` — audit a live MDP
  database: storage/graph invariants (``MDV03x``) plus the
  whole-registry rule-base audit (``MDV05x`` — equivalence classes,
  shadowed and dead rules, index-advisor recommendations) plus the
  semantic vocabulary audit (``MDV07x``).  ``--analysis-json`` dumps
  the full ``ANALYSIS.json`` payload.
- ``code [PATH ...] [--root DIR]`` — run the source-code lint pack
  (``MDV06x``) over Python files; defaults to the installed ``repro``
  package tree.
- ``codes`` — list every diagnostic code with its meaning.

Every command takes ``--format text|json``; ``json`` prints one
machine-readable object on stdout (used by the CI lint-pack job).

Exit status: 0 when clean (infos allowed), 1 when warnings were found,
2 on any error (including unreadable inputs).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import MDVError
from repro.rdf.schema import Schema, objectglobe_schema
from repro.rules.registry import RuleRegistry
from repro.storage.engine import Database

from repro.analysis.code import lint_paths
from repro.analysis.diagnostics import CODES, EXIT_ERRORS, AnalysisReport
from repro.analysis.invariants import audit_database
from repro.analysis.lint import lint_rule_text
from repro.analysis.rulebase import audit_registry
from repro.analysis.semantics import audit_vocabulary
from repro.analysis.subsume import check_subsumption

__all__ = ["main"]


def _parse_rule_file(text: str) -> list[str]:
    """Split a rule file into rules: paragraphs, ``#`` comments dropped."""
    rules: list[str] = []
    paragraph: list[str] = []
    for line in [*text.splitlines(), ""]:
        stripped = line.strip()
        if stripped.startswith("#"):
            continue
        if not stripped:
            if paragraph:
                rules.append(" ".join(paragraph))
                paragraph = []
            continue
        paragraph.append(stripped)
    return rules


def _open_database(path: str) -> Database:
    if not Path(path).exists():
        raise FileNotFoundError(f"no such database: {path}")
    return Database(path)


def _provider_schema(db: Database) -> Schema:
    """The schema to lint against.

    MDP databases do not persist their schema, so the CLI falls back to
    the paper's ObjectGlobe example schema — the one every bundled
    scenario and benchmark uses.
    """
    return objectglobe_schema()


def run_lint(
    files: list[str],
    rule: str | None,
    db_path: str | None,
    fmt: str = "text",
) -> int:
    """Lint rules from files and/or ``--rule``; print findings."""
    sources: list[tuple[str, str]] = []
    for file_name in files:
        try:
            text = Path(file_name).read_text()
        except OSError as exc:
            print(f"error: cannot read {file_name}: {exc}", file=sys.stderr)
            return EXIT_ERRORS
        for index, rule_text in enumerate(_parse_rule_file(text), start=1):
            sources.append((f"{file_name}:{index}", rule_text))
    if rule is not None:
        sources.append(("--rule", rule))
    if not sources:
        print("error: nothing to lint (pass FILE or --rule)", file=sys.stderr)
        return EXIT_ERRORS

    db = None
    registry = None
    schema = objectglobe_schema()
    if db_path is not None:
        try:
            db = _open_database(db_path)
        except FileNotFoundError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_ERRORS
        registry = RuleRegistry(db)
        schema = _provider_schema(db)

    total = AnalysisReport()
    inputs: list[dict[str, object]] = []
    for label, rule_text in sources:
        named_types = registry.named_rule_types() if registry else None
        report = lint_rule_text(rule_text, schema, named_types)
        if registry is not None and not report.has_errors:
            report.extend(_subsumption_report(rule_text, schema, registry))
        if fmt == "json":
            inputs.append(
                {"source": label, "rule": rule_text, **report.to_dict()}
            )
        else:
            _print_findings(label, rule_text, report)
        total.extend(report)
    if fmt == "json":
        print(json.dumps(
            {"inputs": inputs, **_summary_dict(total)}, indent=2
        ))
    else:
        _print_summary(total, len(sources))
    return total.exit_code()


def _subsumption_report(
    rule_text: str, schema: Schema, registry: RuleRegistry
) -> AnalysisReport:
    """Subsumption findings for one lint-clean rule, never raising."""
    from repro.rules.decompose import decompose_rule
    from repro.rules.normalize import normalize_rule
    from repro.rules.parser import parse_rule

    report = AnalysisReport()
    try:
        parsed = parse_rule(rule_text)
        conjuncts = normalize_rule(
            parsed, schema, registry.named_rule_types()
        )
        named_producers = registry.named_producers()
        for normalized in conjuncts:
            decomposed = decompose_rule(normalized, schema, named_producers)
            report.extend(
                check_subsumption(decomposed, registry, source=rule_text)
            )
    except MDVError:
        pass  # the linter already reported everything it models
    return report


def run_audit(
    db_path: str, fmt: str = "text", analysis_json: str | None = None
) -> int:
    """Audit one MDP database; print findings."""
    try:
        db = _open_database(db_path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERRORS
    schema = _provider_schema(db)
    report = audit_database(db)
    rulebase = audit_registry(db, schema)
    report.extend(rulebase.report)
    report.extend(audit_vocabulary(db, schema))
    if analysis_json is not None:
        Path(analysis_json).write_text(
            json.dumps(rulebase.to_dict(), indent=2, sort_keys=True) + "\n"
        )
    if fmt == "json":
        print(json.dumps(
            {
                "database": db_path,
                "rulebase": rulebase.to_dict(),
                **report.to_dict(),
            },
            indent=2,
        ))
    else:
        for diagnostic in report:
            where = f" [{diagnostic.source}]" if diagnostic.source else ""
            print(f"{db_path}{where}: {diagnostic.render()}")
        _print_summary(report, 1)
    return report.exit_code()


def run_code(paths: list[str], root: str | None, fmt: str = "text") -> int:
    """Run the source-code lint pack (``MDV06x``) and print findings."""
    targets = [Path(p) for p in paths] or None
    try:
        report, files_checked = lint_paths(
            targets, root=Path(root) if root else None
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERRORS
    if fmt == "json":
        print(json.dumps(
            {"files_checked": files_checked, **report.to_dict()}, indent=2
        ))
    else:
        for diagnostic in report:
            where = f"{diagnostic.source}: " if diagnostic.source else ""
            print(f"{where}{diagnostic.render()}")
        _print_summary(report, files_checked)
    return report.exit_code()


def run_codes(fmt: str = "text") -> int:
    if fmt == "json":
        print(json.dumps(dict(sorted(CODES.items())), indent=2))
        return 0
    for code, meaning in sorted(CODES.items()):
        print(f"{code}  {meaning}")
    return 0


def _print_findings(
    label: str, rule_text: str, report: AnalysisReport
) -> None:
    for diagnostic in report:
        print(f"{label}: {diagnostic.render()}")
        if diagnostic.span is not None:
            start, end = diagnostic.span
            print(f"    {rule_text}")
            print(f"    {' ' * start}{'^' * max(end - start, 1)}")


def _summary_dict(report: AnalysisReport) -> dict[str, object]:
    payload = report.to_dict()
    return {"summary": payload["summary"], "exit_code": payload["exit_code"]}


def _print_summary(report: AnalysisReport, analyzed: int) -> None:
    errors = len(report.errors())
    warnings = len(report.warnings())
    infos = len(report.diagnostics) - errors - warnings
    parts = [f"{analyzed} input(s)"]
    for count, word in ((errors, "error"), (warnings, "warning"),
                        (infos, "info")):
        if count:
            parts.append(f"{count} {word}(s)")
    if not errors and not warnings:
        parts.append("clean")
    print(", ".join(parts))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for subscription rules and MDP stores.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    lint_parser = subparsers.add_parser(
        "lint", help="lint subscription rules from files or --rule"
    )
    lint_parser.add_argument(
        "files", nargs="*", metavar="FILE",
        help="rule files (one rule per blank-line separated paragraph)",
    )
    lint_parser.add_argument(
        "--rule", help="lint a single rule given on the command line"
    )
    lint_parser.add_argument(
        "--db", help="also check duplication/subsumption against this "
        "MDP database",
    )
    audit_parser = subparsers.add_parser(
        "audit", help="audit an MDP database (invariants + rule base)"
    )
    audit_parser.add_argument(
        "--db", required=True, help="path to the MDP SQLite database"
    )
    audit_parser.add_argument(
        "--analysis-json", metavar="PATH",
        help="dump the whole-registry ANALYSIS.json payload to PATH",
    )
    code_parser = subparsers.add_parser(
        "code", help="run the MDV06x source-code lint pack"
    )
    code_parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    code_parser.add_argument(
        "--root", help="directory the relative source labels are "
        "computed against",
    )
    subparsers.add_parser("codes", help="list all diagnostic codes")
    for sub in subparsers.choices.values():
        sub.add_argument(
            "--format", choices=("text", "json"), default="text",
            help="output format (default: text)",
        )
    args = parser.parse_args(argv)
    if args.command == "lint":
        return run_lint(args.files, args.rule, args.db, args.format)
    if args.command == "audit":
        return run_audit(args.db, args.format, args.analysis_json)
    if args.command == "code":
        return run_code(args.paths, args.root, args.format)
    return run_codes(args.format)


if __name__ == "__main__":
    sys.exit(main())
