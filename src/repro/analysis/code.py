"""AST lint pack enforcing the repository's concurrency/determinism rules.

The sharded triggering pipeline (PR 4) introduced invariants that were
previously enforced only by convention and code review:

- **MDV060** — ``sqlite3.connect`` may only be called inside the storage
  engine (:mod:`repro.storage.engine`).  Raw connections bypass the
  statement/row accounting and the thread-affinity policy.
- **MDV061** — ``check_same_thread=False`` and thread/executor creation
  are restricted to the concurrency allowlist (currently the shard pool,
  whose replicas are provably thread-bound; see docs/CONCURRENCY.md).
- **MDV062** — wall-clock reads (``time.time``, ``datetime.now``,
  ``datetime.utcnow``, ``date.today``) are banned outside clock-waived
  sites: simulated/replayed paths must be deterministic, and benchmarks
  must use the monotonic ``time.perf_counter``.  A line may carry an
  explicit waiver comment ``# mdv: allow(MDV062)``.
- **MDV063** — registered hot paths (:data:`HOT_PATHS`) must carry
  ``obs`` instrumentation: a function on the list has to touch a
  metrics/tracer handle (``self._m_*``, ``metrics``, ``tracer``)
  somewhere in its body, so filter cost stays attributable.
- **MDV064** — every module must declare ``__all__`` as a literal list
  or tuple of strings naming top-level definitions.
- **MDV065** — durability hygiene for the write path
  (:data:`DURABILITY_SCOPE`: ``repro/mdv``, ``repro/rules``): no raw
  ``.commit()`` calls (atomicity belongs to ``with db.transaction()``
  blocks, which compose through savepoints), and no function may mutate
  two or more distinct tables outside such a block — a crash between
  the statements would tear related state (docs/DURABILITY.md).  A line
  may carry ``# mdv: allow(MDV065)`` to waive a site that is provably
  crash-safe (e.g. single-row idempotent writes).
- **MDV066** — counting-matcher lock discipline (:data:`LOCK_SCOPE`):
  outside ``__init__``, every statement that mutates a ``self._idx_*``
  attribute (assignment, ``del``, or a call to a mutating container
  method) must sit lexically inside a ``with self._lock:`` block.  The
  parallel fan-out's worker threads read the same index; an unlocked
  mutation could expose a torn structure (docs/FILTER_ALGORITHM.md).
  A line may carry ``# mdv: allow(MDV066)``.

``python -m repro.analysis code`` runs the pack over ``src/repro`` (CI
wires it up with ``--format json``).  The checks are deliberately
syntactic — no imports are executed — so the pack runs on any tree.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path

from repro.analysis.diagnostics import AnalysisReport, Severity

__all__ = [
    "lint_file",
    "lint_paths",
    "default_root",
    "HOT_PATHS",
    "CONNECT_ALLOWLIST",
    "CONCURRENCY_ALLOWLIST",
    "DURABILITY_SCOPE",
    "LOCK_SCOPE",
    "WAIVER_MARK",
]

#: Files (by ``/``-joined path suffix) allowed to call ``sqlite3.connect``.
CONNECT_ALLOWLIST = ("repro/storage/engine.py",)

#: Files allowed to create threads/executors or unbind thread affinity.
CONCURRENCY_ALLOWLIST = (
    "repro/filter/shards.py",
    "repro/filter/counting.py",
    "repro/net/socket.py",
)

#: Files whose ``self._idx_*`` state gets the MDV066 lock-discipline
#: check.
LOCK_SCOPE = ("repro/filter/counting.py",)

#: Functions (file suffix, qualified name) that must reference an ``obs``
#: handle somewhere in their body.
HOT_PATHS: tuple[tuple[str, str], ...] = (
    ("repro/storage/engine.py", "Database.execute"),
    ("repro/filter/engine.py", "FilterEngine.run"),
    ("repro/filter/counting.py", "CountingMatcher.match_rows"),
    ("repro/text/index.py", "match_contains_indexed"),
)

#: Path fragments whose files get the MDV065 durability checks.
DURABILITY_SCOPE = ("repro/mdv/", "repro/rules/")

#: Inline waiver comment; must name the code it waives.
WAIVER_MARK = "# mdv: allow("

#: Leading SQL of a statement that mutates a table.
_MUTATION_RE = re.compile(
    r"^\s*(?:INSERT(?:\s+OR\s+\w+)?\s+INTO|REPLACE\s+INTO|DELETE\s+FROM"
    r"|UPDATE)\s+([A-Za-z_][A-Za-z0-9_]*)?",
    re.IGNORECASE,
)

#: ``(module, attribute)`` calls that read the wall clock.
_WALL_CLOCK_TIME_ATTRS = frozenset({"time", "time_ns"})
_WALL_CLOCK_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

_THREAD_FACTORIES = frozenset(
    {"Thread", "ThreadPoolExecutor", "ProcessPoolExecutor", "Timer"}
)

_OBS_MARKERS = frozenset({"metrics", "tracer"})


def default_root() -> Path:
    """The ``repro`` package directory (self-locating for CI)."""
    import repro

    return Path(repro.__file__).resolve().parent


def _suffix_match(path: Path, suffixes: tuple[str, ...]) -> bool:
    normalized = path.as_posix()
    return any(normalized.endswith(suffix) for suffix in suffixes)


def _waived(source_lines: list[str], node: ast.AST, code: str) -> bool:
    lineno = getattr(node, "lineno", None)
    if lineno is None or lineno > len(source_lines):
        return False
    line = source_lines[lineno - 1]
    return f"{WAIVER_MARK}{code})" in line


def _span(source_lines: list[str], node: ast.AST) -> tuple[int, int] | None:
    lineno = getattr(node, "lineno", None)
    col = getattr(node, "col_offset", None)
    if lineno is None or col is None:
        return None
    offset = sum(len(line) + 1 for line in source_lines[: lineno - 1]) + col
    end_col = getattr(node, "end_col_offset", col + 1)
    end_lineno = getattr(node, "end_lineno", lineno)
    end_offset = (
        sum(len(line) + 1 for line in source_lines[: end_lineno - 1]) + end_col
    )
    return offset, end_offset


class _ImportOrigins(ast.NodeVisitor):
    """Map local names to ``module`` / ``module.attr`` import origins."""

    def __init__(self) -> None:
        self.origins: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.origins[alias.asname or alias.name.split(".")[0]] = (
                alias.name
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None:
            return
        for alias in node.names:
            self.origins[alias.asname or alias.name] = (
                f"{node.module}.{alias.name}"
            )


def _call_target(node: ast.Call, origins: dict[str, str]) -> str | None:
    """The dotted origin of a call, resolved through the import map."""
    func = node.func
    parts: list[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if not isinstance(func, ast.Name):
        return None
    base = origins.get(func.id, func.id)
    parts.append(base)
    return ".".join(reversed(parts))


def lint_file(path: Path, relative_to: Path | None = None) -> AnalysisReport:
    """Run every MDV06x check over one Python source file."""
    report = AnalysisReport()
    source = path.read_text(encoding="utf-8")
    source_lines = source.splitlines()
    label = (
        path.relative_to(relative_to).as_posix()
        if relative_to is not None and path.is_relative_to(relative_to)
        else path.as_posix()
    )
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        report.add(
            Severity.ERROR,
            "MDV064",
            f"file does not parse: {exc.msg}",
            source=label,
        )
        return report

    origins_visitor = _ImportOrigins()
    origins_visitor.visit(tree)
    origins = origins_visitor.origins

    connect_ok = _suffix_match(path, CONNECT_ALLOWLIST)
    concurrency_ok = _suffix_match(path, CONCURRENCY_ALLOWLIST)
    durability_scoped = any(
        fragment in path.as_posix() for fragment in DURABILITY_SCOPE
    )

    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            target = _call_target(node, origins)
            if target is not None:
                _check_call(
                    report, source_lines, label, node, target,
                    connect_ok, concurrency_ok,
                )
            if (
                durability_scoped
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "commit"
                and not node.args
                and not _waived(source_lines, node, "MDV065")
            ):
                report.add(
                    Severity.ERROR,
                    "MDV065",
                    "raw .commit() call in the durability scope; wrap "
                    "the writes in `with db.transaction()` so they "
                    "commit or vanish atomically",
                    span=_span(source_lines, node),
                    source=label,
                )
        if isinstance(node, ast.keyword):
            if (
                node.arg == "check_same_thread"
                and isinstance(node.value, ast.Constant)
                and node.value.value is False
                and not concurrency_ok
                and not _waived(source_lines, node.value, "MDV061")
            ):
                report.add(
                    Severity.ERROR,
                    "MDV061",
                    "check_same_thread=False unbinds sqlite thread "
                    "affinity outside the concurrency allowlist",
                    span=_span(source_lines, node.value),
                    source=label,
                )

    _check_hot_paths(report, tree, path, label)
    _check_exports(report, tree, label)
    if durability_scoped:
        _check_multi_table_mutations(report, tree, source_lines, label)
    if _suffix_match(path, LOCK_SCOPE):
        _check_lock_scope(report, tree, source_lines, label)
    return report


def _check_call(
    report: AnalysisReport,
    source_lines: list[str],
    label: str,
    node: ast.Call,
    target: str,
    connect_ok: bool,
    concurrency_ok: bool,
) -> None:
    parts = target.split(".")
    if target == "sqlite3.connect" and not connect_ok:
        if not _waived(source_lines, node, "MDV060"):
            report.add(
                Severity.ERROR,
                "MDV060",
                "raw sqlite3.connect bypasses the storage engine's "
                "accounting and affinity policy",
                span=_span(source_lines, node),
                hint="go through repro.storage.engine.Database",
                source=label,
            )
        return
    if len(parts) >= 2 and parts[0] == "time":
        if parts[-1] in _WALL_CLOCK_TIME_ATTRS:
            if not _waived(source_lines, node, "MDV062"):
                report.add(
                    Severity.ERROR,
                    "MDV062",
                    f"wall-clock call {target} breaks determinism; use "
                    "time.perf_counter for intervals",
                    span=_span(source_lines, node),
                    source=label,
                )
            return
    if parts[0] == "datetime" and parts[-1] in _WALL_CLOCK_DATETIME_ATTRS:
        if not _waived(source_lines, node, "MDV062"):
            report.add(
                Severity.ERROR,
                "MDV062",
                f"wall-clock call {target} breaks determinism",
                span=_span(source_lines, node),
                source=label,
            )
        return
    factory = parts[-1]
    if factory in _THREAD_FACTORIES and not concurrency_ok:
        origin = ".".join(parts[:-1])
        if origin in ("threading", "concurrent.futures") or target in (
            "threading.Thread",
            "threading.Timer",
            "concurrent.futures.ThreadPoolExecutor",
            "concurrent.futures.ProcessPoolExecutor",
        ):
            if not _waived(source_lines, node, "MDV061"):
                report.add(
                    Severity.ERROR,
                    "MDV061",
                    f"{factory} created outside the concurrency "
                    "allowlist (shard pool owns all threads)",
                    span=_span(source_lines, node),
                    source=label,
                )


def _mutated_table(node: ast.Call) -> str | None:
    """The table an ``execute``/``executemany`` call mutates, if any.

    Dynamic SQL (f-strings) is matched on its leading literal part; an
    interpolated table name maps to a per-line sentinel so two dynamic
    mutations still count as distinct tables.
    """
    if not (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in ("execute", "executemany")
        and node.args
    ):
        return None
    sql_node = node.args[0]
    if isinstance(sql_node, ast.Constant) and isinstance(sql_node.value, str):
        sql = sql_node.value
    elif isinstance(sql_node, ast.JoinedStr):
        first = sql_node.values[0] if sql_node.values else None
        if not (
            isinstance(first, ast.Constant) and isinstance(first.value, str)
        ):
            return None
        sql = first.value
    else:
        return None
    match = _MUTATION_RE.match(sql)
    if match is None:
        return None
    return match.group(1) or f"<dynamic:{node.lineno}>"


class _MutationScanner(ast.NodeVisitor):
    """Collect table mutations made outside ``with *.transaction()``."""

    def __init__(self) -> None:
        self.in_transaction = 0
        #: ``(call node, table)`` for every unprotected mutation.
        self.unprotected: list[tuple[ast.Call, str]] = []

    def visit_With(self, node: ast.With) -> None:
        is_transaction = any(
            isinstance(item.context_expr, ast.Call)
            and isinstance(item.context_expr.func, ast.Attribute)
            and item.context_expr.func.attr == "transaction"
            for item in node.items
        )
        if is_transaction:
            self.in_transaction += 1
        self.generic_visit(node)
        if is_transaction:
            self.in_transaction -= 1

    def visit_Call(self, node: ast.Call) -> None:
        if self.in_transaction == 0:
            table = _mutated_table(node)
            if table is not None:
                self.unprotected.append((node, table))
        self.generic_visit(node)

    # Nested scopes are analysed as their own functions.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _check_multi_table_mutations(
    report: AnalysisReport,
    tree: ast.Module,
    source_lines: list[str],
    label: str,
) -> None:
    """MDV065: two+ tables mutated in one function with no transaction."""
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        scanner = _MutationScanner()
        for statement in node.body:
            scanner.visit(statement)
        tables = {table for _, table in scanner.unprotected}
        if len(tables) < 2:
            continue
        first = scanner.unprotected[0][0]
        if _waived(source_lines, first, "MDV065") or _waived(
            source_lines, node, "MDV065"
        ):
            continue
        report.add(
            Severity.ERROR,
            "MDV065",
            f"{node.name} mutates {len(tables)} tables "
            f"({', '.join(sorted(tables))}) outside a transaction() "
            "block; a crash between the statements would tear them",
            span=_span(source_lines, first),
            source=label,
        )


#: Container-method calls that mutate their receiver (MDV066).
_LOCK_MUTATORS = frozenset(
    {
        "add", "append", "clear", "discard", "extend", "insert", "pop",
        "popitem", "remove", "setdefault", "update",
    }
)

_IDX_PREFIX = "_idx_"


def _roots_at_index(node: ast.expr) -> bool:
    """Whether an attribute/subscript/call chain reaches ``self._idx_*``."""
    current: ast.expr | None = node
    while current is not None:
        if isinstance(current, ast.Attribute):
            if (
                current.attr.startswith(_IDX_PREFIX)
                and isinstance(current.value, ast.Name)
                and current.value.id == "self"
            ):
                return True
            current = current.value
        elif isinstance(current, ast.Subscript):
            current = current.value
        elif isinstance(current, ast.Call):
            current = current.func
        else:
            return False
    return False


class _LockScanner(ast.NodeVisitor):
    """Collect ``self._idx_*`` mutations outside ``with self._lock:``."""

    def __init__(self) -> None:
        self.in_lock = 0
        self.unprotected: list[ast.AST] = []
        self._seen_lines: set[int] = set()

    def _is_lock_item(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and expr.attr == "_lock"
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        )

    def visit_With(self, node: ast.With) -> None:
        is_lock = any(
            self._is_lock_item(item.context_expr) for item in node.items
        )
        if is_lock:
            self.in_lock += 1
        self.generic_visit(node)
        if is_lock:
            self.in_lock -= 1

    def _record(self, node: ast.AST, targets: list[ast.expr]) -> None:
        # One finding per source line: a statement like
        # `self._idx_x.setdefault(k, {})[r] = v` is both an assignment
        # and a mutating call, but it is one violation.
        line = getattr(node, "lineno", 0)
        if (
            self.in_lock == 0
            and line not in self._seen_lines
            and any(_roots_at_index(target) for target in targets)
        ):
            self._seen_lines.add(line)
            self.unprotected.append(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record(node, node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record(node, [node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record(node, [node.target])
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        self._record(node, list(node.targets))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _LOCK_MUTATORS
        ):
            self._record(node, [node.func.value])
        self.generic_visit(node)

    # Nested scopes are analysed as their own functions.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _check_lock_scope(
    report: AnalysisReport,
    tree: ast.Module,
    source_lines: list[str],
    label: str,
) -> None:
    """MDV066: index mutations must hold the matcher lock.

    ``__init__`` is exempt — construction happens before the object is
    visible to any other thread.
    """
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.name == "__init__":
            continue
        scanner = _LockScanner()
        for statement in node.body:
            scanner.visit(statement)
        for mutation in scanner.unprotected:
            # Waivable on the mutation line or on the enclosing def
            # line (the MDV065 convention for whole-function waivers).
            if _waived(source_lines, mutation, "MDV066") or _waived(
                source_lines, node, "MDV066"
            ):
                continue
            report.add(
                Severity.ERROR,
                "MDV066",
                f"{node.name} mutates counting-index state (self._idx_*) "
                "outside a `with self._lock:` block; shard threads could "
                "read a torn index",
                span=_span(source_lines, mutation),
                source=label,
            )


def _function_qualnames(
    tree: ast.Module,
) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    functions[f"{node.name}.{member.name}"] = member
    return functions


def _references_obs(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for node in ast.walk(function):
        if isinstance(node, ast.Attribute):
            if node.attr.startswith("_m_") or node.attr in _OBS_MARKERS:
                return True
        elif isinstance(node, ast.Name) and node.id in _OBS_MARKERS:
            return True
    return False


def _check_hot_paths(
    report: AnalysisReport, tree: ast.Module, path: Path, label: str
) -> None:
    wanted = [
        qualname
        for suffix, qualname in HOT_PATHS
        if path.as_posix().endswith(suffix)
    ]
    if not wanted:
        return
    functions = _function_qualnames(tree)
    for qualname in wanted:
        function = functions.get(qualname)
        if function is None:
            report.add(
                Severity.WARNING,
                "MDV063",
                f"registered hot path {qualname} not found",
                source=label,
            )
        elif not _references_obs(function):
            report.add(
                Severity.ERROR,
                "MDV063",
                f"hot path {qualname} lacks obs instrumentation "
                "(no metrics/tracer reference in its body)",
                source=label,
            )


def _check_exports(
    report: AnalysisReport, tree: ast.Module, label: str
) -> None:
    top_level: set[str] = set()
    exported: list[str] | None = None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            top_level.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                top_level.add(
                    alias.asname or alias.name.split(".")[0]
                )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    top_level.add(target.id)
                    if target.id == "__all__":
                        exported = _literal_strings(node.value)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                top_level.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            for sub in ast.walk(node):
                if isinstance(
                    sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    top_level.add(sub.name)
                elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                    for alias in sub.names:
                        top_level.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(sub, ast.Assign):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            top_level.add(target.id)
    if exported is None:
        report.add(
            Severity.ERROR,
            "MDV064",
            "module does not declare __all__ as a literal list/tuple",
            source=label,
        )
        return
    for name in exported:
        if name not in top_level:
            report.add(
                Severity.ERROR,
                "MDV064",
                f"__all__ exports {name!r} which is not defined at the "
                "top level",
                source=label,
            )


def _literal_strings(node: ast.expr) -> list[str]:
    if isinstance(node, (ast.List, ast.Tuple)):
        values = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(
                element.value, str
            ):
                values.append(element.value)
        return values
    return []


def lint_paths(
    paths: list[Path] | None = None, root: Path | None = None
) -> tuple[AnalysisReport, int]:
    """Lint every ``.py`` file under ``paths`` (default: the package).

    Returns ``(report, files_checked)``.
    """
    base = root if root is not None else default_root()
    targets = paths if paths else [base]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(target.rglob("*.py")))
        else:
            files.append(target)
    report = AnalysisReport()
    relative_root = base.parent
    for file_path in files:
        report.extend(lint_file(file_path, relative_to=relative_root))
    return report, len(files)
