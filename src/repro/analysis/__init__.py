"""Static analysis for subscription rules and persisted filter state.

Three analyzers over the rule pipeline, all reporting structured
:class:`~repro.analysis.diagnostics.Diagnostic` findings instead of
raising on the first problem:

- :mod:`repro.analysis.lint` — schema, typing and satisfiability checks
  on the parsed rule AST (``MDV00x``/``MDV01x``);
- :mod:`repro.analysis.subsume` — duplication and subsumption of a
  candidate rule against the live registry (``MDV02x``);
- :mod:`repro.analysis.invariants` — storage and dependency-graph
  invariant auditing of an MDP database (``MDV03x``).

``python -m repro.analysis`` exposes all three from the command line;
the registration paths (:meth:`RuleRegistry.register_subscription`,
``MetadataProvider.subscribe``) accept an ``analyze`` policy that turns
findings into warnings or registration rejections.
"""

from __future__ import annotations

from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.invariants import audit_database
from repro.analysis.lint import lint_rule, lint_rule_text
from repro.analysis.subsume import check_subsumption

__all__ = [
    "AnalysisReport",
    "CODES",
    "Diagnostic",
    "Severity",
    "audit_database",
    "check_subsumption",
    "lint_rule",
    "lint_rule_text",
]
