"""Static analysis for subscription rules and persisted filter state.

Six analyzers over the rule pipeline and its source tree, all
reporting structured :class:`~repro.analysis.diagnostics.Diagnostic`
findings instead of raising on the first problem:

- :mod:`repro.analysis.lint` — schema, typing and satisfiability checks
  on the parsed rule AST (``MDV00x``/``MDV01x``);
- :mod:`repro.analysis.subsume` — duplication and subsumption of a
  candidate rule against the live registry (``MDV02x``);
- :mod:`repro.analysis.invariants` — storage and dependency-graph
  invariant auditing of an MDP database (``MDV03x``);
- :mod:`repro.analysis.rulebase` — whole-registry optimizer: canonical
  forms, equivalence classes, scalable subsumption and the index
  advisor (``MDV05x``);
- :mod:`repro.analysis.code` — AST lint pack over the package source
  for concurrency/determinism hygiene (``MDV06x``);
- :mod:`repro.analysis.semantics` — post-hoc auditor for the semantic
  vocabulary store (``MDV07x``).

``python -m repro.analysis`` exposes all six from the command line;
the registration paths (:meth:`RuleRegistry.register_subscription`,
``MetadataProvider.subscribe``) accept an ``analyze`` policy that turns
findings into warnings or registration rejections, and the registry's
``dedupe`` knob uses the canonicalizer to share triggering work between
semantically equivalent subscriptions.
"""

from __future__ import annotations

from repro.analysis.code import lint_file, lint_paths
from repro.analysis.diagnostics import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.invariants import audit_database
from repro.analysis.lint import lint_rule, lint_rule_text
from repro.analysis.rulebase import (
    CanonicalRule,
    CoveringEdge,
    IndexAdvice,
    RegistryAudit,
    advise_indexes,
    audit_registry,
    canonical_hash,
    canonicalize,
    find_covering_edges,
    load_registry_atoms,
)
from repro.analysis.semantics import audit_vocabulary
from repro.analysis.subsume import check_subsumption

__all__ = [
    "AnalysisReport",
    "CODES",
    "CanonicalRule",
    "CoveringEdge",
    "Diagnostic",
    "IndexAdvice",
    "RegistryAudit",
    "Severity",
    "advise_indexes",
    "audit_database",
    "audit_registry",
    "audit_vocabulary",
    "canonical_hash",
    "canonicalize",
    "check_subsumption",
    "find_covering_edges",
    "lint_file",
    "lint_paths",
    "lint_rule",
    "lint_rule_text",
    "load_registry_atoms",
]
