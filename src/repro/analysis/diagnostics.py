"""Structured diagnostics emitted by the subscription-rule analyzer.

Every finding of the static analyzer — linter, subsumption checker and
storage auditor alike — is a :class:`Diagnostic`: a severity, a stable
``MDV0xx`` code, an optional character span into the analyzed rule text,
a human-readable message and an optional fix hint.  Codes are stable API
(documented in ``docs/RULE_ANALYSIS.md``); messages are not.

Code blocks:

- ``MDV00x`` — schema and typing errors found by the linter;
- ``MDV01x`` — satisfiability findings (contradictions, redundancies);
- ``MDV02x`` — subsumption/duplication against the live registry;
- ``MDV03x`` — storage/graph invariant violations found by the auditor;
- ``MDV05x`` — whole-registry rule-base findings (equivalence classes,
  shadowing/covering, dead rules, index-advisor recommendations);
- ``MDV06x`` — source-code lint pack (connection affinity, wall-clock
  discipline, instrumentation and export hygiene);
- ``MDV07x`` — semantic-tier findings (unknown concepts, cyclic
  taxonomy edges, invalid mapping functions, expansion fan-out).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field
from enum import IntEnum

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "CODES",
    "EXIT_CLEAN",
    "EXIT_WARNINGS",
    "EXIT_ERRORS",
]

#: CLI exit-code semantics (also used by the registration policies).
EXIT_CLEAN = 0
EXIT_WARNINGS = 1
EXIT_ERRORS = 2


class Severity(IntEnum):
    """Diagnostic severity; higher values are more severe."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    def __str__(self) -> str:
        return self.name.lower()


#: Stable diagnostic codes with their one-line meaning.  The dict is the
#: single source of truth: the CLI ``codes`` command prints it and the
#: docs are generated from the same wording.
CODES: dict[str, str] = {
    # -- linter: syntax / schema / typing (MDV00x) ---------------------
    "MDV001": "rule text could not be parsed",
    "MDV002": "unknown class or extension name in the search clause",
    "MDV003": "unknown property in a path expression",
    "MDV004": "invalid use of the any operator '?'",
    "MDV005": "set-valued property compared without the any operator '?'",
    "MDV006": "operator/type mismatch between property and constant",
    "MDV007": "malformed predicate (constants, paths or operator misuse)",
    "MDV008": "variable not join-connected to the register variable",
    # -- linter: satisfiability (MDV01x) -------------------------------
    "MDV010": "conjunct can never be satisfied (contradictory predicates)",
    "MDV011": "predicate is implied by the rest of its conjunct (always true)",
    # -- subsumption against the registry (MDV02x) ---------------------
    "MDV020": "rule duplicates an already registered subscription",
    "MDV021": "rule is subsumed by a more general registered subscription",
    "MDV022": "rule subsumes (is more general than) a registered subscription",
    # -- storage / graph invariants (MDV03x) ---------------------------
    "MDV030": "dependency graph contains a cycle",
    "MDV031": "atom refcount disagrees with its subscription references",
    "MDV032": "orphaned triggering-index row (no owning atomic rule)",
    "MDV033": "triggering atom has no triggering-index rows",
    "MDV034": "rule group signature disagrees with its stored attributes",
    "MDV035": "join atom's dependency edges disagree with its input columns",
    "MDV036": "dangling reference to a missing atomic rule",
    "MDV037": "iteration-depth bound disagrees between edges and inputs",
    "MDV038": "orphaned materialized-result row (no owning atomic rule)",
    # -- linter: performance hints (MDV039) ----------------------------
    "MDV039": "contains needle shorter than a trigram cannot use the "
    "text index",
    # -- whole-registry rule-base audit (MDV05x) -----------------------
    "MDV050": "multiple subscriptions share one triggering entry "
    "(duplicate rule registrations)",
    "MDV051": "registered rules are semantically equivalent "
    "(same canonical form, different spelling)",
    "MDV052": "registered rule is shadowed by a more general registered "
    "rule (covering edge)",
    "MDV053": "registered rule is unsatisfiable (dead triggering entry)",
    "MDV054": "index-advisor recommendation for an engine knob",
    # -- source-code lint pack (MDV06x) --------------------------------
    "MDV060": "raw sqlite3.connect outside the storage engine",
    "MDV061": "thread-affinity hazard (check_same_thread=False or "
    "thread/executor creation outside the concurrency allowlist)",
    "MDV062": "wall-clock call outside the clock abstraction",
    "MDV063": "registered hot path lacks obs instrumentation",
    "MDV064": "module lacks __all__ or exports an undefined name",
    "MDV065": "raw commit or multi-table mutation outside a "
    "transaction() block in the durability scope",
    "MDV066": "counting-index mutation outside a `with self._lock:` "
    "block in the lock scope",
    # -- semantic matching tier (MDV07x) -------------------------------
    "MDV070": "semantic construct references an unknown concept "
    "(property, class or value never seen by the schema or registry)",
    "MDV071": "taxonomy edge would create a cycle (or a self-edge)",
    "MDV072": "mapping function is not invertible (zero scale or "
    "duplicate enum source values)",
    "MDV073": "mapping function is type-mismatched for its properties",
    "MDV074": "mapped atom is unsatisfiable (no publishable source "
    "value can reach the subscribed constant)",
    "MDV075": "semantic expansion pushes the rule base past the "
    "counting-matcher threshold (advisor recommendation)",
}


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analyzer finding.

    ``span`` is a ``(start, end)`` character range into the analyzed rule
    text (``None`` for database-level findings); ``hint`` suggests a fix;
    ``source`` names what was analyzed (a rule text, a table, …).
    """

    severity: Severity
    code: str
    message: str
    span: tuple[int, int] | None = None
    hint: str | None = None
    source: str | None = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """One-line human-readable rendering."""
        where = ""
        if self.span is not None:
            where = f" at {self.span[0]}..{self.span[1]}"
        text = f"{self.severity}[{self.code}]{where}: {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable rendering (``--format json``)."""
        return {
            "severity": str(self.severity),
            "code": self.code,
            "message": self.message,
            "span": list(self.span) if self.span is not None else None,
            "hint": self.hint,
            "source": self.source,
        }

    def __str__(self) -> str:
        return self.render()


@dataclass
class AnalysisReport:
    """The collected diagnostics of one analyzer run."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(
        self,
        severity: Severity,
        code: str,
        message: str,
        span: tuple[int, int] | None = None,
        hint: str | None = None,
        source: str | None = None,
    ) -> Diagnostic:
        diagnostic = Diagnostic(severity, code, message, span, hint, source)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)

    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def has_warnings(self) -> bool:
        return any(d.severity is Severity.WARNING for d in self.diagnostics)

    @property
    def is_clean(self) -> bool:
        return not self.diagnostics

    def exit_code(self) -> int:
        """CLI semantics: 0 clean, 1 warnings only, 2 any error."""
        if self.has_errors:
            return EXIT_ERRORS
        if self.has_warnings:
            return EXIT_WARNINGS
        return EXIT_CLEAN

    def by_code(self, code: str) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def render(self) -> str:
        if not self.diagnostics:
            return "no findings"
        return "\n".join(d.render() for d in self.diagnostics)

    def to_dict(self) -> dict[str, object]:
        """A JSON-serializable rendering (``--format json``)."""
        return {
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "summary": {
                "errors": len(self.errors()),
                "warnings": len(self.warnings()),
                "total": len(self.diagnostics),
            },
            "exit_code": self.exit_code(),
        }

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)
