"""The subscription-rule linter (static analysis over the parsed AST).

Validates a rule *before* it is normalized, decomposed and merged into
the global dependency graph, reporting every finding instead of stopping
at the first (the normalizer raises on the first error; the linter is
the diagnostic front-end).  Three layers of checks:

1. **Schema checks** with precise spans: unknown classes/extensions,
   unknown properties, misuse of the any operator ``?``, set-valued
   properties compared without ``?``, operator/type mismatches.
2. **Satisfiability** per DNF conjunct: interval reasoning over
   ``= != < <= > >=`` and substring reasoning over ``contains`` flags
   conjuncts that can never fire (``e.cost < 5 and e.cost > 9``) and
   predicates that are implied by the rest of their conjunct and could
   be dropped before decomposition.
3. **Connectivity**: variables not join-connected to the register
   variable (the decomposition would reject the rule anyway; the linter
   points at the offending variable).

The entry points return an :class:`~repro.analysis.diagnostics.AnalysisReport`;
they never raise on bad rules.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NormalizationError, RuleSyntaxError
from repro.rdf.schema import PropertyDef, PropertyKind, Schema
from repro.rules.ast import Constant, PathExpr, Predicate, Rule
from repro.rules.normalize import to_dnf
from repro.rules.parser import parse_rule

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.intervals import NumericConstraints, StringConstraints
from repro.text.ngrams import TRIGRAM_LENGTH, is_indexable

__all__ = ["lint_rule", "lint_rule_text"]

_ORDERING_OPERATORS = frozenset({"<", "<=", ">", ">="})


def lint_rule_text(
    rule_text: str,
    schema: Schema,
    named_extension_types: dict[str, str] | None = None,
) -> AnalysisReport:
    """Lint a rule given as text; parse failures become ``MDV001``."""
    report = AnalysisReport()
    try:
        rule = parse_rule(rule_text)
    except RuleSyntaxError as exc:
        span = None
        if exc.position is not None:
            span = (exc.position, exc.position + 1)
        report.add(
            Severity.ERROR,
            "MDV001",
            str(exc),
            span=span,
            source=rule_text,
        )
        return report
    return lint_rule(rule, schema, named_extension_types, source=rule_text)


def lint_rule(
    rule: Rule,
    schema: Schema,
    named_extension_types: dict[str, str] | None = None,
    source: str | None = None,
) -> AnalysisReport:
    """Lint a parsed rule against ``schema``.

    ``named_extension_types`` maps named-rule extension names to the
    class their results register (same contract as ``normalize_rule``).
    """
    linter = _RuleLinter(
        rule, schema, named_extension_types or {}, source or str(rule)
    )
    return linter.run()


@dataclass(frozen=True, slots=True)
class _SlotConstraint:
    """One constant predicate folded into a satisfiability slot."""

    operator: str
    value: str | float
    span: tuple[int, int] | None


class _RuleLinter:
    """Single-use linter for one rule."""

    def __init__(
        self,
        rule: Rule,
        schema: Schema,
        named: dict[str, str],
        source: str,
    ):
        self.rule = rule
        self.schema = schema
        self.named = named
        self.source = source
        self.report = AnalysisReport()
        #: variable → class, for variables that resolved.
        self.variables: dict[str, str] = {}

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def run(self) -> AnalysisReport:
        self._check_extensions()
        if self.rule.where is not None:
            try:
                conjuncts = to_dnf(self.rule.where)
            except NormalizationError as exc:
                self._add(Severity.ERROR, "MDV007", str(exc))
                return self.report
            for conjunct in conjuncts:
                self._check_conjunct(conjunct)
        self._check_connectivity()
        return self.report

    def _add(
        self,
        severity: Severity,
        code: str,
        message: str,
        span: tuple[int, int] | None = None,
        hint: str | None = None,
    ) -> None:
        self.report.add(
            severity, code, message, span=span, hint=hint, source=self.source
        )

    # ------------------------------------------------------------------
    # Search clause
    # ------------------------------------------------------------------
    def _check_extensions(self) -> None:
        for ext in self.rule.extensions:
            if self.schema.has_class(ext.name):
                self.variables[ext.variable] = ext.name
            elif ext.name in self.named:
                self.variables[ext.variable] = self.named[ext.name]
            else:
                self._add(
                    Severity.ERROR,
                    "MDV002",
                    f"unknown class or named rule {ext.name!r}",
                    span=ext.span,
                    hint="define the class in the schema or register the "
                    "named rule first",
                )

    # ------------------------------------------------------------------
    # Path resolution (non-throwing mirror of the normalizer)
    # ------------------------------------------------------------------
    def _resolve_path(
        self, path: PathExpr
    ) -> tuple[str, PropertyDef | None, bool] | None:
        """Resolve a path to ``(final_class, final_prop, existential)``.

        ``final_prop`` is ``None`` for a bare variable.  ``existential``
        is true when any step uses ``?`` or the final property is
        set-valued — constraint reasoning must not conjoin such slots.
        Emits diagnostics and returns ``None`` when resolution fails.
        """
        class_name = self.variables.get(path.variable)
        if class_name is None:
            if path.variable not in {e.variable for e in self.rule.extensions}:
                self._add(
                    Severity.ERROR,
                    "MDV007",
                    f"unbound variable {path.variable!r}",
                    span=path.span,
                    hint="bind the variable in the search clause",
                )
            return None  # unknown extension already reported via MDV002
        existential = False
        prop: PropertyDef | None = None
        for index, step in enumerate(path.steps):
            if not self.schema.has_property(class_name, step.prop):
                self._add(
                    Severity.ERROR,
                    "MDV003",
                    f"class {class_name!r} has no property {step.prop!r}",
                    span=path.span,
                )
                return None
            prop = self.schema.property_def(class_name, step.prop)
            if step.any and not prop.multivalued:
                self._add(
                    Severity.ERROR,
                    "MDV004",
                    f"the any operator '?' applies only to set-valued "
                    f"properties; {step.prop!r} on {class_name!r} is "
                    f"single-valued",
                    span=path.span,
                    hint=f"drop the '?' after {step.prop!r}",
                )
                return None
            existential = existential or step.any or prop.multivalued
            is_last = index == len(path.steps) - 1
            if not is_last:
                if not prop.is_reference:
                    self._add(
                        Severity.ERROR,
                        "MDV007",
                        f"path step {step.prop!r} on class {class_name!r} is "
                        f"not a reference property",
                        span=path.span,
                    )
                    return None
                class_name = str(prop.target_class)
        return class_name, prop, existential

    # ------------------------------------------------------------------
    # Conjunct checks
    # ------------------------------------------------------------------
    def _check_conjunct(self, conjunct: list[Predicate]) -> None:
        slots: dict[tuple[str, tuple[str, ...]], list[_SlotConstraint]] = {}
        slot_numeric: dict[tuple[str, tuple[str, ...]], bool] = {}
        for predicate in conjunct:
            self._check_predicate(predicate, slots, slot_numeric)
        for key, constraints in slots.items():
            if len(constraints) < 2:
                continue
            self._check_slot(key, constraints, slot_numeric[key])

    def _check_predicate(
        self,
        predicate: Predicate,
        slots: dict[tuple[str, tuple[str, ...]], list[_SlotConstraint]],
        slot_numeric: dict[tuple[str, tuple[str, ...]], bool],
    ) -> None:
        left, operator, right = predicate.left, predicate.operator, predicate.right
        left_const = isinstance(left, Constant)
        right_const = isinstance(right, Constant)
        if left_const and right_const:
            self._add(
                Severity.ERROR,
                "MDV007",
                f"predicate {predicate} compares two constants",
                span=predicate.span,
            )
            return
        if left_const:
            if operator == "contains":
                self._add(
                    Severity.ERROR,
                    "MDV007",
                    f"'contains' needs the path on the left: {predicate}",
                    span=predicate.span,
                )
                return
            # Mirror the predicate so the path is on the left.
            from repro.rules.ast import flip_operator

            left, right = right, left
            operator = flip_operator(operator)
            left_const, right_const = False, True
        assert isinstance(left, PathExpr)
        if right_const:
            assert isinstance(right, Constant)
            self._check_constant_predicate(
                predicate, left, operator, right, slots, slot_numeric
            )
        else:
            assert isinstance(right, PathExpr)
            self._check_join_predicate(predicate, left, operator, right)

    def _check_constant_predicate(
        self,
        predicate: Predicate,
        path: PathExpr,
        operator: str,
        constant: Constant,
        slots: dict[tuple[str, tuple[str, ...]], list[_SlotConstraint]],
        slot_numeric: dict[tuple[str, tuple[str, ...]], bool],
    ) -> None:
        resolved = self._resolve_path(path)
        if resolved is None:
            return
        class_name, prop, existential = resolved
        value = constant.literal
        if prop is None:
            # Bare variable versus constant (OID-style predicate).
            if operator not in ("=", "!="):
                self._add(
                    Severity.ERROR,
                    "MDV007",
                    f"a variable can only be compared with = or != to a URI "
                    f"constant, not {operator!r}",
                    span=predicate.span,
                )
                return
            if value.is_numeric:
                self._add(
                    Severity.ERROR,
                    "MDV006",
                    f"variable {path.variable!r} compared to a numeric "
                    f"constant",
                    span=predicate.span,
                )
                return
        else:
            if not self._check_constant_types(
                predicate, class_name, prop, operator, value
            ):
                return
            if operator == "contains" and not is_indexable(str(value.value)):
                self._add(
                    Severity.WARNING,
                    "MDV039",
                    f"contains needle {str(value.value)!r} is shorter than "
                    f"a trigram ({TRIGRAM_LENGTH} characters); the rule "
                    f"cannot use the text index and stays on the scan join",
                    span=self._literal_span(predicate, constant),
                    hint="lengthen the needle to at least "
                    f"{TRIGRAM_LENGTH} characters if the match allows it",
                )
            final_step = path.steps[-1]
            if prop.multivalued and not final_step.any:
                self._add(
                    Severity.WARNING,
                    "MDV005",
                    f"property {prop.name!r} on {class_name!r} is set-valued; "
                    f"comparing it without '?' matches each value separately",
                    span=path.span,
                    hint=f"write {final_step.prop}? to make the intent "
                    f"explicit",
                )
        if existential:
            return  # per-element semantics: predicates do not conjoin
        key = (path.variable, tuple(step.prop for step in path.steps))
        numeric = prop is not None and prop.is_numeric
        stored: str | float
        stored = float(value.value) if numeric else str(value.sql_value())
        slots.setdefault(key, []).append(
            _SlotConstraint(operator, stored, predicate.span)
        )
        slot_numeric[key] = numeric

    def _literal_span(
        self, predicate: Predicate, constant: Constant
    ) -> tuple[int, int] | None:
        """The span of ``constant``'s literal inside the rule text.

        The AST records spans per predicate, not per operand, so the
        literal is located by searching its rendered form from the
        predicate's start; falls back to the predicate span.
        """
        if predicate.span is None:
            return None
        rendered = str(constant)
        index = self.source.find(rendered, predicate.span[0])
        if index < 0:
            return predicate.span
        return (index, index + len(rendered))

    def _check_constant_types(
        self,
        predicate: Predicate,
        class_name: str,
        prop: PropertyDef,
        operator: str,
        value: object,
    ) -> bool:
        """Type-compatibility of one property/constant pair."""
        from repro.rdf.model import Literal

        assert isinstance(value, Literal)
        if operator in _ORDERING_OPERATORS:
            if not prop.is_numeric or not value.is_numeric:
                self._add(
                    Severity.ERROR,
                    "MDV006",
                    f"operator {operator!r} requires a numeric property and "
                    f"a numeric constant ({class_name}.{prop.name})",
                    span=predicate.span,
                )
                return False
            return True
        if operator == "contains":
            if prop.kind is not PropertyKind.STRING or value.is_numeric:
                self._add(
                    Severity.ERROR,
                    "MDV006",
                    f"'contains' requires a string property and a string "
                    f"constant ({class_name}.{prop.name})",
                    span=predicate.span,
                )
                return False
            return True
        if prop.is_numeric and not value.is_numeric:
            self._add(
                Severity.ERROR,
                "MDV006",
                f"numeric property {class_name}.{prop.name} compared to "
                f"string constant {value.value!r}",
                span=predicate.span,
                hint="drop the quotes around the constant",
            )
            return False
        if (
            prop.is_reference or prop.kind is PropertyKind.STRING
        ) and value.is_numeric:
            self._add(
                Severity.ERROR,
                "MDV006",
                f"property {class_name}.{prop.name} compared to numeric "
                f"constant {value.value!r}",
                span=predicate.span,
                hint="quote the constant to compare as a string",
            )
            return False
        return True

    def _check_join_predicate(
        self, predicate: Predicate, left: PathExpr, operator: str, right: PathExpr
    ) -> None:
        if operator == "contains":
            self._add(
                Severity.ERROR,
                "MDV007",
                "'contains' joins between two paths are not supported",
                span=predicate.span,
            )
            return
        left_resolved = self._resolve_path(left)
        right_resolved = self._resolve_path(right)
        if left_resolved is None or right_resolved is None:
            return
        __, left_prop, left_existential = left_resolved
        __, right_prop, right_existential = right_resolved
        left_numeric = left_prop is not None and left_prop.is_numeric
        right_numeric = right_prop is not None and right_prop.is_numeric
        if operator in _ORDERING_OPERATORS and not (
            left_numeric and right_numeric
        ):
            self._add(
                Severity.ERROR,
                "MDV006",
                f"operator {operator!r} requires numeric properties on both "
                f"sides of a join predicate",
                span=predicate.span,
            )
            return
        if left_numeric != right_numeric:
            self._add(
                Severity.ERROR,
                "MDV006",
                "join predicate compares a numeric property with a "
                "non-numeric one",
                span=predicate.span,
            )
            return
        if left == right and not (left_existential or right_existential):
            # Both sides are the same single-valued slot: the predicate is
            # decided by the operator alone.
            if operator in ("=", "<=", ">="):
                self._add(
                    Severity.WARNING,
                    "MDV011",
                    f"predicate {predicate} compares a value with itself and "
                    f"is always true",
                    span=predicate.span,
                    hint="drop the predicate",
                )
            else:
                self._add(
                    Severity.ERROR,
                    "MDV010",
                    f"predicate {predicate} compares a value with itself and "
                    f"can never hold",
                    span=predicate.span,
                )

    # ------------------------------------------------------------------
    # Satisfiability per slot
    # ------------------------------------------------------------------
    def _check_slot(
        self,
        key: tuple[str, tuple[str, ...]],
        constraints: list[_SlotConstraint],
        numeric: bool,
    ) -> None:
        variable, props = key
        slot_name = ".".join([variable, *props]) if props else variable
        merged = self._build_constraints(constraints, numeric)
        span = self._union_span(constraints)
        if not merged.is_satisfiable():
            self._add(
                Severity.ERROR,
                "MDV010",
                f"contradictory predicates on {slot_name}: "
                + " and ".join(
                    f"{slot_name} {c.operator} {c.value!r}" for c in constraints
                ),
                span=span,
                hint="the conjunct can never match any resource",
            )
            return
        for index, constraint in enumerate(constraints):
            others = constraints[:index] + constraints[index + 1 :]
            if not others:
                continue
            remainder = self._build_constraints(others, numeric)
            if remainder.implies(constraint.operator, constraint.value):  # type: ignore[arg-type]
                self._add(
                    Severity.WARNING,
                    "MDV011",
                    f"predicate {slot_name} {constraint.operator} "
                    f"{constraint.value!r} is implied by the rest of the "
                    f"conjunct",
                    span=constraint.span,
                    hint="drop the redundant predicate",
                )

    @staticmethod
    def _build_constraints(
        constraints: list[_SlotConstraint], numeric: bool
    ) -> NumericConstraints | StringConstraints:
        if numeric:
            numeric_set = NumericConstraints()
            for constraint in constraints:
                numeric_set.add(constraint.operator, float(constraint.value))
            return numeric_set
        string_set = StringConstraints()
        for constraint in constraints:
            string_set.add(constraint.operator, str(constraint.value))
        return string_set

    @staticmethod
    def _union_span(
        constraints: list[_SlotConstraint],
    ) -> tuple[int, int] | None:
        spans = [c.span for c in constraints if c.span is not None]
        if not spans:
            return None
        return min(s[0] for s in spans), max(s[1] for s in spans)

    # ------------------------------------------------------------------
    # Connectivity
    # ------------------------------------------------------------------
    def _check_connectivity(self) -> None:
        """Flag search variables unreachable from the register variable.

        Connectivity is judged on the original rule: two variables are
        connected when one predicate's operands root in both.  (Fresh
        variables introduced by normalization are connected to their
        root by construction and need no check here.)
        """
        variables = [ext.variable for ext in self.rule.extensions]
        if len(variables) < 2:
            return
        conjunct_lists: list[list[Predicate]]
        if self.rule.where is None:
            conjunct_lists = [[]]
        else:
            try:
                conjunct_lists = to_dnf(self.rule.where)
            except NormalizationError:
                return  # already reported
        # Each DNF conjunct becomes its own normalized rule, so every
        # variable must be connected in every conjunct.
        disconnected: set[str] = set()
        for conjunct in conjunct_lists:
            edges: list[tuple[str, str]] = []
            for predicate in conjunct:
                roots = [
                    operand.variable
                    for operand in (predicate.left, predicate.right)
                    if isinstance(operand, PathExpr)
                ]
                if len(roots) == 2:
                    edges.append((roots[0], roots[1]))
            reachable = {self.rule.register}
            changed = True
            while changed:
                changed = False
                for left, right in edges:
                    if left in reachable and right not in reachable:
                        reachable.add(right)
                        changed = True
                    elif right in reachable and left not in reachable:
                        reachable.add(left)
                        changed = True
            disconnected.update(set(variables) - reachable)
        for ext in self.rule.extensions:
            if ext.variable in disconnected:
                self._add(
                    Severity.ERROR,
                    "MDV008",
                    f"variable {ext.variable!r} is not join-connected to the "
                    f"register variable {self.rule.register!r}",
                    span=ext.span,
                    hint="add a join predicate linking it to the registered "
                    "extension",
                )
