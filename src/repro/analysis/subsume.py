"""Subsumption and duplication checking against the live rule registry.

Before a candidate rule's atoms are merged into the global dependency
graph, this module compares its decomposition with every registered
subscription and reports:

- **exact duplicates** (``MDV020``) — same canonical end-rule text, or a
  semantically equivalent tree with different spelling;
- **subsumed candidates** (``MDV021``) — an existing subscription is
  strictly more general, so every notification the candidate would
  produce is already produced;
- **subsuming candidates** (``MDV022``) — the candidate is strictly more
  general than an existing subscription.

The containment test is recursive over the dependency trees: two trees
are comparable when their join rules share group signatures position by
position (canonical orientation makes the left/right order stable), and
direction is decided at the leaves by per-operator interval containment
on triggering atoms (see :mod:`repro.analysis.intervals`).  This is
sound because every operator of the rule language is monotone in its
input extensions: shrinking a leaf extension can only shrink the end
rule's results.  Incomparable shapes are skipped, never guessed.
"""

from __future__ import annotations

from repro.rules.atoms import AtomNode, JoinAtom, TriggeringAtom
from repro.rules.decompose import DecomposedRule
from repro.rules.registry import RuleRegistry, Subscription

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.intervals import predicate_implies

__all__ = ["check_subsumption", "atom_implies", "tree_direction"]


def atom_implies(a: TriggeringAtom, b: TriggeringAtom) -> bool:
    """Whether every resource matched by ``a`` is matched by ``b``.

    Class containment uses the extension class sets, so a rule over a
    subclass is recognized as stricter than the same rule over its
    superclass.  A class-only atom is the top element of its class.
    """
    if not set(a.extension_classes) <= set(b.extension_classes):
        return False
    if b.is_class_only:
        return True
    if a.is_class_only:
        return False
    if a.prop != b.prop or a.numeric != b.numeric:
        return False
    assert a.operator is not None and a.value is not None
    assert b.operator is not None and b.value is not None
    return predicate_implies(a.operator, a.value, b.operator, b.value, a.numeric)


def tree_direction(a: AtomNode, b: AtomNode) -> tuple[bool, bool]:
    """Containment between two dependency trees.

    Returns ``(a_subset_of_b, b_subset_of_a)``; ``(False, False)`` when
    the trees are incomparable (different join shapes).
    """
    if isinstance(a, TriggeringAtom) and isinstance(b, TriggeringAtom):
        return atom_implies(a, b), atom_implies(b, a)
    if isinstance(a, JoinAtom) and isinstance(b, JoinAtom):
        if a.group_signature != b.group_signature:
            return False, False
        left_fwd, left_bwd = tree_direction(a.left, b.left)
        right_fwd, right_bwd = tree_direction(a.right, b.right)
        return left_fwd and right_fwd, left_bwd and right_bwd
    return False, False


def check_subsumption(
    decomposed: DecomposedRule,
    registry: RuleRegistry,
    subscriber: str | None = None,
    source: str | None = None,
) -> AnalysisReport:
    """Compare a candidate decomposition against all registered rules.

    Call *before* the candidate's atoms are persisted — once merged, the
    candidate would compare equal to its own atoms.  ``subscriber``
    (when given) only annotates messages; duplicates are reported for
    any subscriber, since shared atoms make cross-subscriber duplicates
    cheap but a same-subscriber duplicate is usually a mistake.
    """
    report = AnalysisReport()
    source_text = source or decomposed.source.source_text
    candidate_end = decomposed.end
    seen_end_rules: set[int] = set()
    for subscription in _all_subscriptions(registry):
        if subscription.end_rule in seen_end_rules:
            continue
        seen_end_rules.add(subscription.end_rule)
        existing_end = registry.load_atom(subscription.end_rule)
        label = _label(subscription.subscriber, subscription.rule_text)
        if existing_end.key == candidate_end.key:
            severity = (
                Severity.ERROR
                if subscriber is not None
                and subscription.subscriber == subscriber
                else Severity.WARNING
            )
            report.add(
                severity,
                "MDV020",
                f"rule is an exact duplicate of {label}",
                hint="the registry shares the atoms; unsubscribe one of "
                "the two to drop the redundant notification stream",
                source=source_text,
            )
            continue
        forward, backward = tree_direction(candidate_end, existing_end)
        if forward and backward:
            report.add(
                Severity.WARNING,
                "MDV020",
                f"rule is semantically equivalent to {label}",
                source=source_text,
            )
        elif forward:
            report.add(
                Severity.WARNING,
                "MDV021",
                f"rule is subsumed by the more general {label}",
                hint="every resource this rule matches is already "
                "delivered by the existing subscription",
                source=source_text,
            )
        elif backward:
            report.add(
                Severity.INFO,
                "MDV022",
                f"rule subsumes the stricter {label}",
                source=source_text,
            )
    return report


def _all_subscriptions(registry: RuleRegistry) -> list[Subscription]:
    """Every registered subscription, named rules included."""
    return registry.subscriptions_for(registry.end_rule_ids())


def _label(subscriber: str, rule_text: str) -> str:
    if subscriber.startswith("~named~"):
        return f"named rule {subscriber[len('~named~'):]!r} ({rule_text!r})"
    return f"subscription {rule_text!r} of {subscriber!r}"
