"""Whole-registry static optimization: canonical forms, covering, advice.

The per-rule linter (:mod:`repro.analysis.lint`) and the pairwise
subsumption check (:mod:`repro.analysis.subsume`) answer questions about
*one* candidate rule.  This module audits the *entire* registered rule
base at once — the classic covering/merging analysis of content-based
publish/subscribe, done statically over the stored triggering index:

- **canonicalization** — every end rule is normalized into a hashed
  canonical form (identity-join chains flattened, predicate conjuncts
  merged through the interval domains, numeric literals normalized,
  leaves re-sorted and re-folded the way :mod:`repro.rules.decompose`
  folds them).  Equal canonical keys ⇒ equal match sets, so bucketing
  the registry by canonical hash yields its semantic equivalence
  classes (``MDV050``/``MDV051``) and its dead rules (``MDV053``);
- **scalable covering** — instead of the O(n²) pairwise walk, rules are
  bucketed by tree shape and, per varying leaf slot, indexed by
  ``(extension, property, operator family)``: ordered bounds form
  sorted chains whose immediate predecessor is a covering witness,
  equality/exclusion pins live in hash maps, and ``contains`` needles
  are probed by substring enumeration.  Every emitted covering edge is
  re-checked with :func:`repro.analysis.subsume.tree_direction`, so the
  report is sound by construction (``MDV052``);
- an **index advisor** that reads ``filter_data`` / trigram-postings
  statistics and recommends ``contains_index`` / ``join_evaluation`` /
  ``parallelism`` knob settings for the observed workload (``MDV054``).

:func:`audit_registry` drives all three and returns a
:class:`RegistryAudit` whose :meth:`~RegistryAudit.to_dict` is the
``ANALYSIS.json`` payload of ``python -m repro.analysis audit``.

Canonicalization is deliberately conservative without a schema: only
*pairwise* predicate implications are applied (sound for multi-valued
properties, whose predicates quantify existentially over elements).
With a schema, single-valued slots additionally get full interval-domain
merging — equality-pin absorption and unsatisfiability detection.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from time import perf_counter

from repro.analysis.diagnostics import AnalysisReport, Severity
from repro.analysis.intervals import (
    NumericConstraints,
    StringConstraints,
    predicate_implies,
)
from repro.analysis.subsume import tree_direction
from repro.errors import UnknownClassError, UnknownPropertyError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.rdf.schema import Schema
from repro.rules.atoms import AtomNode, JoinAtom, TriggeringAtom, make_join
from repro.storage.engine import Database
from repro.storage.schema import COMPARISON_TABLES
from repro.text.ngrams import TRIGRAM_LENGTH

__all__ = [
    "CanonicalRule",
    "canonicalize",
    "canonical_hash",
    "load_registry_atoms",
    "CoveringEdge",
    "find_covering_edges",
    "IndexAdvice",
    "advise_indexes",
    "RegistryAudit",
    "audit_registry",
]

#: Pairwise ``tree_direction`` is only attempted inside a shape bucket
#: with several varying leaf slots when the bucket is small; larger
#: buckets fall back to per-slot index probes (documented incompleteness
#: — never unsoundness, since every edge is re-checked).
PAIRWISE_BUCKET_CAP = 256

#: Substring enumeration for ``contains`` covering stops at this needle
#: length (quadratically many substrings).
MAX_ENUMERATED_NEEDLE = 64

#: Linear witness scans (exclusion pins vs. needle maps) give up after
#: this many probes.
MAX_WITNESS_SCAN = 256

_LOWER_OPS = (">", ">=")
_UPPER_OPS = ("<", "<=")


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
def _num_text(value: str) -> str:
    """Canonical rendering of a numeric literal ('64.0' → '64')."""
    number = float(value)
    if number.is_integer():
        return str(int(number))
    return repr(number)


def _canon_leaf(atom: TriggeringAtom) -> TriggeringAtom:
    ext = tuple(sorted(set(atom.extension_classes)))
    value = atom.value
    if atom.numeric and value is not None:
        value = _num_text(value)
    if ext == atom.extension_classes and value == atom.value:
        return atom
    return TriggeringAtom(
        atom.rdf_class, ext, atom.prop, atom.operator, value, atom.numeric
    )


def _single_valued(schema: Schema | None, rdf_class: str, prop: str) -> bool:
    """Whether ``prop`` is known single-valued (False when unknown)."""
    if schema is None:
        return False
    try:
        return not schema.property_def(rdf_class, prop).multivalued
    except (UnknownClassError, UnknownPropertyError):
        return False


def _make_pred(
    template: TriggeringAtom, operator: str, value: str
) -> TriggeringAtom:
    return TriggeringAtom(
        template.rdf_class,
        template.extension_classes,
        template.prop,
        operator,
        value,
        template.numeric,
    )


def _inside_bounds(domain: NumericConstraints, value: float) -> bool:
    """Whether ``value`` lies inside the domain's interval bounds."""
    if domain.lower is not None and (
        value < domain.lower
        or (domain.lower_strict and value == domain.lower)
    ):
        return False
    if domain.upper is not None and (
        value > domain.upper
        or (domain.upper_strict and value == domain.upper)
    ):
        return False
    return True


def _merge_single_valued(
    atoms: list[TriggeringAtom],
) -> tuple[list[TriggeringAtom], bool]:
    """Full interval-domain merge of one single-valued predicate group."""
    template = atoms[0]
    if template.numeric:
        numeric_domain = NumericConstraints()
        for atom in atoms:
            assert atom.operator is not None and atom.value is not None
            numeric_domain.add(atom.operator, float(atom.value))
        if not numeric_domain.is_satisfiable():
            return atoms, False
        merged: list[TriggeringAtom] = []
        if numeric_domain.eq is not None:
            merged.append(
                _make_pred(template, "=", _num_text(str(numeric_domain.eq)))
            )
        else:
            if numeric_domain.lower is not None:
                operator = ">" if numeric_domain.lower_strict else ">="
                merged.append(
                    _make_pred(
                        template, operator, _num_text(str(numeric_domain.lower))
                    )
                )
            if numeric_domain.upper is not None:
                operator = "<" if numeric_domain.upper_strict else "<="
                merged.append(
                    _make_pred(
                        template, operator, _num_text(str(numeric_domain.upper))
                    )
                )
            for value in sorted(numeric_domain.excluded):
                if _inside_bounds(numeric_domain, value):
                    merged.append(
                        _make_pred(template, "!=", _num_text(str(value)))
                    )
        return (merged or atoms[:1]), True
    string_domain = StringConstraints()
    for atom in atoms:
        assert atom.operator is not None and atom.value is not None
        string_domain.add(atom.operator, atom.value)
    if not string_domain.is_satisfiable():
        return atoms, False
    merged = []
    if string_domain.eq is not None:
        merged.append(_make_pred(template, "=", string_domain.eq))
    else:
        needles = sorted(string_domain.substrings)
        for needle in needles:
            if any(needle != other and needle in other for other in needles):
                continue  # a longer needle already requires this one
            merged.append(_make_pred(template, "contains", needle))
        for value in sorted(string_domain.excluded):
            if not any(sub not in value for sub in string_domain.substrings):
                merged.append(_make_pred(template, "!=", value))
    return (merged or atoms[:1]), True


def _merge_pairwise(atoms: list[TriggeringAtom]) -> list[TriggeringAtom]:
    """Drop predicates implied by a *single* other predicate.

    Per-element implication lifts through the existential quantification
    of multi-valued slots, so this is the strongest merge that is sound
    without schema knowledge.  Of a mutually-implying pair the smaller
    key survives.
    """
    kept: list[TriggeringAtom] = []
    for i, atom in enumerate(atoms):
        assert atom.operator is not None and atom.value is not None
        dropped = False
        for j, other in enumerate(atoms):
            if i == j:
                continue
            assert other.operator is not None and other.value is not None
            if not predicate_implies(
                other.operator, other.value, atom.operator, atom.value,
                atom.numeric,
            ):
                continue
            mutual = predicate_implies(
                atom.operator, atom.value, other.operator, other.value,
                atom.numeric,
            )
            if not (mutual and i < j):
                dropped = True
                break
        if not dropped:
            kept.append(atom)
    return kept


def _canon_identity_group(
    rdf_class: str,
    leaves: list[AtomNode],
    schema: Schema | None,
) -> tuple[list[AtomNode], bool]:
    """Merge the flattened leaves of one identity-join chain."""
    satisfiable = True
    predicate_groups: dict[
        tuple[tuple[str, ...], str, bool], list[TriggeringAtom]
    ] = {}
    class_only: dict[tuple[str, ...], TriggeringAtom] = {}
    opaque: list[AtomNode] = []
    for leaf in leaves:
        if not isinstance(leaf, TriggeringAtom):
            opaque.append(leaf)
        elif leaf.is_class_only:
            class_only.setdefault(leaf.extension_classes, leaf)
        else:
            assert leaf.prop is not None
            key = (leaf.extension_classes, leaf.prop, leaf.numeric)
            predicate_groups.setdefault(key, []).append(leaf)

    predicates: list[TriggeringAtom] = []
    for (__, prop, __numeric), group in predicate_groups.items():
        unique = {atom.key: atom for atom in group}
        group = sorted(unique.values(), key=lambda atom: atom.key)
        if len(group) == 1:
            predicates.extend(group)
            continue
        if _single_valued(schema, group[0].rdf_class, prop):
            merged, group_ok = _merge_single_valued(group)
            satisfiable = satisfiable and group_ok
            predicates.extend(merged)
        else:
            predicates.extend(_merge_pairwise(group))

    # A class-only leaf is redundant next to any leaf whose extension is
    # no wider: predicate leaves and opaque join subtrees both register
    # resources drawn from their class's extension.
    kept_class_only: list[TriggeringAtom] = []
    for ext, atom in sorted(class_only.items()):
        ext_set = set(ext)
        if any(
            set(pred.extension_classes) <= ext_set for pred in predicates
        ):
            continue
        if opaque and set(class_only) and ext_set >= _widest_extension(
            leaves, rdf_class, ext
        ):
            # The opaque subtree registers rdf_class resources; when this
            # class-only leaf is over that same extension (or wider) the
            # subtree already implies it.
            continue
        if any(
            other_ext != ext and set(other_ext) < ext_set
            for other_ext in class_only
        ):
            continue
        kept_class_only.append(atom)

    merged_leaves: list[AtomNode] = [*predicates, *kept_class_only, *opaque]
    if not merged_leaves:  # nothing survived: keep one class-only anchor
        merged_leaves = [next(iter(sorted(class_only.items())))[1]]
    return merged_leaves, satisfiable


def _widest_extension(
    leaves: list[AtomNode], rdf_class: str, fallback: tuple[str, ...]
) -> set[str]:
    """The extension-class set of ``rdf_class`` as recorded on any leaf."""
    for leaf in leaves:
        if isinstance(leaf, TriggeringAtom) and leaf.rdf_class == rdf_class:
            return set(leaf.extension_classes)
    return set(fallback)


def _is_mergeable_identity(node: AtomNode, rdf_class: str) -> bool:
    return (
        isinstance(node, JoinAtom)
        and node.is_identity
        and not node.self_join
        and node.left_class == rdf_class
        and node.right_class == rdf_class
    )


def _canon(
    node: AtomNode, schema: Schema | None
) -> tuple[AtomNode, bool]:
    if isinstance(node, TriggeringAtom):
        return _canon_leaf(node), True
    if not _is_mergeable_identity(node, node.left_class):
        left, left_ok = _canon(node.left, schema)
        right, right_ok = _canon(node.right, schema)
        rebuilt = make_join(
            left,
            node.left_class,
            node.left_prop,
            node.operator,
            right,
            node.right_class,
            node.right_prop,
            node.register_side,
            node.numeric,
            node.self_join,
        )
        return rebuilt, left_ok and right_ok

    rdf_class = node.left_class
    leaves: list[AtomNode] = []
    satisfiable = True

    def flatten(current: AtomNode) -> None:
        nonlocal satisfiable
        if _is_mergeable_identity(current, rdf_class):
            join = current
            assert isinstance(join, JoinAtom)
            flatten(join.left)
            flatten(join.right)
        else:
            canonical, child_ok = _canon(current, schema)
            satisfiable = satisfiable and child_ok
            leaves.append(canonical)

    flatten(node)
    merged, group_ok = _canon_identity_group(rdf_class, leaves, schema)
    satisfiable = satisfiable and group_ok

    ordered = sorted(merged, key=lambda leaf: leaf.key)
    rebuilt = ordered[0]
    for leaf in ordered[1:]:
        rebuilt = make_join(
            rebuilt, rdf_class, None, "=", leaf, rdf_class, None,
            register_side="left",
        )
    return rebuilt, satisfiable


@dataclass(frozen=True, slots=True)
class CanonicalRule:
    """The canonical form of one end rule.

    Two end rules with equal :attr:`key` have equal match sets on every
    document stream; unsatisfiable rules all share one per-class key
    (their match sets are equal — empty — regardless of spelling).
    """

    node: AtomNode
    satisfiable: bool

    @property
    def key(self) -> str:
        if not self.satisfiable:
            return f"UNSAT[{self.node.rdf_class}]"
        return self.node.key

    @property
    def hash(self) -> str:
        return hashlib.sha256(self.key.encode()).hexdigest()


def canonicalize(end: AtomNode, schema: Schema | None = None) -> CanonicalRule:
    """Normalize one end rule's dependency tree into canonical form."""
    node, satisfiable = _canon(end, schema)
    return CanonicalRule(node, satisfiable)


def canonical_hash(end: AtomNode, schema: Schema | None = None) -> str:
    """The canonical-form hash used by the registry's ``dedupe`` knob."""
    return canonicalize(end, schema).hash


# ----------------------------------------------------------------------
# Bulk registry loading
# ----------------------------------------------------------------------
def load_registry_atoms(db: Database) -> dict[int, AtomNode]:
    """Reconstruct every stored atom tree with O(1) full-table scans.

    :meth:`RuleRegistry.load_atom` issues several queries per atom —
    fine for one rule, fatal for a 100k-rule audit.  Insertion order is
    children-first (``AUTOINCREMENT`` ids), so one pass in ``rule_id``
    order can build every tree bottom-up.
    """
    # ``semantic = 0`` everywhere: the audit reasons over the
    # subscribers' original predicates; semantic expansion rows are
    # derived state (repro.semantics) and would corrupt reconstruction.
    extensions: dict[int, list[str]] = {}
    predicates: dict[int, tuple[str, str, str, bool]] = {}
    for operator, table in COMPARISON_TABLES.items():
        for row in db.query_all(
            f"SELECT rule_id, class, property, value, numeric FROM {table} "
            f"WHERE semantic = 0"
        ):
            rule_id = int(row["rule_id"])
            extensions.setdefault(rule_id, []).append(row["class"])
            predicates[rule_id] = (
                row["property"], operator, row["value"], bool(row["numeric"])
            )
    for row in db.query_all(
        "SELECT rule_id, class FROM filter_rules_class WHERE semantic = 0"
    ):
        extensions.setdefault(int(row["rule_id"]), []).append(row["class"])

    groups: dict[int, tuple[str, str, str | None, str | None, str, str, bool, bool]] = {}
    for row in db.query_all(
        "SELECT group_id, left_class, right_class, left_property, "
        "right_property, operator, register_side, numeric_compare, "
        "self_join FROM rule_groups"
    ):
        groups[int(row["group_id"])] = (
            row["left_class"],
            row["right_class"],
            row["left_property"],
            row["right_property"],
            row["operator"],
            row["register_side"],
            bool(row["numeric_compare"]),
            bool(row["self_join"]),
        )

    nodes: dict[int, AtomNode] = {}
    for row in db.query_all(
        "SELECT rule_id, kind, class, left_rule, right_rule, group_id "
        "FROM atomic_rules ORDER BY rule_id"
    ):
        rule_id = int(row["rule_id"])
        if row["kind"] == "triggering":
            ext = tuple(sorted(extensions.get(rule_id, (row["class"],))))
            predicate = predicates.get(rule_id)
            if predicate is None:
                nodes[rule_id] = TriggeringAtom(row["class"], ext)
            else:
                prop, operator, value, numeric = predicate
                nodes[rule_id] = TriggeringAtom(
                    row["class"], ext, prop, operator, value, numeric
                )
        else:
            attrs = groups[int(row["group_id"])]
            nodes[rule_id] = JoinAtom(
                left=nodes[int(row["left_rule"])],
                right=nodes[int(row["right_rule"])],
                left_class=attrs[0],
                right_class=attrs[1],
                left_prop=attrs[2],
                right_prop=attrs[3],
                operator=attrs[4],
                register_side=attrs[5],
                numeric=attrs[6],
                self_join=attrs[7],
            )
    return nodes


# ----------------------------------------------------------------------
# Scalable covering (shadowed rules)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class CoveringEdge:
    """One covering-graph edge: ``covered``'s matches ⊆ ``covering``'s."""

    covered: int
    covering: int

    def to_dict(self) -> dict[str, int]:
        return {"covered": self.covered, "covering": self.covering}


def _leaves(node: AtomNode) -> list[TriggeringAtom]:
    if isinstance(node, TriggeringAtom):
        return [node]
    return [*_leaves(node.left), *_leaves(node.right)]


def _shape(node: AtomNode) -> str:
    if isinstance(node, TriggeringAtom):
        return "T"
    return f"J({_shape(node.left)},{_shape(node.right)}){node.group_signature}"


class _SlotIndex:
    """Covering witnesses among triggering atoms filling one leaf slot.

    Atoms are grouped by ``(extension set, property, numeric)`` and, per
    group, by operator family.  Ordered bounds sort into chains where
    the immediate predecessor is always a witness; pins and needles sit
    in hash maps probed per family (see the module docstring).
    """

    def __init__(self, items: list[tuple[int, TriggeringAtom]]):
        self._class_only: list[tuple[frozenset[str], int]] = []
        self._slots: dict[
            tuple[frozenset[str], str, bool], _FamilyMaps
        ] = {}
        extension_sets: set[frozenset[str]] = set()
        for item_id, atom in items:
            ext = frozenset(atom.extension_classes)
            extension_sets.add(ext)
            if atom.is_class_only:
                self._class_only.append((ext, item_id))
            else:
                assert atom.prop is not None
                slot_key = (ext, atom.prop, atom.numeric)
                self._slots.setdefault(slot_key, _FamilyMaps()).add(
                    item_id, atom
                )
        self._class_only.sort(key=lambda entry: (sorted(entry[0]), entry[1]))
        self._extension_sets = sorted(extension_sets, key=sorted)
        for maps in self._slots.values():
            maps.freeze()

    def witness(self, item_id: int, atom: TriggeringAtom) -> int | None:
        """An item covering ``atom`` (``None`` if no witness found)."""
        ext = frozenset(atom.extension_classes)
        for other_ext, other_id in self._class_only:
            if other_id == item_id:
                continue
            if atom.is_class_only and not (ext < other_ext):
                continue
            if not atom.is_class_only and not (ext <= other_ext):
                continue
            return other_id
        if atom.is_class_only:
            return None
        assert atom.prop is not None
        for other_ext in self._extension_sets:
            if not (ext <= other_ext):
                continue
            maps = self._slots.get((other_ext, atom.prop, atom.numeric))
            if maps is None:
                continue
            found = maps.witness(item_id, atom, strict_ext=other_ext != ext)
            if found is not None:
                return found
        return None


class _FamilyMaps:
    """Per-(extension, property, numeric) operator-family structures."""

    def __init__(self) -> None:
        self.eq: dict[str, int] = {}
        self.ne: dict[str, int] = {}
        self.contains: dict[str, int] = {}
        self.lowers: list[tuple[float, int, int, str, str]] = []
        self.uppers: list[tuple[float, int, int, str, str]] = []
        self._lower_pos: dict[int, int] = {}
        self._upper_pos: dict[int, int] = {}
        self._ne_scan: list[tuple[str, int]] = []
        self._contains_scan: list[tuple[str, int]] = []
        self._needle_lengths: tuple[int, ...] = ()

    def add(self, item_id: int, atom: TriggeringAtom) -> None:
        assert atom.operator is not None and atom.value is not None
        operator, value = atom.operator, atom.value
        if operator == "=":
            self.eq.setdefault(value, item_id)
        elif operator == "!=":
            self.ne.setdefault(value, item_id)
        elif operator == "contains":
            self.contains.setdefault(value, item_id)
        elif operator in _LOWER_OPS:
            rank = 0 if operator == ">=" else 1  # closed is more general
            self.lowers.append(
                (float(value), rank, item_id, operator, value)
            )
        elif operator in _UPPER_OPS:
            rank = 0 if operator == "<=" else 1
            self.uppers.append(
                (-float(value), rank, item_id, operator, value)
            )

    def freeze(self) -> None:
        self.lowers.sort(key=lambda entry: entry[:3])
        self.uppers.sort(key=lambda entry: entry[:3])
        self._lower_pos = {
            entry[2]: index for index, entry in enumerate(self.lowers)
        }
        self._upper_pos = {
            entry[2]: index for index, entry in enumerate(self.uppers)
        }
        self._ne_scan = sorted(self.ne.items())[:MAX_WITNESS_SCAN]
        self._contains_scan = sorted(self.contains.items())[:MAX_WITNESS_SCAN]
        self._needle_lengths = tuple(
            sorted({len(needle) for needle in self.contains})
        )

    def _chain_witness(
        self,
        chain: list[tuple[float, int, int, str, str]],
        positions: dict[int, int],
        item_id: int,
        atom: TriggeringAtom,
    ) -> int | None:
        """The immediate predecessor of ``atom`` in a sorted bound chain."""
        index = positions.get(item_id)
        if index is not None:
            return chain[index - 1][2] if index else None
        # atom is not part of this chain (foreign extension set): the
        # most general chain element is the only candidate worth trying.
        if chain:
            assert atom.operator is not None and atom.value is not None
            head = chain[0]
            if predicate_implies(
                atom.operator, atom.value, head[3], head[4], atom.numeric
            ):
                return head[2]
        return None

    def witness(
        self, item_id: int, atom: TriggeringAtom, strict_ext: bool
    ) -> int | None:
        assert atom.operator is not None and atom.value is not None
        operator, value, numeric = atom.operator, atom.value, atom.numeric
        if operator == "=":
            same = self.eq.get(value)
            if strict_ext and same is not None and same != item_id:
                return same
            for chain in (self.lowers, self.uppers):
                if chain:
                    head = chain[0]
                    if head[2] != item_id and predicate_implies(
                        "=", value, head[3], head[4], numeric
                    ):
                        return head[2]
            for other_value, other_id in self._ne_scan:
                if other_id != item_id and predicate_implies(
                    "=", value, "!=", other_value, numeric
                ):
                    return other_id
            if not numeric:
                found = self._needle_witness(value, item_id)
                if found is not None:
                    return found
            return None
        if operator in _LOWER_OPS:
            found = self._chain_witness(
                self.lowers, self._lower_pos, item_id, atom
            )
            if found is not None:
                return found
            return self._exclusion_witness(atom, item_id)
        if operator in _UPPER_OPS:
            found = self._chain_witness(
                self.uppers, self._upper_pos, item_id, atom
            )
            if found is not None:
                return found
            return self._exclusion_witness(atom, item_id)
        if operator == "!=":
            same = self.ne.get(value)
            if strict_ext and same is not None and same != item_id:
                return same
            if not numeric:
                for needle, other_id in self._contains_scan:
                    if other_id != item_id and needle not in value:
                        return other_id
            return None
        if operator == "contains":
            found = self._needle_witness(value, item_id)
            if found is not None:
                return found
            for other_value, other_id in self._ne_scan:
                if other_id != item_id and value not in other_value:
                    return other_id
            return None
        return None

    def _needle_witness(self, value: str, item_id: int) -> int | None:
        """A ``contains`` atom whose needle is a proper part of ``value``."""
        if not self.contains:
            return None
        if len(value) <= MAX_ENUMERATED_NEEDLE:
            # Only lengths that actually occur among the stored needles
            # can hit the map — a CON-style base of equal-length tokens
            # costs one probe per start offset, not one per substring.
            for length in self._needle_lengths:
                if length > len(value):
                    break
                for start in range(len(value) - length + 1):
                    found = self.contains.get(value[start : start + length])
                    if found is not None and found != item_id:
                        return found
            return None
        for needle, other_id in self._contains_scan:
            if other_id != item_id and needle != value and needle in value:
                return other_id
        return None

    def _exclusion_witness(
        self, atom: TriggeringAtom, item_id: int
    ) -> int | None:
        """A ``!=`` pin lying outside ``atom``'s half-open interval."""
        assert atom.operator is not None and atom.value is not None
        for other_value, other_id in self._ne_scan:
            if other_id != item_id and predicate_implies(
                atom.operator, atom.value, "!=", other_value, atom.numeric
            ):
                return other_id
        return None


def find_covering_edges(
    representatives: list[tuple[int, AtomNode]],
) -> list[CoveringEdge]:
    """Covering edges among canonical representatives, near-linearly.

    Every returned edge is verified with ``tree_direction``; incomplete
    (large mixed buckets fall back to per-slot probes) but sound.
    """
    edges: list[CoveringEdge] = []
    buckets: dict[str, list[tuple[int, AtomNode]]] = {}
    for item_id, node in representatives:
        buckets.setdefault(_shape(node), []).append((item_id, node))

    # Leaf keys are recomputed on every .key access, and stored atoms
    # are shared object-for-object across trees — memoize by identity.
    leaf_keys: dict[int, str] = {}

    def _leaf_key(leaf: TriggeringAtom) -> str:
        key = leaf_keys.get(id(leaf))
        if key is None:
            key = leaf.key
            leaf_keys[id(leaf)] = key
        return key

    for bucket in buckets.values():
        if len(bucket) < 2:
            continue
        nodes = {item_id: node for item_id, node in bucket}
        leaf_vectors = {
            item_id: _leaves(node) for item_id, node in bucket
        }
        # One pass serves both the varying-position scan and the
        # context grouping.
        key_vectors = {
            item_id: tuple(_leaf_key(leaf) for leaf in vector)
            for item_id, vector in leaf_vectors.items()
        }
        width = len(next(iter(leaf_vectors.values())))
        varying = [
            position
            for position in range(width)
            if len(
                {keys[position] for keys in key_vectors.values()}
            ) > 1
        ]
        candidates: dict[int, int] = {}
        if len(varying) <= 1 or len(bucket) > PAIRWISE_BUCKET_CAP:
            positions = varying or [0]
            for position in positions:
                grouped: dict[tuple[str, ...], list[tuple[int, TriggeringAtom]]] = {}
                for item_id, vector in leaf_vectors.items():
                    keys = key_vectors[item_id]
                    context = keys[:position] + keys[position + 1 :]
                    grouped.setdefault(context, []).append(
                        (item_id, vector[position])
                    )
                for items in grouped.values():
                    if len(items) < 2:
                        continue
                    index = _SlotIndex(items)
                    for item_id, atom in items:
                        if item_id in candidates:
                            continue
                        witness = index.witness(item_id, atom)
                        if witness is not None:
                            candidates[item_id] = witness
        else:
            ordered = sorted(nodes)
            for covered_id in ordered:
                for covering_id in ordered:
                    if covering_id == covered_id:
                        continue
                    forward, backward = tree_direction(
                        nodes[covered_id], nodes[covering_id]
                    )
                    if forward and not backward:
                        candidates[covered_id] = covering_id
                        break
        for covered_id, covering_id in sorted(candidates.items()):
            forward, __ = tree_direction(
                nodes[covered_id], nodes[covering_id]
            )
            if forward:
                edges.append(CoveringEdge(covered_id, covering_id))
    return edges


# ----------------------------------------------------------------------
# Index advisor
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class IndexAdvice:
    """Knob recommendations derived from registry/content statistics."""

    contains_index: str
    join_evaluation: str
    parallelism: int
    triggering: str = "sql"
    stats: dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "contains_index": self.contains_index,
            "join_evaluation": self.join_evaluation,
            "parallelism": self.parallelism,
            "triggering": self.triggering,
            "stats": self.stats,
        }


#: Advisor thresholds — deliberately simple and deterministic (no
#: ``cpu_count`` probing) so recommendations are reproducible in CI.
TRIGRAM_RULE_THRESHOLD = 64
PROBE_GROUP_THRESHOLD = 4
PARALLEL_RULE_THRESHOLD = 10_000
RECOMMENDED_SHARDS = 4
#: Above this many triggering rules the in-memory counting matcher
#: (``triggering="counting"``) beats the relational triggering join —
#: the BENCH_matcher figure's crossover is far below this, the margin
#: keeps the default (the paper's sql path) for small rule bases.
COUNTING_RULE_THRESHOLD = 10_000


def advise_indexes(db: Database) -> IndexAdvice:
    """Recommend engine knobs from stored rule and content statistics."""
    triggering_rules = db.count("atomic_rules", "kind = 'triggering'")
    join_rules = db.count("atomic_rules", "kind = 'join'")
    contains_rules = int(
        db.scalar("SELECT COUNT(DISTINCT rule_id) FROM filter_rules_con")
        or 0
    )
    indexable_contains = int(
        db.scalar("SELECT COUNT(DISTINCT rule_id) FROM filter_rules_con_tri")
        or 0
    )
    postings = db.count("text_postings")
    max_group = int(
        db.scalar(
            "SELECT COALESCE(MAX(members), 0) FROM ("
            "SELECT COUNT(*) AS members FROM atomic_rules "
            "WHERE kind = 'join' GROUP BY group_id)"
        )
        or 0
    )
    filter_rows = db.count("filter_data")
    # Semantic expansion (repro.semantics) multiplies index rows per
    # rule; the *expanded* row count is what the triggering stage
    # actually scans, so recommendations key on it, not on the rule
    # count.
    semantic_rows = 0
    expanded_rows = 0
    for table in ("filter_rules_class", *COMPARISON_TABLES.values()):
        semantic_rows += db.count(table, "semantic = 1")
        expanded_rows += db.count(table)
    path_rows = db.query_all(
        "SELECT class, property, COUNT(*) AS rows_total, "
        "COUNT(DISTINCT value) AS distinct_values FROM filter_data "
        "GROUP BY class, property ORDER BY rows_total DESC LIMIT 32"
    )
    paths = [
        {
            "class": row["class"],
            "property": row["property"],
            "rows": int(row["rows_total"]),
            "distinct_values": int(row["distinct_values"]),
            "eq_selectivity": (
                1.0 / int(row["distinct_values"])
                if int(row["distinct_values"])
                else 1.0
            ),
        }
        for row in path_rows
    ]
    stats: dict[str, object] = {
        "triggering_rules": triggering_rules,
        "join_rules": join_rules,
        "contains_rules": contains_rules,
        "indexable_contains_rules": indexable_contains,
        "short_needle_contains_rules": contains_rules - indexable_contains,
        "text_postings": postings,
        "max_rule_group_population": max_group,
        "filter_data_rows": filter_rows,
        "trigram_length": TRIGRAM_LENGTH,
        "subscriptions": db.count("subscriptions"),
        "semantic_rows": semantic_rows,
        "expanded_triggering_rows": expanded_rows,
        "paths": paths,
    }
    contains_index = (
        "trigram"
        if indexable_contains >= TRIGRAM_RULE_THRESHOLD
        else "scan"
    )
    join_evaluation = (
        "probe" if max_group >= PROBE_GROUP_THRESHOLD else "scan"
    )
    parallelism = (
        RECOMMENDED_SHARDS
        if triggering_rules >= PARALLEL_RULE_THRESHOLD
        else 1
    )
    # Semantic fan-out can push a modest rule base past the counting
    # crossover even when the rule *count* stays small; only the
    # semantically expanded row count may widen the trigger, never the
    # plain multi-class fan-out of an unexpanded base.
    triggering = (
        "counting"
        if triggering_rules >= COUNTING_RULE_THRESHOLD
        or (semantic_rows > 0 and expanded_rows >= COUNTING_RULE_THRESHOLD)
        else "sql"
    )
    return IndexAdvice(
        contains_index, join_evaluation, parallelism, triggering, stats
    )


# ----------------------------------------------------------------------
# The whole-registry audit
# ----------------------------------------------------------------------
#: At most this many diagnostics are emitted per MDV05x code; the full
#: counts always appear in the JSON payload.
MAX_DIAGNOSTICS_PER_CODE = 100

#: At most this many covering edges are embedded in the JSON payload.
MAX_EDGES_IN_PAYLOAD = 10_000


@dataclass
class RegistryAudit:
    """The result of one whole-registry audit run."""

    report: AnalysisReport
    equivalence_classes: dict[str, list[int]]
    duplicate_subscription_groups: list[list[int]]
    dead_rules: list[int]
    covering_edges: list[CoveringEdge]
    advice: IndexAdvice
    end_rules: int
    atoms: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, object]:
        """The ``ANALYSIS.json`` payload."""
        multi = {
            key: members
            for key, members in sorted(self.equivalence_classes.items())
            if len(members) > 1
        }
        return {
            "generated_by": "repro.analysis.rulebase",
            "registry": {
                "end_rules": self.end_rules,
                "atoms": self.atoms,
                "audit_seconds": round(self.elapsed_seconds, 6),
            },
            "equivalence": {
                "classes": self.end_rules - sum(
                    len(members) - 1 for members in multi.values()
                ),
                "equivalent_groups": [
                    sorted(members) for members in multi.values()
                ],
                "duplicate_subscription_groups": [
                    sorted(group)
                    for group in self.duplicate_subscription_groups
                ],
                "dead_rules": sorted(self.dead_rules),
            },
            "subsumption": {
                "shadowed_rules": len(self.covering_edges),
                "covering_edges": [
                    edge.to_dict()
                    for edge in self.covering_edges[:MAX_EDGES_IN_PAYLOAD]
                ],
                "truncated": len(self.covering_edges) > MAX_EDGES_IN_PAYLOAD,
            },
            "advisor": self.advice.to_dict(),
            "diagnostics": [d.to_dict() for d in self.report.diagnostics],
        }


def _capped_add(
    report: AnalysisReport,
    counts: dict[str, int],
    severity: Severity,
    code: str,
    message: str,
    **kwargs: object,
) -> None:
    counts[code] = counts.get(code, 0) + 1
    if counts[code] <= MAX_DIAGNOSTICS_PER_CODE:
        report.add(severity, code, message, **kwargs)  # type: ignore[arg-type]


def audit_registry(
    db: Database,
    schema: Schema | None = None,
    metrics: MetricsRegistry | None = None,
) -> RegistryAudit:
    """Audit the whole registered rule base of one MDP store."""
    metrics = metrics if metrics is not None else default_registry()
    started = perf_counter()

    nodes = load_registry_atoms(db)
    subscription_rows = db.query_all(
        "SELECT sub_id, subscriber, rule_text, end_rule FROM subscriptions "
        "ORDER BY sub_id"
    )
    end_subscribers: dict[int, list[tuple[str, str]]] = {}
    for row in subscription_rows:
        end_subscribers.setdefault(int(row["end_rule"]), []).append(
            (row["subscriber"], row["rule_text"])
        )

    report = AnalysisReport()
    counts: dict[str, int] = {}

    # MDV050 — several subscriptions share one triggering entry.
    duplicate_groups: list[list[int]] = []
    for end_rule in sorted(end_subscribers):
        subs = end_subscribers[end_rule]
        if len(subs) < 2:
            continue
        duplicate_groups.append([end_rule])
        subscribers = [subscriber for subscriber, __ in subs]
        severity = (
            Severity.WARNING
            if len(set(subscribers)) < len(subscribers)
            else Severity.INFO
        )
        _capped_add(
            report,
            counts,
            severity,
            "MDV050",
            f"end rule {end_rule} is shared by {len(subs)} subscriptions "
            f"({', '.join(sorted(set(subscribers))[:4])})",
            source=f"rule {end_rule}",
        )

    # Canonicalization: equivalence classes and dead rules.
    canonical: dict[int, CanonicalRule] = {}
    classes: dict[str, list[int]] = {}
    dead: list[int] = []
    for end_rule in sorted(end_subscribers):
        node = nodes.get(end_rule)
        if node is None:
            continue
        form = canonicalize(node, schema)
        canonical[end_rule] = form
        classes.setdefault(form.key, []).append(end_rule)
        if not form.satisfiable:
            dead.append(end_rule)
            _capped_add(
                report,
                counts,
                Severity.WARNING,
                "MDV053",
                f"end rule {end_rule} is unsatisfiable — it pays "
                "triggering cost but can never match",
                hint="unsubscribe it or fix the contradictory predicates",
                source=_source_label(end_subscribers[end_rule]),
            )

    for key, members in sorted(classes.items()):
        if len(members) < 2:
            continue
        _capped_add(
            report,
            counts,
            Severity.WARNING,
            "MDV051",
            f"end rules {members} are semantically equivalent "
            "(identical canonical form, different spelling)",
            hint="enable the registry dedupe knob to share one "
            "triggering entry",
            source=f"canonical {key[:80]}",
        )

    # Covering among canonical representatives, lifted to class members.
    representatives = [
        (members[0], canonical[members[0]].node)
        for __, members in sorted(classes.items())
        if canonical[members[0]].satisfiable
    ]
    representative_edges = find_covering_edges(representatives)
    class_of: dict[int, list[int]] = {}
    for members in classes.values():
        class_of[members[0]] = members
    covering_edges: list[CoveringEdge] = []
    for edge in representative_edges:
        for member in class_of.get(edge.covered, [edge.covered]):
            covering_edges.append(CoveringEdge(member, edge.covering))
    for edge in covering_edges:
        covered_subs = {
            subscriber for subscriber, __ in end_subscribers.get(edge.covered, [])
        }
        covering_subs = {
            subscriber
            for member in class_of.get(edge.covering, [edge.covering])
            for subscriber, __ in end_subscribers.get(member, [])
        }
        severity = (
            Severity.WARNING
            if covered_subs & covering_subs
            else Severity.INFO
        )
        _capped_add(
            report,
            counts,
            severity,
            "MDV052",
            f"end rule {edge.covered} is shadowed by the more general "
            f"end rule {edge.covering}",
            source=_source_label(end_subscribers.get(edge.covered, [])),
        )

    advice = advise_indexes(db)
    for knob, value in (
        ("contains_index", advice.contains_index),
        ("join_evaluation", advice.join_evaluation),
        ("parallelism", advice.parallelism),
        ("triggering", advice.triggering),
    ):
        report.add(
            Severity.INFO,
            "MDV054",
            f"advisor recommends {knob}={value!r} for this workload",
            source="index advisor",
        )

    # MDV075 — semantic fan-out pushed the *expanded* trigger index past
    # the counting crossover even though the rule count alone would not.
    semantic_rows = _stat_int(advice.stats, "semantic_rows")
    expanded_rows = _stat_int(advice.stats, "expanded_triggering_rows")
    triggering_rules = _stat_int(advice.stats, "triggering_rules")
    if (
        semantic_rows > 0
        and expanded_rows >= COUNTING_RULE_THRESHOLD
        and triggering_rules < COUNTING_RULE_THRESHOLD
    ):
        report.add(
            Severity.WARNING,
            "MDV075",
            f"semantic expansion widened {triggering_rules} triggering "
            f"rules to {expanded_rows} index rows ({semantic_rows} "
            "semantic) — past the counting-matcher crossover",
            hint='construct the engine with triggering="counting"',
            source="index advisor",
        )

    elapsed = perf_counter() - started
    metrics.counter("analysis.audits").inc()
    metrics.counter("analysis.rules_audited").inc(len(canonical))
    metrics.counter("analysis.equivalent_rules").inc(
        sum(len(members) - 1 for members in classes.values())
    )
    metrics.counter("analysis.dead_rules").inc(len(dead))
    metrics.counter("analysis.shadowed_rules").inc(len(covering_edges))
    metrics.histogram("analysis.audit_ms").observe(elapsed * 1000.0)

    overflow = {
        code: total
        for code, total in sorted(counts.items())
        if total > MAX_DIAGNOSTICS_PER_CODE
    }
    for code, total in overflow.items():
        report.add(
            Severity.INFO,
            code,
            f"… and {total - MAX_DIAGNOSTICS_PER_CODE} more {code} "
            "findings (full counts in the JSON payload)",
            source="rule-base audit",
        )

    return RegistryAudit(
        report=report,
        equivalence_classes=classes,
        duplicate_subscription_groups=duplicate_groups,
        dead_rules=dead,
        covering_edges=covering_edges,
        advice=advice,
        end_rules=len(canonical),
        atoms=len(nodes),
        elapsed_seconds=elapsed,
    )


def _stat_int(stats: dict[str, object], key: str) -> int:
    value = stats.get(key, 0)
    return value if isinstance(value, int) else 0


def _source_label(subs: list[tuple[str, str]]) -> str | None:
    if not subs:
        return None
    subscriber, rule_text = subs[0]
    return f"{subscriber}: {rule_text}"
