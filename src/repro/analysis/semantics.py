"""Auditor for the semantic vocabulary store (``MDV07x``).

The semantic tier (:mod:`repro.semantics`) validates vocabulary at
registration time — cyclic taxonomy edges and non-invertible mappings
are rejected with :class:`~repro.errors.SemanticError` before they are
persisted.  This module is the *post-hoc* complement: it re-checks a
store's persisted vocabulary tables wholesale, catching hand-edited
databases, schema drift (a synonym registered against a property that a
later schema revision dropped) and closure corruption:

- every concept a synonym set, taxonomy edge or mapping references
  should still exist in the schema, the registered rule base or the
  published data (``MDV070``);
- the precomputed taxonomy closure must equal the naive transitive
  closure of the edge list and must stay acyclic (``MDV071``);
- mapping functions must remain invertible — non-zero affine scale,
  no enum source mapped to two targets (``MDV072``) — and typed
  consistently with the schema (``MDV073``);
- semantically expanded equality rows must stay publishable: an
  integer-typed property compared against a non-integral mapped
  constant can never match (``MDV074``).

``audit_vocabulary`` never mutates the database; the ``audit`` CLI
command runs it alongside the MDV03x/MDV05x audits.
"""

from __future__ import annotations

from repro.rdf.schema import PropertyKind, Schema
from repro.storage.engine import Database
from repro.storage.schema import COMPARISON_TABLES

from repro.analysis.diagnostics import AnalysisReport, Severity

__all__ = ["audit_vocabulary"]


def audit_vocabulary(
    db: Database, schema: Schema | None = None
) -> AnalysisReport:
    """Audit one store's semantic vocabulary; returns violations found."""
    report = AnalysisReport()
    _check_concepts(db, schema, report)
    _check_closure(db, report)
    _check_mappings(db, schema, report)
    _check_mapped_satisfiability(db, schema, report)
    return report


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _schema_properties(schema: Schema) -> set[str]:
    return {
        name
        for cls in schema.class_names()
        for name in schema.class_def(cls).properties
    }


def _known_properties(db: Database, schema: Schema) -> set[str]:
    """Property names the schema declares or the store actually uses.

    MDP databases do not persist their schema, so a CLI audit may run
    against the fallback ObjectGlobe schema while the store speaks a
    custom one.  Published statements and registered (non-semantic)
    triggering rows prove a property exists regardless of which schema
    object we were handed — only names *nobody* uses are dead weight.
    """
    known = _schema_properties(schema)
    for row in db.query_all("SELECT DISTINCT property FROM filter_data"):
        known.add(row["property"])
    for table in COMPARISON_TABLES.values():
        for row in db.query_all(
            f"SELECT DISTINCT property FROM {table} WHERE semantic = 0"
        ):
            known.add(row["property"])
    return known


def _known_classes(db: Database, schema: Schema) -> set[str]:
    """Class names the schema declares or the store actually uses."""
    known = set(schema.class_names())
    for row in db.query_all("SELECT DISTINCT class FROM filter_data"):
        known.add(row["class"])
    for row in db.query_all(
        "SELECT DISTINCT class FROM filter_rules_class WHERE semantic = 0"
    ):
        known.add(row["class"])
    return known


def _property_kinds(schema: Schema, prop: str) -> set[PropertyKind]:
    """Every kind ``prop`` is declared with, across all schema classes."""
    return {
        definition.kind
        for cls in schema.class_names()
        for name, definition in schema.class_def(cls).properties.items()
        if name == prop
    }


def _known_value_concepts(db: Database) -> set[str]:
    """Free-string concepts the store or rule base already speaks of."""
    known: set[str] = set()
    for row in db.query_all(
        "SELECT term FROM semantic_synonyms WHERE kind = 'value'"
    ):
        known.add(row["term"])
    for row in db.query_all(
        "SELECT source_value, target_value FROM semantic_mapping_values"
    ):
        known.add(row["source_value"])
        known.add(row["target_value"])
    # Original (unexpanded) subscription constants and published content
    # values: what subscribers ask for — or publishers say — is a
    # concept by definition.
    for row in db.query_all(
        "SELECT DISTINCT value FROM filter_rules_eq WHERE semantic = 0"
    ):
        known.add(row["value"])
    for row in db.query_all("SELECT DISTINCT value FROM filter_data"):
        known.add(row["value"])
    return known


def _check_concepts(
    db: Database, schema: Schema | None, report: AnalysisReport
) -> None:
    if schema is None:
        return
    properties = _known_properties(db, schema)

    for row in db.query_all(
        "SELECT term FROM semantic_synonyms WHERE kind = 'property' "
        "ORDER BY term"
    ):
        if row["term"] not in properties:
            report.add(
                Severity.WARNING,
                "MDV070",
                f"property synonym {row['term']!r} names no known "
                "property — no schema, rule or document spells it, the "
                "expansion rows are dead weight",
                source="semantic_synonyms",
            )

    known_values = _known_classes(db, schema) | _known_value_concepts(db)
    for row in db.query_all(
        "SELECT narrower, broader FROM semantic_taxonomy_edges "
        "ORDER BY narrower, broader"
    ):
        for concept in (row["narrower"], row["broader"]):
            if concept not in known_values:
                report.add(
                    Severity.INFO,
                    "MDV070",
                    f"taxonomy concept {concept!r} is neither a schema "
                    "class nor a value any synonym, mapping or "
                    "subscription mentions",
                    source=f"taxonomy edge {row['narrower']!r} -> "
                    f"{row['broader']!r}",
                )

    for row in db.query_all(
        "SELECT map_id, source_property, target_property "
        "FROM semantic_mappings ORDER BY map_id"
    ):
        for prop in (row["source_property"], row["target_property"]):
            if prop not in properties:
                report.add(
                    Severity.WARNING,
                    "MDV070",
                    f"mapping {int(row['map_id'])} references property "
                    f"{prop!r}, which no schema, rule or document uses",
                    source=f"mapping {int(row['map_id'])}",
                )


def _check_closure(db: Database, report: AnalysisReport) -> None:
    """The stored closure must equal the naive one and be acyclic."""
    parents: dict[str, set[str]] = {}
    for row in db.query_all(
        "SELECT narrower, broader FROM semantic_taxonomy_edges"
    ):
        parents.setdefault(row["narrower"], set()).add(row["broader"])

    expected: set[tuple[str, str]] = set()
    cyclic: set[str] = set()
    for start in parents:
        seen: set[str] = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for parent in parents.get(node, ()):
                if parent == start:
                    cyclic.add(start)
                    continue
                if parent not in seen:
                    seen.add(parent)
                    expected.add((parent, start))
                    frontier.append(parent)
    for concept in sorted(cyclic):
        report.add(
            Severity.ERROR,
            "MDV071",
            f"taxonomy edges form a cycle through {concept!r} — the "
            "closure is unsound and expansion would not terminate",
            hint="delete one edge of the cycle and re-register the rules",
            source="semantic_taxonomy_edges",
        )

    stored = {
        (row["ancestor"], row["descendant"])
        for row in db.query_all(
            "SELECT ancestor, descendant FROM semantic_taxonomy_closure"
        )
    }
    for ancestor, descendant in sorted(expected - stored):
        report.add(
            Severity.ERROR,
            "MDV071",
            f"closure is missing the entailed pair "
            f"{ancestor!r} -> {descendant!r}",
            hint="rebuild the closure from the edge list",
            source="semantic_taxonomy_closure",
        )
    for ancestor, descendant in sorted(stored - expected):
        report.add(
            Severity.ERROR,
            "MDV071",
            f"closure contains {ancestor!r} -> {descendant!r}, which "
            "no edge path entails",
            hint="rebuild the closure from the edge list",
            source="semantic_taxonomy_closure",
        )


def _check_mappings(
    db: Database, schema: Schema | None, report: AnalysisReport
) -> None:
    mappings = db.query_all(
        "SELECT map_id, source_property, target_property, kind, scale "
        "FROM semantic_mappings ORDER BY map_id"
    )
    for row in mappings:
        map_id = int(row["map_id"])
        label = (
            f"mapping {map_id} ({row['source_property']!r} -> "
            f"{row['target_property']!r})"
        )
        if row["kind"] == "affine" and float(row["scale"]) == 0.0:
            report.add(
                Severity.ERROR,
                "MDV072",
                f"{label} has scale 0 — it is not invertible, "
                "subscribed constants cannot be pushed through it",
                source=label,
            )
        if row["kind"] == "enum":
            duplicates = db.query_all(
                "SELECT source_value, COUNT(DISTINCT target_value) AS n "
                "FROM semantic_mapping_values WHERE map_id = ? "
                "GROUP BY source_value HAVING n > 1 ORDER BY source_value",
                (map_id,),
            )
            for dup in duplicates:
                report.add(
                    Severity.ERROR,
                    "MDV072",
                    f"{label} maps source value {dup['source_value']!r} "
                    f"to {int(dup['n'])} different targets — it is not "
                    "a function",
                    source=label,
                )
        if schema is None:
            continue
        source_kinds = _property_kinds(schema, row["source_property"])
        target_kinds = _property_kinds(schema, row["target_property"])
        numeric = (PropertyKind.INTEGER, PropertyKind.FLOAT)
        if row["kind"] == "affine":
            for prop, kinds in (
                (row["source_property"], source_kinds),
                (row["target_property"], target_kinds),
            ):
                if kinds and not any(kind in numeric for kind in kinds):
                    report.add(
                        Severity.ERROR,
                        "MDV073",
                        f"{label} is affine but {prop!r} is "
                        "non-numeric in every schema class",
                        source=label,
                    )
        else:
            for prop, kinds in (
                (row["source_property"], source_kinds),
                (row["target_property"], target_kinds),
            ):
                if kinds and all(kind in numeric for kind in kinds):
                    report.add(
                        Severity.WARNING,
                        "MDV073",
                        f"{label} is an enum mapping but {prop!r} is "
                        "numeric in every schema class — enum variants "
                        "only expand non-numeric equality atoms",
                        source=label,
                    )


def _is_integral(text: str) -> bool:
    try:
        return float(text) == int(float(text))
    except (ValueError, OverflowError):
        return False


def _check_mapped_satisfiability(
    db: Database, schema: Schema | None, report: AnalysisReport
) -> None:
    """Expanded ``=`` rows over integer properties need integral values.

    Equality triggering compares raw value strings; publishers of an
    INTEGER-kind property serialize whole numbers.  A semantic variant
    whose constant has a fractional part (an affine mapping with a
    non-integral inverse image, say ``priceCents -> price`` queried at
    an odd cent amount) therefore matches nothing — silently.
    """
    if schema is None:
        return
    rows = db.query_all(
        f"SELECT rule_id, class, property, value "
        f"FROM {COMPARISON_TABLES['=']} WHERE semantic = 1 "
        f"ORDER BY rule_id, class, property, value"
    )
    for row in rows:
        kinds = _property_kinds(schema, row["property"])
        if kinds != {PropertyKind.INTEGER}:
            continue
        if not _is_integral(row["value"]):
            report.add(
                Severity.WARNING,
                "MDV074",
                f"rule {int(row['rule_id'])} expands to "
                f"{row['property']} = {row['value']!r} on class "
                f"{row['class']!r}, but the property is INTEGER-typed — "
                "no publishable value can ever equal it",
                hint="the variant is harmless but dead; check the "
                "mapping's scale/offset if a match was expected",
                source=f"rule {int(row['rule_id'])}",
            )
