"""Exception hierarchy for the MDV reproduction.

Every error raised by this library derives from :class:`MDVError` so that
applications can catch library failures with a single ``except`` clause
while still being able to distinguish the individual failure modes.

The hierarchy mirrors the subsystems of the library:

- :class:`SchemaError` and friends — RDF schema definition and validation.
- :class:`ParseError` subclasses — RDF/XML documents and the rule/query
  language.
- :class:`RuleError` subclasses — rule normalization and decomposition.
- :class:`StorageError` — the relational storage engine.
- :class:`SubscriptionError`, :class:`PublishError` — the publish &
  subscribe machinery.
- :class:`RepositoryError` — LMR cache and client-facing operations.
- :class:`NetworkError` subclasses — the simulated network substrate:
  unreachable endpoints and messages lost in transit.  All of them are
  *retryable* from the sender's point of view; the reliable delivery
  layer (:mod:`repro.mdv.outbox`) catches exactly this branch of the
  hierarchy when deciding whether to retry.
"""

from __future__ import annotations

__all__ = [
    "MDVError",
    "SchemaError",
    "UnknownClassError",
    "UnknownPropertyError",
    "SchemaValidationError",
    "ParseError",
    "DocumentParseError",
    "RuleSyntaxError",
    "QuerySyntaxError",
    "RuleError",
    "NormalizationError",
    "DecompositionError",
    "RuleAnalysisError",
    "SemanticError",
    "StorageError",
    "CrashError",
    "SubscriptionError",
    "PublishError",
    "RepositoryError",
    "DocumentNotFoundError",
    "DuplicateDocumentError",
    "NetworkError",
    "EndpointDownError",
    "DeliveryError",
    "WireCodecError",
    "FrameError",
    "FrameTooLargeError",
    "RemoteError",
]


class MDVError(Exception):
    """Base class for all errors raised by the MDV library."""


class SchemaError(MDVError):
    """Base class for schema definition and lookup failures."""


class UnknownClassError(SchemaError):
    """A class name was referenced that is not defined in the schema."""

    def __init__(self, class_name: str):
        super().__init__(f"unknown class: {class_name!r}")
        self.class_name = class_name


class UnknownPropertyError(SchemaError):
    """A property was referenced that its class does not define."""

    def __init__(self, class_name: str, property_name: str):
        super().__init__(
            f"class {class_name!r} does not define property {property_name!r}"
        )
        self.class_name = class_name
        self.property_name = property_name


class SchemaValidationError(SchemaError):
    """An RDF document does not conform to the schema it was checked against."""


class ParseError(MDVError):
    """Base class for all parsing failures (documents, rules, queries)."""


class DocumentParseError(ParseError):
    """An RDF/XML document could not be parsed."""


class RuleSyntaxError(ParseError):
    """A subscription rule could not be parsed.

    Carries the character ``position`` at which parsing failed, when known.
    """

    def __init__(self, message: str, position: int | None = None):
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class QuerySyntaxError(RuleSyntaxError):
    """A metadata query could not be parsed.

    The query language shares its grammar with the rule language, hence
    this error is a refinement of :class:`RuleSyntaxError`.
    """


class RuleError(MDVError):
    """Base class for semantic rule-processing failures."""


class NormalizationError(RuleError):
    """A rule could not be normalized (e.g. a path does not type-check)."""


class DecompositionError(RuleError):
    """A normalized rule could not be decomposed into atomic rules."""


class RuleAnalysisError(RuleError):
    """The static analyzer rejected a rule (``analyze="reject"`` policy).

    ``diagnostics`` carries the :class:`repro.analysis.Diagnostic` list
    that caused the rejection, so clients can render precise spans and
    fix hints instead of a flat message.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class SemanticError(RuleError):
    """A semantic-tier construct was rejected (repro.semantics).

    ``code`` names the MDV07x diagnostic that triggered the rejection
    (cyclic taxonomy edge, non-invertible mapping, ...), so callers can
    map the failure onto the analysis catalogue.
    """

    def __init__(self, message: str, code: str):
        super().__init__(message)
        self.code = code


class StorageError(MDVError):
    """A failure in the relational storage engine."""


class CrashError(StorageError):
    """An injected process crash (fault injection, never spontaneous).

    Raised by :class:`~repro.storage.engine.Database` when an armed
    :class:`~repro.storage.durability.CrashPlan` fires at a statement or
    commit boundary.  The open transaction is rolled back before the
    raise — exactly what SQLite's journal guarantees for a real process
    death — so everything above the storage layer observes a machine
    that stopped mid-operation with only committed state surviving.

    ``boundary`` names the crash point (``"statement"`` or ``"commit"``)
    and ``ordinal`` its 1-based position in the plan's counting.
    """

    def __init__(self, boundary: str, ordinal: int):
        super().__init__(
            f"injected crash at {boundary} boundary #{ordinal}; "
            f"open transaction discarded"
        )
        self.boundary = boundary
        self.ordinal = ordinal


class SubscriptionError(MDVError):
    """A subscription could not be registered or cancelled."""


class PublishError(MDVError):
    """A failure while publishing notifications to subscribers."""


class RepositoryError(MDVError):
    """A failure in a Local Metadata Repository or MDV client operation."""


class DocumentNotFoundError(RepositoryError):
    """The referenced RDF document is not registered."""

    def __init__(self, document_uri: str):
        super().__init__(f"document not registered: {document_uri!r}")
        self.document_uri = document_uri


class DuplicateDocumentError(RepositoryError):
    """An RDF document with the same URI is already registered.

    Raised only by APIs that explicitly forbid re-registration; the normal
    :meth:`~repro.mdv.provider.MetadataProvider.register_document` path
    treats re-registration as an update (paper, Section 2.2).
    """

    def __init__(self, document_uri: str):
        super().__init__(f"document already registered: {document_uri!r}")
        self.document_uri = document_uri


class NetworkError(MDVError):
    """A failure in the (simulated) network substrate.

    The whole branch is retryable: a sender that sees a
    :class:`NetworkError` learned nothing about whether the receiver
    processed the message, so at-least-once delivery retries it.
    """


class EndpointDownError(NetworkError):
    """The destination endpoint is unknown, crashed, or partitioned away.

    ``endpoint`` names the unreachable destination.
    """

    def __init__(self, endpoint: str, reason: str = "unreachable"):
        super().__init__(f"endpoint {endpoint!r} is {reason}")
        self.endpoint = endpoint
        self.reason = reason


class DeliveryError(NetworkError):
    """A message was lost in transit (dropped or errored by a link)."""


class WireCodecError(MDVError):
    """A payload could not be converted to or from the wire encoding.

    Deliberately *not* a :class:`NetworkError`: an unencodable payload
    (or a corrupt wire form) will not become encodable by retrying, so
    the reliable-delivery layer must treat it as poison, not as a
    transient transport failure.
    """


class FrameError(MDVError):
    """A length-prefixed frame was malformed (bad JSON, bad shape).

    The offending frame's bytes are consumed before this is raised, so
    a server can answer with an error frame and keep reading the same
    connection.  Like :class:`WireCodecError` this is not retryable and
    therefore not a :class:`NetworkError`.
    """


class FrameTooLargeError(FrameError):
    """A frame header declared a length above the protocol maximum.

    Unlike a garbled frame body, an oversized (or garbage) length
    prefix cannot be skipped reliably — the connection has lost frame
    sync and must be closed after the error response.
    """


class RemoteError(MDVError):
    """A request was rejected by the remote endpoint.

    Raised by the socket transport when the peer answered with an error
    frame whose exception type could not be reconstructed locally (or
    reconstructs to a retryable :class:`NetworkError`, which would lie:
    the request *was* processed and rejected).  ``remote_type`` names
    the exception class the remote side raised.
    """

    def __init__(self, remote_type: str, message: str):
        super().__init__(f"{remote_type}: {message}")
        self.remote_type = remote_type
        self.remote_message = message
