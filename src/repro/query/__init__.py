"""MDV's declarative query language.

The paper keeps the query language brief ("quite similar to the rule
language", Section 2.2); here it is the rule grammar without the
``register`` clause.  Two evaluation paths exist:

- :func:`~repro.query.evaluator.evaluate_query` — in-memory evaluation
  over resources, used by Local Metadata Repositories on their cache;
- :func:`~repro.query.sql.run_query_sql` — translation into SQL join
  queries over the ``filter_data`` store, used when browsing a Metadata
  Provider directly.
"""

from repro.query.evaluator import compare_values, evaluate_normalized, evaluate_query
from repro.query.sql import run_query_sql, sql_string_literal, translate_normalized

__all__ = [
    "compare_values",
    "evaluate_normalized",
    "evaluate_query",
    "run_query_sql",
    "sql_string_literal",
    "translate_normalized",
]
