"""Translation of metadata queries into SQL join queries.

The paper (Section 2.2): *"Search requests are translated into SQL join
queries.  This translation is not one-to-one as MDV hides the details of
how the metadata is stored."*  This module performs that translation
against the ``filter_data`` atom store: the query's join tree is rooted
at the result variable and each child variable becomes a correlated
``EXISTS`` subquery over the child's identity atom plus the linking
property atoms.

Only tree-shaped join graphs are supported (the shape the language's
path expressions produce); cyclic graphs raise
:class:`~repro.errors.QuerySyntaxError`.

Constants are inlined as escaped SQL literals rather than bound
parameters: every inlined value has passed the rule tokenizer (property
names and class names are ``[A-Za-z0-9_]+`` identifiers) or is rendered
through :func:`sql_string_literal`, so the generated SQL is closed under
the language's value domain.

``contains`` predicates follow the canonical semantics of
:mod:`repro.text.ngrams` — exact, case-sensitive substring over the
stored text.  Their needles are therefore *always* rendered as quoted
string literals, even when the literal looks numeric: ``instr`` with a
bare numeric operand compares against SQLite's shortest decimal
rendering of the number, so ``contains 010`` would silently probe for
``'10'``.  With ``contains_index="trigram"``, a ``contains`` predicate
is compiled to a candidate-probe over the *distinct* values of the
property (computed once per query, not once per row) followed by the
same ``instr`` verification — identical results, and the per-row work
collapses onto the property's value dictionary.
"""

from __future__ import annotations

from repro.errors import QuerySyntaxError
from repro.rdf.model import URIRef
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rdf.schema import Schema
from repro.rules.ast import Query, flip_operator
from repro.rules.normalize import (
    ConstantPredicate,
    JoinPredicate,
    NormalizedRule,
    normalize_rule,
)
from repro.storage.engine import Database
from repro.text.index import CONTAINS_INDEX_MODES
from repro.text.ngrams import contains_sql_condition

__all__ = ["translate_normalized", "run_query_sql", "sql_string_literal"]

_SQL_OPS = {"=", "!=", "<", "<=", ">", ">="}


def sql_string_literal(value: str) -> str:
    """Render ``value`` as a SQL string literal (quote doubling)."""
    return "'" + value.replace("'", "''") + "'"


def _compare(operator: str, numeric: bool, left: str, right: str) -> str:
    if operator == "contains":
        return contains_sql_condition(left, right)
    if operator not in _SQL_OPS:
        raise QuerySyntaxError(f"unknown operator {operator!r}")
    if numeric:
        left = f"CAST({left} AS REAL)"
        right = f"CAST({right} AS REAL)"
    return f"{left} {operator} {right}"


class _Translator:
    """Builds one SELECT per normalized conjunct."""

    def __init__(
        self,
        normalized: NormalizedRule,
        schema: Schema,
        contains_index: str = "scan",
    ):
        if contains_index not in CONTAINS_INDEX_MODES:
            raise ValueError(
                f"contains_index must be one of {CONTAINS_INDEX_MODES}, got "
                f"{contains_index!r}"
            )
        self.normalized = normalized
        self.schema = schema
        self.contains_index = contains_index
        self._alias_counter = 0

    def _alias(self, prefix: str) -> str:
        self._alias_counter += 1
        return f"{prefix}{self._alias_counter}"

    def translate(self) -> str:
        register = self.normalized.register
        tree = self._build_tree(register)
        subject = self._alias("s")
        conditions = self._variable_conditions(register, subject, tree)
        return (
            f"SELECT DISTINCT {subject}.uri_reference "
            f"FROM filter_data {subject} "
            f"WHERE {subject}.property = '{RDF_SUBJECT}'"
            + "".join(f" AND {c}" for c in conditions)
            + f" ORDER BY {subject}.uri_reference"
        )

    # -- join tree ---------------------------------------------------------
    def _build_tree(self, root: str) -> dict[str, list[JoinPredicate]]:
        """Orient the join graph away from the root variable."""
        tree: dict[str, list[JoinPredicate]] = {
            v: [] for v in self.normalized.variables
        }
        visited = {root}
        remaining = [j for j in self.normalized.joins if not j.is_self_join]
        frontier = [root]
        while frontier:
            current = frontier.pop(0)
            still_remaining = []
            for predicate in remaining:
                left_var, right_var = predicate.variables()
                if current == left_var and right_var not in visited:
                    tree[current].append(predicate)
                    visited.add(right_var)
                    frontier.append(right_var)
                elif current == right_var and left_var not in visited:
                    tree[current].append(predicate)
                    visited.add(left_var)
                    frontier.append(left_var)
                elif current in (left_var, right_var):
                    raise QuerySyntaxError(
                        "cyclic join graphs cannot be translated to SQL; "
                        "restructure the query"
                    )
                else:
                    still_remaining.append(predicate)
            remaining = still_remaining
        if remaining:
            raise QuerySyntaxError(
                "query contains joins not connected to the result variable"
            )
        return tree

    # -- conditions ----------------------------------------------------------
    def _variable_conditions(
        self,
        variable: str,
        subject_alias: str,
        tree: dict[str, list[JoinPredicate]],
    ) -> list[str]:
        conditions = [self._class_condition(variable, subject_alias)]
        for predicate in self.normalized.constants:
            if predicate.variable == variable:
                conditions.append(
                    self._constant_condition(predicate, subject_alias)
                )
        for predicate in self.normalized.joins:
            if predicate.is_self_join and predicate.left_var == variable:
                conditions.append(
                    self._self_join_condition(predicate, subject_alias)
                )
        for predicate in tree[variable]:
            conditions.append(
                self._child_condition(variable, subject_alias, predicate, tree)
            )
        return conditions

    def _class_condition(self, variable: str, alias: str) -> str:
        class_name = self.normalized.variable_class(variable)
        if self.schema.has_class(class_name):
            extension = sorted(self.schema.extension_classes(class_name))
        else:
            extension = [class_name]
        rendered = ",".join(sql_string_literal(c) for c in extension)
        return f"{alias}.class IN ({rendered})"

    def _constant_condition(
        self, predicate: ConstantPredicate, subject_alias: str
    ) -> str:
        # contains needles are always quoted, whatever the literal looks
        # like: values compare as text, and an unquoted numeric operand
        # would make instr() probe for the number's decimal re-rendering
        # instead of the written characters.
        if predicate.operator == "contains":
            constant = sql_string_literal(predicate.value.sql_value())
        elif predicate.numeric:
            constant = predicate.value.sql_value()
        else:
            constant = sql_string_literal(predicate.value.sql_value())
        if predicate.prop == RDF_SUBJECT:
            return _compare(
                predicate.operator,
                False,
                f"{subject_alias}.uri_reference",
                constant,
            )
        if (
            predicate.operator == "contains"
            and self.contains_index == "trigram"
        ):
            return self._contains_candidate_condition(
                predicate, subject_alias, constant
            )
        alias = self._alias("p")
        comparison = _compare(
            predicate.operator, predicate.numeric, f"{alias}.value", constant
        )
        return (
            f"EXISTS (SELECT 1 FROM filter_data {alias} "
            f"WHERE {alias}.uri_reference = {subject_alias}.uri_reference "
            f"AND {alias}.property = {sql_string_literal(predicate.prop)} "
            f"AND {comparison})"
        )

    def _contains_candidate_condition(
        self, predicate: ConstantPredicate, subject_alias: str, constant: str
    ) -> str:
        """Candidate-probe + verify rewrite of a ``contains`` predicate.

        The inner subquery materializes the property's *distinct* value
        dictionary and verifies the substring once per distinct value;
        the outer probe then reduces to a semi-join against the verified
        candidates.  Results are identical to the direct scan — the
        verification is the same :func:`contains_sql_condition` — but
        the ``instr`` work no longer multiplies with row count.
        """
        prop = sql_string_literal(predicate.prop)
        alias = self._alias("p")
        verify = contains_sql_condition("value", constant)
        return (
            f"EXISTS (SELECT 1 FROM filter_data {alias} "
            f"WHERE {alias}.uri_reference = {subject_alias}.uri_reference "
            f"AND {alias}.property = {prop} "
            f"AND {alias}.value IN "
            f"(SELECT value FROM "
            f"(SELECT DISTINCT value FROM filter_data WHERE property = {prop}) "
            f"WHERE {verify}))"
        )

    def _self_join_condition(
        self, predicate: JoinPredicate, subject_alias: str
    ) -> str:
        left = self._alias("p")
        right = self._alias("p")
        comparison = _compare(
            predicate.operator,
            predicate.numeric,
            f"{left}.value",
            f"{right}.value",
        )
        return (
            f"EXISTS (SELECT 1 FROM filter_data {left}, filter_data {right} "
            f"WHERE {left}.uri_reference = {subject_alias}.uri_reference "
            f"AND {right}.uri_reference = {subject_alias}.uri_reference "
            f"AND {left}.property = {sql_string_literal(str(predicate.left_prop))} "
            f"AND {right}.property = {sql_string_literal(str(predicate.right_prop))} "
            f"AND {comparison})"
        )

    def _child_condition(
        self,
        parent: str,
        parent_alias: str,
        predicate: JoinPredicate,
        tree: dict[str, list[JoinPredicate]],
    ) -> str:
        left_var, right_var = predicate.variables()
        parent_is_left = parent == left_var
        child = right_var if parent_is_left else left_var
        parent_prop = (
            predicate.left_prop if parent_is_left else predicate.right_prop
        )
        child_prop = (
            predicate.right_prop if parent_is_left else predicate.left_prop
        )
        operator = (
            predicate.operator
            if parent_is_left
            else flip_operator(predicate.operator)
        )

        child_alias = self._alias("s")
        from_tables = [f"filter_data {child_alias}"]
        where = [f"{child_alias}.property = '{RDF_SUBJECT}'"]

        if parent_prop is None:
            parent_value = f"{parent_alias}.uri_reference"
        else:
            alias = self._alias("p")
            from_tables.append(f"filter_data {alias}")
            where.append(
                f"{alias}.uri_reference = {parent_alias}.uri_reference"
            )
            where.append(
                f"{alias}.property = {sql_string_literal(parent_prop)}"
            )
            parent_value = f"{alias}.value"

        if child_prop is None:
            child_value = f"{child_alias}.uri_reference"
        else:
            alias = self._alias("p")
            from_tables.append(f"filter_data {alias}")
            where.append(
                f"{alias}.uri_reference = {child_alias}.uri_reference"
            )
            where.append(
                f"{alias}.property = {sql_string_literal(child_prop)}"
            )
            child_value = f"{alias}.value"

        where.append(
            _compare(operator, predicate.numeric, parent_value, child_value)
        )
        where.extend(self._variable_conditions(child, child_alias, tree))
        return (
            "EXISTS (SELECT 1 FROM "
            + ", ".join(from_tables)
            + " WHERE "
            + " AND ".join(where)
            + ")"
        )


def translate_normalized(
    normalized: NormalizedRule,
    schema: Schema,
    contains_index: str = "scan",
) -> str:
    """Translate one normalized conjunct into a SQL query string."""
    return _Translator(normalized, schema, contains_index).translate()


def run_query_sql(
    db: Database,
    query: Query,
    schema: Schema,
    contains_index: str = "scan",
) -> list[URIRef]:
    """Run a query against an MDP's ``filter_data`` store.

    Returns the URI references of matching result resources, merged over
    ``or`` branches and sorted.  Queries referencing named rules must be
    expanded with :func:`repro.rules.inline.inline_named_query` first.
    """
    conjuncts = normalize_rule(query.as_rule(), schema)
    uris: set[URIRef] = set()
    for conjunct in conjuncts:
        sql = translate_normalized(conjunct, schema, contains_index)
        for row in db.query_all(sql):
            uris.add(URIRef(row["uri_reference"]))
    return sorted(uris)
