"""In-memory query evaluation over a set of resources.

Local Metadata Repositories evaluate MDV queries against their cache
"using only locally available metadata" (paper, Section 2.2).  The cache
is a plain mapping of URI references to resources, so this evaluator
works directly on :class:`~repro.rdf.model.Resource` objects.

The query language shares the rule grammar; evaluation reuses the rule
normalizer, then runs a constraint-propagation + backtracking join over
the candidate sets:

1. per-variable candidates — instances of the variable's class extension
   filtered by the constant predicates;
2. semi-join reduction to a fixpoint (exact for the acyclic/tree-shaped
   join graphs the language produces, and a safe pre-filter otherwise);
3. backtracking enumeration that records which register-variable
   resources admit a full assignment.

Set-valued properties use ANY semantics throughout, matching the
``FilterData`` representation (one atom per value).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.rdf.model import Literal, Resource, URIRef, Value
from repro.rdf.namespaces import RDF_SUBJECT
from repro.rdf.schema import Schema
from repro.rules.ast import Query
from repro.rules.normalize import (
    ConstantPredicate,
    JoinPredicate,
    NormalizedRule,
    normalize_rule,
)
from repro.text.ngrams import contains_match

__all__ = ["evaluate_query", "evaluate_normalized", "compare_values"]


def compare_values(left: str, operator: str, right: str, numeric: bool) -> bool:
    """Compare two canonical (string) values under a rule operator.

    ``contains`` delegates to the canonical substring semantics of
    :mod:`repro.text.ngrams`, shared with the SQL paths —
    ``tests/query/test_contains_crosspath.py`` asserts the agreement.
    """
    if operator == "contains":
        return contains_match(left, right)
    if numeric:
        try:
            left_num = float(left)
            right_num = float(right)
        except ValueError:
            return False
        if operator == "=":
            return left_num == right_num
        if operator == "!=":
            return left_num != right_num
        if operator == "<":
            return left_num < right_num
        if operator == "<=":
            return left_num <= right_num
        if operator == ">":
            return left_num > right_num
        if operator == ">=":
            return left_num >= right_num
        raise ValueError(f"unknown operator {operator!r}")
    if operator == "=":
        return left == right
    if operator == "!=":
        return left != right
    if operator in ("<", "<=", ">", ">="):
        # Ordering operators are numeric-only in the language; string
        # comparison here would hide normalization bugs.
        raise ValueError(f"operator {operator!r} requires numeric operands")
    raise ValueError(f"unknown operator {operator!r}")


def _property_values(resource: Resource, prop: str | None) -> list[str]:
    """The canonical values a predicate side evaluates to (ANY semantics)."""
    if prop is None or prop == RDF_SUBJECT:
        return [str(resource.uri)]
    values: list[Value] = resource.get(prop)
    rendered: list[str] = []
    for value in values:
        if isinstance(value, Literal):
            rendered.append(value.sql_value())
        else:
            rendered.append(str(value))
    return rendered


def _satisfies_constant(resource: Resource, predicate: ConstantPredicate) -> bool:
    constant = predicate.value.sql_value()
    return any(
        compare_values(value, predicate.operator, constant, predicate.numeric)
        for value in _property_values(resource, predicate.prop)
    )


def _join_holds(
    left: Resource, right: Resource, predicate: JoinPredicate
) -> bool:
    left_values = _property_values(left, predicate.left_prop)
    right_values = _property_values(right, predicate.right_prop)
    return any(
        compare_values(lv, predicate.operator, rv, predicate.numeric)
        for lv in left_values
        for rv in right_values
    )


def _class_candidates(
    resources: Iterable[Resource], schema: Schema, class_name: str
) -> list[Resource]:
    if schema.has_class(class_name):
        extension = set(schema.extension_classes(class_name))
    else:
        extension = {class_name}
    return [r for r in resources if r.rdf_class in extension]


def evaluate_normalized(
    normalized: NormalizedRule,
    resources: Mapping[URIRef, Resource] | Iterable[Resource],
    schema: Schema,
) -> list[Resource]:
    """Evaluate one normalized conjunct; returns matching register resources."""
    if isinstance(resources, Mapping):
        pool: list[Resource] = list(resources.values())
    else:
        pool = list(resources)

    candidates: dict[str, list[Resource]] = {}
    for variable, class_name in normalized.variables.items():
        candidates[variable] = _class_candidates(pool, schema, class_name)
    for predicate in normalized.constants:
        candidates[predicate.variable] = [
            r
            for r in candidates[predicate.variable]
            if _satisfies_constant(r, predicate)
        ]

    joins = [j for j in normalized.joins if not j.is_self_join]
    for predicate in normalized.joins:
        if predicate.is_self_join:
            candidates[predicate.left_var] = [
                r
                for r in candidates[predicate.left_var]
                if _join_holds(r, r, predicate)
            ]

    _semi_join_reduce(candidates, joins)
    register = normalized.register
    if not joins:
        return sorted(candidates[register], key=lambda r: r.uri)
    matching = _enumerate_register(candidates, joins, register)
    return sorted(matching, key=lambda r: r.uri)


def _semi_join_reduce(
    candidates: dict[str, list[Resource]], joins: list[JoinPredicate]
) -> None:
    """Shrink candidate sets until every join is pairwise consistent."""
    changed = True
    while changed:
        changed = False
        for predicate in joins:
            left_var, right_var = predicate.variables()
            left_set = candidates[left_var]
            right_set = candidates[right_var]
            kept_left = [
                l
                for l in left_set
                if any(_join_holds(l, r, predicate) for r in right_set)
            ]
            if len(kept_left) != len(left_set):
                candidates[left_var] = kept_left
                changed = True
            kept_right = [
                r
                for r in right_set
                if any(_join_holds(l, r, predicate) for l in kept_left)
            ]
            if len(kept_right) != len(right_set):
                candidates[right_var] = kept_right
                changed = True


def _enumerate_register(
    candidates: dict[str, list[Resource]],
    joins: list[JoinPredicate],
    register: str,
) -> list[Resource]:
    """Backtracking join; collects register resources with full assignments."""
    variables = sorted(
        candidates, key=lambda v: (v != register, len(candidates[v]))
    )
    order = _connectivity_order(variables, joins, register)
    matching: list[Resource] = []

    def consistent(assignment: dict[str, Resource]) -> bool:
        for predicate in joins:
            left_var, right_var = predicate.variables()
            if left_var in assignment and right_var in assignment:
                if not _join_holds(
                    assignment[left_var], assignment[right_var], predicate
                ):
                    return False
        return True

    def search(index: int, assignment: dict[str, Resource]) -> bool:
        if index == len(order):
            return True
        variable = order[index]
        for resource in candidates[variable]:
            assignment[variable] = resource
            if consistent(assignment) and search(index + 1, assignment):
                del assignment[variable]
                return True
            del assignment[variable]
        return False

    for resource in candidates[register]:
        if search(1, {register: resource}):
            matching.append(resource)
    return matching


def _connectivity_order(
    variables: list[str], joins: list[JoinPredicate], register: str
) -> list[str]:
    """Variable order starting at the register variable, following joins."""
    order = [register]
    seen = {register}
    frontier = [register]
    while frontier:
        current = frontier.pop(0)
        for predicate in joins:
            left_var, right_var = predicate.variables()
            for neighbor in (left_var, right_var):
                if (
                    neighbor not in seen
                    and current in (left_var, right_var)
                ):
                    seen.add(neighbor)
                    order.append(neighbor)
                    frontier.append(neighbor)
    for variable in variables:
        if variable not in seen:
            seen.add(variable)
            order.append(variable)
    return order


def evaluate_query(
    query: Query,
    resources: Mapping[URIRef, Resource] | Iterable[Resource],
    schema: Schema,
) -> list[Resource]:
    """Evaluate a parsed query; ``or`` branches union their results.

    Queries referencing named rules as extensions must be expanded with
    :func:`repro.rules.inline.inline_named_query` first — resolving only
    the extension's *class* would silently drop the named rule's
    predicates.
    """
    normalized = normalize_rule(query.as_rule(), schema)
    merged: dict[URIRef, Resource] = {}
    for conjunct in normalized:
        for resource in evaluate_normalized(conjunct, resources, schema):
            merged[resource.uri] = resource
    return sorted(merged.values(), key=lambda r: r.uri)
