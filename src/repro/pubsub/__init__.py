"""Publish & subscribe plumbing above the filter engine.

Routes :class:`~repro.filter.results.PublishOutcome` objects to
per-subscriber :class:`~repro.pubsub.notifications.NotificationBatch`
objects, attaching strong-reference closures (paper, Section 2.4).
"""

from repro.pubsub.closure import strong_closure, strong_targets
from repro.pubsub.notifications import (
    DeleteNotification,
    MatchNotification,
    Notification,
    NotificationBatch,
    ResourcePayload,
    UnmatchNotification,
)
from repro.pubsub.publisher import Publisher

__all__ = [
    "DeleteNotification",
    "MatchNotification",
    "Notification",
    "NotificationBatch",
    "Publisher",
    "ResourcePayload",
    "UnmatchNotification",
    "strong_closure",
    "strong_targets",
]
