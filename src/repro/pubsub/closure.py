"""Strong-reference closure computation (paper, Section 2.4).

MDV introduces *strong* and *weak* references to solve the dangling
reference problem: following every reference could transmit the whole
database, following none leaves dangling references.  Resources
referenced through strong properties are always transmitted with the
referencing resource; weak references are never followed.

:func:`strong_closure` computes the transitive closure over strong
reference properties, cycle-safe (strong cycles are legal schema-wise;
the closure just stops when it revisits a resource).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.rdf.model import Resource, URIRef
from repro.rdf.schema import Schema

__all__ = ["strong_closure", "strong_targets"]

#: Resolves a URI reference to the resource's current content, or None
#: when the reference dangles (target unknown or deleted).
ResourceLookup = Callable[[URIRef], Resource | None]


def strong_targets(resource: Resource, schema: Schema) -> list[URIRef]:
    """The URI references this resource strongly references (direct)."""
    if not schema.has_class(resource.rdf_class):
        return []
    strong_props = {
        prop.name for prop in schema.strong_reference_properties(resource.rdf_class)
    }
    targets: list[URIRef] = []
    for name, target in resource.references():
        if name in strong_props:
            targets.append(target)
    return targets


def strong_closure(
    resource: Resource, schema: Schema, lookup: ResourceLookup
) -> list[Resource]:
    """All resources transitively reachable over strong references.

    The starting resource itself is *not* included.  Dangling strong
    references (lookup returns ``None``) are skipped — the receiving
    side's garbage collector deals with missing children.  Traversal
    order is breadth-first and deterministic.
    """
    closure: list[Resource] = []
    seen: set[URIRef] = {resource.uri}
    frontier: list[URIRef] = strong_targets(resource, schema)
    while frontier:
        target = frontier.pop(0)
        if target in seen:
            continue
        seen.add(target)
        content = lookup(target)
        if content is None:
            continue
        closure.append(content)
        frontier.extend(strong_targets(content, schema))
    return closure
