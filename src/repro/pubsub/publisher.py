"""Turning filter outcomes into per-subscriber notification batches.

After the filter terminates, "all resources produced by end rules are
transmitted to the appropriate LMRs" (paper, Section 3.4).  The
:class:`Publisher` performs the routing: it expands each end rule's
matches/unmatches to the subscriptions registered on it, attaches
resource content plus strong-reference closure to match notifications,
and appends delete notifications for removed resources.
"""

from __future__ import annotations

from repro.filter.results import PublishOutcome
from repro.pubsub.closure import ResourceLookup, strong_closure
from repro.pubsub.notifications import (
    DeleteNotification,
    MatchNotification,
    NotificationBatch,
    ResourcePayload,
    UnmatchNotification,
)
from repro.rdf.model import Resource, URIRef
from repro.rdf.schema import Schema
from repro.rules.registry import RuleRegistry

__all__ = ["Publisher"]


class Publisher:
    """Routes one :class:`PublishOutcome` to subscriber batches."""

    def __init__(self, schema: Schema, registry: RuleRegistry, lookup: ResourceLookup):
        self._schema = schema
        self._registry = registry
        self._lookup = lookup
        #: Total notifications produced (diagnostics / benchmarks).
        self.notifications_sent = 0

    def build_payload(self, resource: Resource) -> ResourcePayload:
        """Content plus strong closure, deep-copied for transmission."""
        closure = strong_closure(resource, self._schema, self._lookup)
        return ResourcePayload(
            resource=resource.copy(),
            strong_closure=[child.copy() for child in closure],
        )

    def batches_for(self, outcome: PublishOutcome) -> list[NotificationBatch]:
        """One batch per subscriber that has anything to hear about."""
        touched_rules = set(outcome.matched) | set(outcome.unmatched)
        subscriptions = self._registry.subscriptions_for(touched_rules)
        batches: dict[str, NotificationBatch] = {}

        def batch(subscriber: str) -> NotificationBatch:
            if subscriber not in batches:
                batches[subscriber] = NotificationBatch(subscriber)
            return batches[subscriber]

        payload_cache: dict[URIRef, ResourcePayload] = {}
        for subscription in subscriptions:
            if subscription.subscriber.startswith("~named~"):
                # Named rules are building blocks, not delivery targets.
                continue
            for uri in sorted(outcome.matched.get(subscription.end_rule, ())):
                resource = self._lookup(uri)
                if resource is None:
                    continue
                if uri not in payload_cache:
                    payload_cache[uri] = self.build_payload(resource)
                batch(subscription.subscriber).notifications.append(
                    MatchNotification(
                        subscription.sub_id,
                        subscription.rule_text,
                        payload_cache[uri],
                    )
                )
            for uri in sorted(outcome.unmatched.get(subscription.end_rule, ())):
                batch(subscription.subscriber).notifications.append(
                    UnmatchNotification(
                        subscription.sub_id, subscription.rule_text, uri
                    )
                )

        if outcome.deleted:
            # Deletions are broadcast: any LMR may hold a copy through a
            # strong reference even without a matching rule (Section 2.4).
            subscribers = {
                s.subscriber
                for s in self._registry.subscriptions_for(
                    self._registry.end_rule_ids()
                )
                if not s.subscriber.startswith("~named~")
            }
            for subscriber in sorted(subscribers):
                for uri in sorted(outcome.deleted):
                    batch(subscriber).notifications.append(
                        DeleteNotification(uri)
                    )

        result = [batches[name] for name in sorted(batches)]
        self.notifications_sent += sum(len(b) for b in result)
        return result

    def initial_batch(
        self, subscriber: str, sub_id: int, rule_text: str, matches: list[URIRef]
    ) -> NotificationBatch:
        """The batch filling a brand-new subscription with current matches."""
        notifications = []
        for uri in sorted(matches):
            resource = self._lookup(uri)
            if resource is None:
                continue
            notifications.append(
                MatchNotification(sub_id, rule_text, self.build_payload(resource))
            )
        self.notifications_sent += len(notifications)
        return NotificationBatch(subscriber, notifications)
