"""Notification message types flowing from MDPs to LMRs.

The filter's outcome is translated into three kinds of notifications:

- :class:`MatchNotification` — a resource (newly or still) matches a
  subscription; carries the resource content plus the transitive closure
  of *strongly referenced* resources, which "are always transmitted
  together with the referencing resource" (paper, Section 2.4).
- :class:`UnmatchNotification` — a resource no longer matches a
  subscription (a *true candidate* of Section 3.5); the LMR evicts it
  once no other subscribed rule matches it.
- :class:`DeleteNotification` — the resource was removed from the store
  entirely; broadcast so LMRs can drop strong-reference copies.

Resource payloads are deep copies: the simulated network must not alias
provider-side state into LMR caches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rdf.model import Resource, URIRef

__all__ = [
    "ResourcePayload",
    "MatchNotification",
    "UnmatchNotification",
    "DeleteNotification",
    "Notification",
    "NotificationBatch",
]


@dataclass
class ResourcePayload:
    """A resource's content plus its strong-reference closure.

    ``strong_closure`` lists the resources reachable over strong
    reference properties, each paired with nothing else — the receiving
    cache reconstructs parent/child accounting from the resources'
    reference properties and the schema.
    """

    resource: Resource
    strong_closure: list[Resource] = field(default_factory=list)

    def all_resources(self) -> list[Resource]:
        return [self.resource, *self.strong_closure]

    def approximate_size(self) -> int:
        """A crude wire-size estimate used by the network simulator."""
        total = 0
        for resource in self.all_resources():
            total += len(str(resource.uri)) + len(resource.rdf_class)
            for name in resource.property_names():
                for value in resource.get(name):
                    total += len(name) + len(str(value))
        return total


@dataclass
class MatchNotification:
    """``resource`` matches the subscription ``sub_id``."""

    sub_id: int
    rule_text: str
    payload: ResourcePayload

    kind = "match"

    @property
    def uri(self) -> URIRef:
        return self.payload.resource.uri


@dataclass
class UnmatchNotification:
    """``uri`` no longer matches the subscription ``sub_id``."""

    sub_id: int
    rule_text: str
    uri: URIRef

    kind = "unmatch"


@dataclass
class DeleteNotification:
    """``uri`` was deleted from the metadata store."""

    uri: URIRef

    kind = "delete"


Notification = MatchNotification | UnmatchNotification | DeleteNotification


@dataclass
class NotificationBatch:
    """All notifications one publish event produces for one subscriber.

    ``source`` and ``seq`` are the reliable-delivery metadata stamped by
    the sending MDP's outbox (:mod:`repro.mdv.outbox`): delivery is
    at-least-once, and receivers apply each ``(source, seq)`` pair
    exactly once, acknowledging with :meth:`ack`.  Both stay ``None``
    for directly connected subscribers, which cannot see duplicates.
    """

    subscriber: str
    notifications: list[Notification] = field(default_factory=list)
    #: Name of the sending MDP (reliable delivery only).
    source: str | None = None
    #: Monotonic per-(source, subscriber) sequence number.
    seq: int | None = None

    def __len__(self) -> int:
        return len(self.notifications)

    def __iter__(self):
        return iter(self.notifications)

    def ack(self, duplicate: bool = False) -> dict:
        """The receiver's acknowledgement for this batch."""
        return {"ack": self.seq, "source": self.source, "duplicate": duplicate}

    def approximate_size(self) -> int:
        total = 0
        for notification in self.notifications:
            if isinstance(notification, MatchNotification):
                total += notification.payload.approximate_size()
            else:
                total += len(str(notification.uri))
        return total
