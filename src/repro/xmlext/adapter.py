"""Generic XML over MDV — the paper's future-work direction.

The paper notes its publish & subscribe algorithm "is also applicable
to, e.g., XML and the XQuery language" (Section 1) and names XML
support as future work (Section 6).  This module delivers the data-side
half of that claim: arbitrary (schema-less) XML documents are mapped
onto MDV's resource model so the unchanged filter machinery — rule
decomposition, triggering indexes, rule groups — subscribes to and
publishes XML content.

Mapping (``xml_to_document``):

- every element carrying an ``id`` attribute, plus the direct children
  of the document element, becomes a **resource**; its class is the
  element tag;
- a child element with neither element children nor an ``id`` becomes a
  **literal property** (one value per occurrence — repeated tags give
  set-valued properties);
- a nested resource is hoisted and replaced by a **reference property**
  named after the enclosing tag;
- ``ref="uri"`` attributes become reference properties; other XML
  attributes become literal properties;
- resources without an ``id`` get deterministic synthetic identifiers
  (``tag-N`` in document order).

``infer_schema`` scans a corpus and produces the matching
:class:`~repro.rdf.schema.Schema`: property kinds are the widest type
observed (INTEGER ⊂ FLOAT ⊂ STRING), multiplicity comes from repeated
occurrences, nested-element references are **strong** (subtrees travel
with their parent, preserving XML's containment on the wire) while
``ref`` attributes are **weak**.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import DocumentParseError
from repro.rdf.model import Document, Resource, URIRef, make_uri_reference
from repro.rdf.parser import parse_literal_text
from repro.rdf.schema import PropertyDef, PropertyKind, RefStrength, Schema

__all__ = ["xml_to_document", "infer_schema", "XmlCorpus"]

#: The attribute holding a resource's local identifier.
ID_ATTR = "id"
#: The attribute holding an explicit (weak) reference.
REF_ATTR = "ref"


def _parse_root(xml_text: str) -> ET.Element:
    try:
        return ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DocumentParseError(f"malformed XML: {exc}") from exc


def _is_resource(element: ET.Element, is_top_level: bool) -> bool:
    if element.get(ID_ATTR) is not None:
        return True
    if is_top_level:
        return True
    return len(element) > 0


class _Converter:
    def __init__(self, document: Document):
        self.document = document
        self._synthetic_counter = 0
        #: (class, property) pairs that came from ``ref`` attributes —
        #: weak references by construction (no containment).
        self.weak_pairs: set[tuple[str, str]] = set()

    def _uri_for(self, element: ET.Element) -> URIRef:
        local = element.get(ID_ATTR)
        if local is None:
            self._synthetic_counter += 1
            local = f"{element.tag}-{self._synthetic_counter}"
        return make_uri_reference(self.document.uri, local)

    def convert_resource(self, element: ET.Element) -> URIRef:
        uri = self._uri_for(element)
        if uri in self.document.resources:
            raise DocumentParseError(
                f"duplicate resource identifier {uri.local_name!r}"
            )
        resource = Resource(uri, element.tag)
        for name, value in element.attrib.items():
            if name == ID_ATTR:
                continue
            if name == REF_ATTR:
                resource.add(REF_ATTR, URIRef(value))
                self.weak_pairs.add((element.tag, REF_ATTR))
            else:
                resource.add(name, parse_literal_text(value))
        for child in element:
            if _is_resource(child, is_top_level=False):
                target = self.convert_resource(child)
                resource.add(child.tag, target)
            else:
                text = (child.text or "").strip()
                if child.get(REF_ATTR) is not None:
                    resource.add(child.tag, URIRef(str(child.get(REF_ATTR))))
                    self.weak_pairs.add((element.tag, child.tag))
                else:
                    resource.add(child.tag, parse_literal_text(text))
        self.document.resources[uri] = resource
        return uri


def xml_to_document(xml_text: str, document_uri: str) -> Document:
    """Map one generic XML document onto MDV resources."""
    root = _parse_root(xml_text)
    document = Document(document_uri)
    converter = _Converter(document)
    for child in root:
        converter.convert_resource(child)
    # Weakness metadata rides along for schema inference (a plain
    # attribute: Document stays a generic container).
    document.xml_weak_pairs = converter.weak_pairs  # type: ignore[attr-defined]
    return document


# ----------------------------------------------------------------------
# Schema inference
# ----------------------------------------------------------------------
@dataclass
class _PropertyObservation:
    kinds: set[str] = field(default_factory=set)
    targets: set[str] = field(default_factory=set)
    multivalued: bool = False
    nested: bool = False


@dataclass
class XmlCorpus:
    """Accumulates observations over XML documents for schema inference."""

    #: (class, property) → observation
    observations: dict[tuple[str, str], _PropertyObservation] = field(
        default_factory=dict
    )
    classes: set[str] = field(default_factory=set)

    def observe_document(self, document: Document) -> None:
        weak_pairs = getattr(document, "xml_weak_pairs", set())
        for resource in document:
            self.classes.add(resource.rdf_class)
            for name in resource.property_names():
                observation = self.observations.setdefault(
                    (resource.rdf_class, name), _PropertyObservation()
                )
                values = resource.get(name)
                if len(values) > 1:
                    observation.multivalued = True
                for value in values:
                    if isinstance(value, URIRef):
                        target = document.get(value)
                        if target is not None:
                            observation.targets.add(target.rdf_class)
                            observation.nested = observation.nested or (
                                (resource.rdf_class, name) not in weak_pairs
                            )
                        observation.kinds.add("reference")
                    elif isinstance(value.value, int):
                        observation.kinds.add("integer")
                    elif isinstance(value.value, float):
                        observation.kinds.add("float")
                    else:
                        observation.kinds.add("string")

    def build_schema(self) -> Schema:
        """The widest-type schema consistent with every observation."""
        schema = Schema()
        # Reference targets may be classes never seen as subjects.
        referenced = {
            target
            for observation in self.observations.values()
            for target in observation.targets
        }
        for class_name in sorted(self.classes | referenced):
            properties = []
            for (owner, name), observation in sorted(self.observations.items()):
                if owner != class_name:
                    continue
                properties.append(self._property_def(name, observation))
            schema.define_class(class_name, properties)
        schema.freeze_check()
        return schema

    def _property_def(
        self, name: str, observation: _PropertyObservation
    ) -> PropertyDef:
        if "reference" in observation.kinds:
            if len(observation.kinds) > 1:
                raise DocumentParseError(
                    f"property {name!r} mixes references and literals"
                )
            target = self._single_target(name, observation)
            strength = (
                RefStrength.STRONG if observation.nested else RefStrength.WEAK
            )
            return PropertyDef(
                name,
                PropertyKind.REFERENCE,
                target_class=target,
                strength=strength,
                multivalued=observation.multivalued,
            )
        if observation.kinds <= {"integer"}:
            kind = PropertyKind.INTEGER
        elif observation.kinds <= {"integer", "float"}:
            kind = PropertyKind.FLOAT
        else:
            kind = PropertyKind.STRING
        return PropertyDef(name, kind, multivalued=observation.multivalued)

    def _single_target(
        self, name: str, observation: _PropertyObservation
    ) -> str:
        if len(observation.targets) != 1:
            raise DocumentParseError(
                f"reference property {name!r} targets several classes: "
                f"{sorted(observation.targets)}; MDV schemas need a single "
                f"target class"
            )
        return next(iter(observation.targets))


def infer_schema(
    documents: Iterable[Document | str],
    document_uris: Iterable[str] | None = None,
) -> Schema:
    """Infer an MDV schema from a corpus of XML (or converted) documents.

    ``documents`` may contain XML strings (paired with ``document_uris``)
    or already-converted :class:`Document` objects.
    """
    corpus = XmlCorpus()
    uris = iter(document_uris or [])
    for item in documents:
        if isinstance(item, str):
            uri = next(uris, None)
            if uri is None:
                raise ValueError(
                    "XML string inputs require matching document_uris"
                )
            item = xml_to_document(item, uri)
        corpus.observe_document(item)
    return corpus.build_schema()
