"""XML support — the paper's future-work direction (Section 6).

Maps generic XML documents onto MDV's resource model so the unchanged
publish & subscribe filter serves XML content; see
:mod:`repro.xmlext.adapter`.
"""

from repro.xmlext.adapter import XmlCorpus, infer_schema, xml_to_document

__all__ = ["XmlCorpus", "infer_schema", "xml_to_document"]
