"""Deterministic fault injection for the simulated network bus.

The paper's backbone is "distributed all over the Internet" — links
drop, duplicate, delay and corrupt messages, endpoints crash, and node
sets partition.  This module makes every one of those failure modes
*injectable* and, crucially, *deterministic*: a :class:`FaultPlan` is
seeded, so the same seed over the same message sequence produces the
same faults, and chaos tests become reproducible.

A plan is scripted through its API:

- :meth:`FaultPlan.set_link_faults` / :meth:`set_default_faults` —
  probabilistic per-link behaviour (:class:`LinkFaults`): drop rate,
  duplicate rate, error rate, deterministic extra delay plus jitter;
- :meth:`FaultPlan.crash` / :meth:`restart` — take an endpoint off the
  bus and bring it back (its handler stays registered; messages to or
  from it time out while crashed);
- :meth:`FaultPlan.partition` / :meth:`heal` — cut the links between
  two node sets in both directions, then restore them.

The bus consults :meth:`FaultPlan.decide` once per message and records
the injected faults in its per-link ``LinkStats``.  Every random draw
happens unconditionally and in a fixed order, so toggling one fault
rate never shifts the random stream of the others.
"""

from __future__ import annotations

import random
from collections.abc import Iterable
from dataclasses import dataclass, field

__all__ = ["LinkFaults", "FaultDecision", "FaultPlan"]


def _check_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


@dataclass(frozen=True)
class LinkFaults:
    """Probabilistic fault behaviour of one directed link."""

    #: Probability that a message silently disappears in transit.
    drop_rate: float = 0.0
    #: Probability that a message is delivered twice.
    duplicate_rate: float = 0.0
    #: Probability that the link signals a transport error to the sender.
    error_rate: float = 0.0
    #: Deterministic extra one-way delay, in simulated ms.
    delay_ms: float = 0.0
    #: Upper bound of additional uniform random delay, in simulated ms.
    delay_jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        _check_rate("drop_rate", self.drop_rate)
        _check_rate("duplicate_rate", self.duplicate_rate)
        _check_rate("error_rate", self.error_rate)
        if self.delay_ms < 0 or self.delay_jitter_ms < 0:
            raise ValueError("delays must be non-negative")


@dataclass(frozen=True)
class FaultDecision:
    """The plan's verdict for one message send."""

    #: Destination (or source) crashed or partitioned away: time out.
    unreachable: bool = False
    #: The message is lost in transit after being charged.
    dropped: bool = False
    #: The link raises a transport error to the sender.
    errored: bool = False
    #: Number of *extra* deliveries of the same message (0 = none).
    duplicates: int = 0
    #: Additional one-way delay injected on this traversal.
    extra_delay_ms: float = 0.0


#: The all-clear decision reused for fault-free links.
CLEAN = FaultDecision()

_NO_FAULTS = LinkFaults()


@dataclass
class FaultPlan:
    """A seeded, scriptable schedule of network faults."""

    seed: int = 0
    #: Fault behaviour of links without an explicit configuration.
    default_faults: LinkFaults = field(default_factory=LinkFaults)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        self._link_faults: dict[tuple[str, str], LinkFaults] = {}
        self._crashed: set[str] = set()
        self._cuts: list[tuple[frozenset[str], frozenset[str]]] = []
        #: Total messages the plan ruled on.
        self.decisions = 0
        #: Total faults injected (drops + errors + duplicates + timeouts).
        self.faults_injected = 0

    # ------------------------------------------------------------------
    # Scripting API
    # ------------------------------------------------------------------
    def set_default_faults(self, faults: LinkFaults) -> None:
        self.default_faults = faults

    def set_link_faults(
        self,
        source: str,
        destination: str,
        faults: LinkFaults,
        symmetric: bool = True,
    ) -> None:
        self._link_faults[(source, destination)] = faults
        if symmetric:
            self._link_faults[(destination, source)] = faults

    def link_faults(self, source: str, destination: str) -> LinkFaults:
        return self._link_faults.get((source, destination), self.default_faults)

    def crash(self, *endpoints: str) -> None:
        """Take endpoints off the network (state survives; see restart)."""
        self._crashed.update(endpoints)

    def restart(self, *endpoints: str) -> None:
        """Bring crashed endpoints back onto the network."""
        self._crashed.difference_update(endpoints)

    def crashed(self, endpoint: str) -> bool:
        return endpoint in self._crashed

    def partition(
        self, group_a: Iterable[str], group_b: Iterable[str]
    ) -> None:
        """Cut every link between ``group_a`` and ``group_b`` (both ways)."""
        a, b = frozenset(group_a), frozenset(group_b)
        if a & b:
            raise ValueError(f"partition groups overlap: {sorted(a & b)}")
        self._cuts.append((a, b))

    def heal(self) -> None:
        """Remove every partition (crashed endpoints stay crashed)."""
        self._cuts.clear()

    def is_partitioned(self, source: str, destination: str) -> bool:
        for a, b in self._cuts:
            if (source in a and destination in b) or (
                source in b and destination in a
            ):
                return True
        return False

    def is_reachable(self, source: str, destination: str) -> bool:
        return (
            source not in self._crashed
            and destination not in self._crashed
            and not self.is_partitioned(source, destination)
        )

    # ------------------------------------------------------------------
    # The bus's per-message hook
    # ------------------------------------------------------------------
    def decide(self, source: str, destination: str) -> FaultDecision:
        """Rule on one message from ``source`` to ``destination``.

        Reachability is checked first and consumes no randomness; the
        probabilistic draws happen in a fixed order (drop, error,
        duplicate, jitter) regardless of the configured rates, so the
        random stream is stable under reconfiguration.
        """
        self.decisions += 1
        if not self.is_reachable(source, destination):
            self.faults_injected += 1
            return FaultDecision(unreachable=True)
        faults = self.link_faults(source, destination)
        if faults == _NO_FAULTS:
            return CLEAN
        r_drop = self._rng.random()
        r_error = self._rng.random()
        r_duplicate = self._rng.random()
        r_jitter = self._rng.random()
        extra_delay = faults.delay_ms + r_jitter * faults.delay_jitter_ms
        if r_drop < faults.drop_rate:
            self.faults_injected += 1
            return FaultDecision(dropped=True, extra_delay_ms=extra_delay)
        if r_error < faults.error_rate:
            self.faults_injected += 1
            return FaultDecision(errored=True, extra_delay_ms=extra_delay)
        duplicates = 1 if r_duplicate < faults.duplicate_rate else 0
        if duplicates:
            self.faults_injected += 1
        return FaultDecision(
            duplicates=duplicates, extra_delay_ms=extra_delay
        )
