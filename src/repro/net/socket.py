"""A real socket transport: asyncio + length-prefixed JSON frames.

The second :class:`~repro.net.transport.Transport` implementation (the
first is the simulated :class:`~repro.net.bus.NetworkBus`): MDPs and
LMRs running as separate OS processes exchange
:mod:`repro.net.frames` over TCP, payloads in :mod:`repro.net.codec`
wire form.  ``python -m repro.mdv serve`` builds one node per process
on top of this class (docs/SERVICE.md).

Threading model
---------------
One background thread runs the asyncio event loop: the listening
server, every outbound connection, and all frame I/O.  Callers —
provider/LMR code, the outbox — stay synchronous; ``send`` bridges
into the loop with ``run_coroutine_threadsafe`` and blocks for the
response.  Local endpoints are dispatched in one of two modes:

- ``"inline"`` — the handler runs on the I/O thread as frames arrive.
  Right for pure in-memory receivers (an LMR cache applying
  notification batches) and the only mode that can answer while the
  process's main thread is itself blocked in a ``send``.
- ``"queue"`` — requests are parked on an internal queue and executed
  by whichever thread drains :meth:`SocketTransport.next_request` /
  :meth:`SocketTransport.execute` — the daemon's main thread.  Right
  for handlers bound to thread-affine state (the provider's SQLite
  connection must be used by the thread that created it).

Failure semantics (docs/SERVICE.md): request/response exchanges carry
correlation ids and a per-message timeout; connection establishment
retries with capped exponential backoff; unreachable peers, lost
connections and timeouts surface as
:class:`~repro.errors.NetworkError` subclasses — the retryable branch
the :class:`~repro.mdv.outbox.Outbox` already understands.  Error
frames from a live peer reconstruct the remote exception type (never a
``NetworkError`` — the peer *did* process the request) so poison
semantics hold.
"""

from __future__ import annotations

import asyncio
import contextlib
import queue
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import repro.errors as errors_module
from repro.errors import (
    EndpointDownError,
    FrameError,
    FrameTooLargeError,
    MDVError,
    NetworkError,
    RemoteError,
    WireCodecError,
)
from repro.net.bus import Message
from repro.net.codec import from_wire, to_wire, wire_size
from repro.net.frames import PROTOCOL_VERSION, FrameDecoder, encode_frame
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["QueuedRequest", "SocketTransport"]

_READ_CHUNK = 64 * 1024

#: Grace added to the response timeout when blocking on the loop; the
#: coroutine's own ``wait_for`` always fires first.
_BRIDGE_GRACE_S = 30.0


def _error_body(
    frame_id: object, exc: BaseException, retryable: bool = False
) -> dict:
    body = {
        "v": PROTOCOL_VERSION,
        "type": "error",
        "id": frame_id,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }
    if retryable:
        # Set ONLY by the dispatch layer itself (endpoint not yet
        # registered): the request never reached a handler, so the
        # sender may safely retry.
        body["error"]["retryable"] = True
    return body


def _raise_remote(destination: str, error: object) -> None:
    """Re-raise a peer's error frame as a local exception.

    An error frame normally means the peer *processed and rejected*
    the request: the remote type is reconstructed when it is a known,
    non-network :class:`~repro.errors.MDVError` — mapping it onto the
    retryable branch would make the outbox retry a rejected request —
    and anything else raises :class:`RemoteError`.  The one exception
    is a frame the peer's dispatch layer marked ``retryable`` (the
    endpoint is not registered there yet): no handler ran, so it
    surfaces as :class:`~repro.errors.EndpointDownError`.
    """
    name, message = "MDVError", str(error)
    if isinstance(error, dict):
        name = str(error.get("type", name))
        message = str(error.get("message", ""))
        if error.get("retryable"):
            raise EndpointDownError(destination, message)
    cls = getattr(errors_module, name, None)
    if (
        isinstance(cls, type)
        and issubclass(cls, MDVError)
        and not issubclass(cls, NetworkError)
    ):
        try:
            exc = cls(message)
        except TypeError:
            exc = None
        if exc is not None:
            raise exc
    raise RemoteError(name, message)


@dataclass
class _Endpoint:
    handler: Callable[[Message], Any]
    mode: str
    #: Kinds always dispatched inline even on a queue-mode endpoint.
    inline_kinds: frozenset[str] = frozenset()

    def dispatches_inline(self, kind: str) -> bool:
        return self.mode == "inline" or kind in self.inline_kinds


@dataclass
class QueuedRequest:
    """One request parked for a queue-mode endpoint's owning thread."""

    message: Message
    frame_id: object
    one_way: bool
    _writer: Any = field(repr=False, default=None)


class _Connection:
    """One outbound request channel to a peer (loop-thread only)."""

    def __init__(self, destination: str, reader, writer):
        self.destination = destination
        self.reader = reader
        self.writer = writer
        self.pending: dict[int, asyncio.Future] = {}
        self.closed = False
        self._next_id = 0
        self.reader_task: asyncio.Task | None = None

    def next_id(self) -> int:
        self._next_id += 1
        return self._next_id


class SocketTransport:
    """Asyncio TCP transport implementing the :class:`Transport` seam."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        peers: dict[str, tuple[str, int]] | None = None,
        request_timeout_s: float = 30.0,
        connect_attempts: int = 4,
        connect_base_delay_s: float = 0.05,
        connect_max_delay_s: float = 0.4,
        dispatch: str = "inline",
        metrics: MetricsRegistry | None = None,
    ):
        if dispatch not in ("inline", "queue"):
            raise ValueError(
                f"dispatch must be 'inline' or 'queue', got {dispatch!r}"
            )
        self.host = host
        self._requested_port = port
        self._bound_port: int | None = None
        self._peers = dict(peers or {})
        self.request_timeout_s = request_timeout_s
        self.connect_attempts = max(1, connect_attempts)
        self.connect_base_delay_s = connect_base_delay_s
        self.connect_max_delay_s = connect_max_delay_s
        self.default_dispatch = dispatch
        self._endpoints: dict[str, _Endpoint] = {}
        self._connections: dict[str, _Connection] = {}
        self._queue: queue.Queue[QueuedRequest] = queue.Queue()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.AbstractServer | None = None
        self._startup_error: BaseException | None = None
        self._closed = False
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_messages = self.metrics.counter("net.messages")
        self._m_bytes = self.metrics.counter("net.bytes")
        self._m_latency = self.metrics.histogram("net.latency_ms")
        self._m_connections = self.metrics.counter("net.socket.connections")
        self._m_requests = self.metrics.counter("net.socket.requests")
        self._m_notifies = self.metrics.counter("net.socket.notifies")
        self._m_errors = self.metrics.counter("net.socket.errors")
        self._m_retries = self.metrics.counter("net.socket.retries")
        self._m_timeouts = self.metrics.counter("net.socket.timeouts")
        self._m_bytes_sent = self.metrics.counter("net.socket.bytes_sent")
        self._m_bytes_received = self.metrics.counter(
            "net.socket.bytes_received"
        )
        self._m_request_ms = self.metrics.histogram("net.socket.request_ms")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> SocketTransport:
        """Bind the listener and start the I/O thread (idempotent)."""
        if self._thread is not None:
            return self
        if self._closed:
            raise RuntimeError("transport is closed")
        self._loop = asyncio.new_event_loop()
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop,
            args=(ready,),
            name=f"mdv-socket-{self.host}:{self._requested_port}",
            daemon=True,
        )
        self._thread.start()
        ready.wait(timeout=10.0)
        if self._startup_error is not None:
            error = self._startup_error
            self._thread.join(timeout=1.0)
            self._thread = None
            self._loop = None
            raise error
        return self

    def _run_loop(self, ready: threading.Event) -> None:
        loop = self._loop
        assert loop is not None
        asyncio.set_event_loop(loop)
        try:
            self._server = loop.run_until_complete(
                asyncio.start_server(
                    self._handle_connection, self.host, self._requested_port
                )
            )
            sockets = self._server.sockets or ()
            self._bound_port = sockets[0].getsockname()[1]
        except BaseException as exc:  # noqa: BLE001 - surfaced in start()
            self._startup_error = exc
            ready.set()
            loop.close()
            return
        ready.set()
        loop.run_forever()
        loop.run_until_complete(self._shutdown_async())
        remaining = asyncio.all_tasks(loop)
        for task in remaining:
            task.cancel()
        if remaining:
            loop.run_until_complete(
                asyncio.gather(*remaining, return_exceptions=True)
            )
        loop.close()

    @property
    def port(self) -> int:
        """The bound listening port (after :meth:`start`)."""
        if self._bound_port is None:
            raise RuntimeError("transport not started")
        return self._bound_port

    def close(self) -> None:
        """Stop the listener, drop connections, join the I/O thread."""
        if self._closed or self._loop is None:
            self._closed = True
            return
        self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    async def _shutdown_async(self) -> None:
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        connections = list(self._connections.values())
        for connection in connections:
            self._drop_connection(connection, "transport closed")
            with contextlib.suppress(Exception):
                connection.writer.close()
        for connection in connections:
            if connection.reader_task is not None:
                connection.reader_task.cancel()
                with contextlib.suppress(asyncio.CancelledError, Exception):
                    await connection.reader_task
        self._connections.clear()

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        handler: Callable[[Message], Any],
        dispatch: str | None = None,
    ) -> None:
        """Attach an endpoint; re-registration replaces the handler."""
        mode = dispatch if dispatch is not None else self.default_dispatch
        if mode not in ("inline", "queue"):
            raise ValueError(
                f"dispatch must be 'inline' or 'queue', got {mode!r}"
            )
        previous = self._endpoints.get(name)
        inline_kinds = (
            previous.inline_kinds if previous is not None else frozenset()
        )
        self._endpoints[name] = _Endpoint(handler, mode, inline_kinds)

    def unregister(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._endpoints)

    def set_inline_kinds(self, name: str, kinds: set[str]) -> None:
        """Dispatch the given kinds inline on a queue-mode endpoint.

        An LMR daemon queues its command handlers to the main thread
        but must keep answering ``notifications`` on the I/O thread —
        the provider delivers them *while* the main thread is blocked
        inside its own request (e.g. the initial matches of a
        ``subscribe``).
        """
        endpoint = self._endpoints[name]
        endpoint.inline_kinds = frozenset(kinds)

    def add_peer(self, name: str, host: str, port: int) -> None:
        """Teach the transport where a named peer listens."""
        self._peers[name] = (host, port)

    def peers(self) -> dict[str, tuple[str, int]]:
        return dict(self._peers)

    # ------------------------------------------------------------------
    # Clock (real time; the Transport contract)
    # ------------------------------------------------------------------
    def now_ms(self) -> float:
        return time.perf_counter() * 1000.0

    def sleep(self, ms: float) -> None:
        if ms < 0:
            raise ValueError(f"cannot sleep a negative duration: {ms!r}")
        time.sleep(ms / 1000.0)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self, source: str, destination: str, kind: str, payload: Any
    ) -> Any:
        """Request/response exchange; blocks for the (decoded) result."""
        return self._send(source, destination, kind, payload, one_way=False)

    def send_one_way(
        self, source: str, destination: str, kind: str, payload: Any
    ) -> None:
        """Fire-and-forget notify frame (connection errors still raise)."""
        self._send(source, destination, kind, payload, one_way=True)

    def _send(
        self,
        source: str,
        destination: str,
        kind: str,
        payload: Any,
        one_way: bool,
    ) -> Any:
        endpoint = self._endpoints.get(destination)
        if endpoint is not None:
            # Local short-circuit, mirroring the simulated bus: a
            # locally registered endpoint is called directly.
            self._charge(payload)
            result = endpoint.handler(
                Message(source, destination, kind, payload)
            )
            return None if one_way else result
        if threading.current_thread() is self._thread:
            raise RuntimeError(
                "send() may not be called from the transport I/O thread; "
                "register blocking handlers with dispatch='queue'"
            )
        self.start()
        assert self._loop is not None
        wire_payload = to_wire(payload)  # raises WireCodecError caller-side
        self._charge(payload)
        started = time.perf_counter()
        future = asyncio.run_coroutine_threadsafe(
            self._exchange(source, destination, kind, wire_payload, one_way),
            self._loop,
        )
        try:
            result = future.result(
                timeout=self.request_timeout_s + _BRIDGE_GRACE_S
            )
        except TimeoutError:  # pragma: no cover - loop stalled
            future.cancel()
            raise EndpointDownError(destination, "transport loop stalled")
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._m_latency.observe(elapsed_ms)
            if not one_way:
                self._m_request_ms.observe(elapsed_ms)
        return from_wire(result) if not one_way else None

    def _charge(self, payload: Any) -> None:
        self._m_messages.inc()
        try:
            self._m_bytes.inc(wire_size(payload))
        except WireCodecError:  # pragma: no cover - encoded right after
            pass

    async def _exchange(
        self,
        source: str,
        destination: str,
        kind: str,
        wire_payload: Any,
        one_way: bool,
    ) -> Any:
        connection = await self._connect(destination)
        body = {
            "v": PROTOCOL_VERSION,
            "type": "notify" if one_way else "request",
            "id": None,
            "source": source,
            "destination": destination,
            "kind": kind,
            "payload": wire_payload,
        }
        if one_way:
            await self._write(connection, body, destination)
            return None
        frame_id = connection.next_id()
        body["id"] = frame_id
        assert self._loop is not None
        waiter: asyncio.Future = self._loop.create_future()
        connection.pending[frame_id] = waiter
        try:
            await self._write(connection, body, destination)
            try:
                frame = await asyncio.wait_for(
                    waiter, timeout=self.request_timeout_s
                )
            except asyncio.TimeoutError:
                self._m_timeouts.inc()
                raise EndpointDownError(
                    destination,
                    f"silent for {self.request_timeout_s:g}s on "
                    f"{kind!r} (request timed out)",
                ) from None
        finally:
            connection.pending.pop(frame_id, None)
        frame_type = frame.get("type")
        if frame_type == "response":
            return frame.get("payload")
        if frame_type == "error":
            _raise_remote(destination, frame.get("error"))
        raise FrameError(f"unexpected reply frame type {frame_type!r}")

    async def _write(
        self, connection: _Connection, body: dict, destination: str
    ) -> None:
        data = encode_frame(body)
        try:
            connection.writer.write(data)
            await connection.writer.drain()
        except (ConnectionError, OSError) as exc:
            self._drop_connection(connection, str(exc))
            raise EndpointDownError(
                destination, f"connection lost: {exc}"
            ) from exc
        self._m_bytes_sent.inc(len(data))

    async def _connect(self, destination: str) -> _Connection:
        connection = self._connections.get(destination)
        if connection is not None and not connection.closed:
            return connection
        address = self._peers.get(destination)
        if address is None:
            raise EndpointDownError(
                destination, "not a local endpoint and has no known address"
            )
        delay = self.connect_base_delay_s
        for attempt in range(1, self.connect_attempts + 1):
            try:
                reader, writer = await asyncio.open_connection(*address)
                break
            except OSError as exc:
                if attempt == self.connect_attempts:
                    raise EndpointDownError(
                        destination,
                        f"unreachable at {address[0]}:{address[1]} after "
                        f"{attempt} attempts ({exc})",
                    ) from exc
                self._m_retries.inc()
                await asyncio.sleep(delay)
                delay = min(delay * 2.0, self.connect_max_delay_s)
        connection = _Connection(destination, reader, writer)
        connection.reader_task = asyncio.ensure_future(
            self._read_replies(connection)
        )
        self._connections[destination] = connection
        return connection

    async def _read_replies(self, connection: _Connection) -> None:
        decoder = FrameDecoder()
        try:
            while True:
                data = await connection.reader.read(_READ_CHUNK)
                if not data:
                    break
                self._m_bytes_received.inc(len(data))
                decoder.feed(data)
                while True:
                    frame = decoder.next_frame()
                    if frame is None:
                        break
                    self._resolve_reply(connection, frame)
        except (ConnectionError, OSError):
            pass
        except FrameError:
            self._m_errors.inc()
        finally:
            self._drop_connection(connection, "connection closed by peer")

    def _resolve_reply(self, connection: _Connection, frame: dict) -> None:
        frame_id = frame.get("id")
        waiter = (
            connection.pending.get(frame_id)
            if isinstance(frame_id, int)
            else None
        )
        if waiter is None or waiter.done():
            # An unsolicited frame (or a reply whose waiter timed out):
            # connection-level error frames land here too.
            if frame.get("type") == "error":
                self._m_errors.inc()
            return
        waiter.set_result(frame)

    def _drop_connection(self, connection: _Connection, reason: str) -> None:
        if connection.closed:
            return
        connection.closed = True
        if self._connections.get(connection.destination) is connection:
            del self._connections[connection.destination]
        with contextlib.suppress(Exception):
            connection.writer.close()
        for waiter in connection.pending.values():
            if not waiter.done():
                waiter.set_exception(
                    EndpointDownError(connection.destination, reason)
                )
        connection.pending.clear()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        self._m_connections.inc()
        decoder = FrameDecoder()
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    break
                self._m_bytes_received.inc(len(data))
                decoder.feed(data)
                resync_lost = await self._drain_frames(decoder, writer)
                if resync_lost:
                    return
        except (ConnectionError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _drain_frames(self, decoder: FrameDecoder, writer) -> bool:
        """Dispatch buffered frames; ``True`` = close the connection."""
        while True:
            try:
                frame = decoder.next_frame()
            except FrameTooLargeError as exc:
                # Frame sync is gone: answer, then hang up.
                self._m_errors.inc()
                with contextlib.suppress(ConnectionError, OSError):
                    await self._write_raw(writer, _error_body(None, exc))
                return True
            except FrameError as exc:
                # The bad frame's bytes are consumed; keep the
                # connection and answer subsequent frames normally.
                self._m_errors.inc()
                with contextlib.suppress(ConnectionError, OSError):
                    await self._write_raw(writer, _error_body(None, exc))
                continue
            if frame is None:
                return False
            await self._serve_frame(frame, writer)

    async def _write_raw(self, writer, body: dict) -> None:
        data = encode_frame(body)
        writer.write(data)
        self._m_bytes_sent.inc(len(data))
        await writer.drain()

    async def _serve_frame(self, frame: dict, writer) -> None:
        frame_type = frame.get("type")
        frame_id = frame.get("id")
        one_way = frame_type == "notify"
        if frame_type not in ("request", "notify"):
            self._m_errors.inc()
            with contextlib.suppress(ConnectionError, OSError):
                await self._write_raw(
                    writer,
                    _error_body(
                        frame_id,
                        FrameError(
                            f"unexpected frame type {frame_type!r} on a "
                            f"server connection"
                        ),
                    ),
                )
            return
        (self._m_notifies if one_way else self._m_requests).inc()
        destination = frame.get("destination")
        endpoint = (
            self._endpoints.get(destination)
            if isinstance(destination, str)
            else None
        )
        if endpoint is None:
            await self._reply_error(
                writer,
                frame_id,
                EndpointDownError(
                    str(destination), "not registered on this transport"
                ),
                one_way,
                retryable=True,
            )
            return
        try:
            message = Message(
                str(frame.get("source", "")),
                destination,
                str(frame.get("kind", "")),
                from_wire(frame.get("payload")),
            )
        except WireCodecError as exc:
            await self._reply_error(writer, frame_id, exc, one_way)
            return
        if endpoint.dispatches_inline(message.kind):
            await self._run_inline(endpoint, message, frame_id, one_way, writer)
        else:
            self._queue.put(QueuedRequest(message, frame_id, one_way, writer))

    async def _run_inline(
        self, endpoint: _Endpoint, message: Message, frame_id: object,
        one_way: bool, writer,
    ) -> None:
        try:
            result = endpoint.handler(message)
        except Exception as exc:  # noqa: BLE001 - relayed to the caller
            await self._reply_error(writer, frame_id, exc, one_way)
            return
        if one_way:
            return
        await self._reply_result(writer, frame_id, result)

    async def _reply_result(self, writer, frame_id: object, result: Any) -> None:
        try:
            body = {
                "v": PROTOCOL_VERSION,
                "type": "response",
                "id": frame_id,
                "payload": to_wire(result),
            }
        except WireCodecError as exc:
            await self._reply_error(writer, frame_id, exc, one_way=False)
            return
        with contextlib.suppress(ConnectionError, OSError):
            await self._write_raw(writer, body)

    async def _reply_error(
        self, writer, frame_id: object, exc: BaseException, one_way: bool,
        retryable: bool = False,
    ) -> None:
        self._m_errors.inc()
        if one_way:
            return
        with contextlib.suppress(ConnectionError, OSError):
            await self._write_raw(
                writer, _error_body(frame_id, exc, retryable)
            )

    # ------------------------------------------------------------------
    # Queue-mode dispatch (the daemon's main-thread loop)
    # ------------------------------------------------------------------
    def next_request(self, timeout: float | None = None) -> QueuedRequest | None:
        """Pop the next queued request, or ``None`` on timeout."""
        try:
            if timeout is None:
                return self._queue.get_nowait()
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def pending_requests(self) -> int:
        return self._queue.qsize()

    def execute(self, request: QueuedRequest) -> None:
        """Run a queued request's handler and send the reply.

        Called by the thread that owns the endpoint's state — handler
        exceptions become error frames, never daemon crashes.
        """
        endpoint = self._endpoints.get(request.message.destination)
        if endpoint is None:
            self._reply_from_thread(
                self._reply_error(
                    request._writer,
                    request.frame_id,
                    EndpointDownError(
                        request.message.destination,
                        "endpoint was unregistered",
                    ),
                    request.one_way,
                    retryable=True,
                )
            )
            return
        try:
            result = endpoint.handler(request.message)
        except Exception as exc:  # noqa: BLE001 - relayed to the caller
            self._reply_from_thread(
                self._reply_error(
                    request._writer, request.frame_id, exc, request.one_way
                )
            )
            return
        if request.one_way:
            return
        self._reply_from_thread(
            self._reply_result(request._writer, request.frame_id, result)
        )

    def _reply_from_thread(self, coroutine) -> None:
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        with contextlib.suppress(Exception):
            future.result(timeout=10.0)
