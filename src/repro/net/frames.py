"""The length-prefixed JSON frame protocol spoken by ``repro.net.socket``.

One frame = a 4-byte big-endian length prefix + that many bytes of
UTF-8 JSON.  The JSON body is a flat object (docs/SERVICE.md):

- ``v`` — protocol version (currently 1);
- ``type`` — ``"request"`` | ``"response"`` | ``"notify"`` | ``"error"``;
- ``id`` — the correlation id pairing a response (or error) with its
  request; ``None`` on notifies and on connection-level errors;
- ``source`` / ``destination`` / ``kind`` / ``payload`` — the
  :class:`~repro.net.bus.Message` fields, the payload in
  :mod:`repro.net.codec` wire form (requests and notifies);
- ``payload`` — the wire-form result (responses);
- ``error`` — ``{"type": ..., "message": ...}`` (error frames).

Failure semantics are split by how much framing survives: a frame whose
*body* is garbage raises :class:`~repro.errors.FrameError` with the
frame's bytes already consumed, so a server can answer an error frame
and keep the connection; a *length prefix* above :data:`MAX_FRAME_BYTES`
raises :class:`~repro.errors.FrameTooLargeError` — frame sync is gone
and the connection must be closed after the error response.
"""

from __future__ import annotations

import json
import struct

from repro.errors import FrameError, FrameTooLargeError

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FrameDecoder",
    "decode_frames",
    "encode_frame",
]

#: Maximum frame body size (16 MiB) — far above any legitimate batch,
#: far below a garbage length prefix read off a desynchronized stream.
MAX_FRAME_BYTES = 16 * 1024 * 1024

PROTOCOL_VERSION = 1

_HEADER = struct.Struct(">I")


def encode_frame(body: dict[str, object]) -> bytes:
    """Serialize one frame body (already in wire form) to bytes."""
    try:
        encoded = json.dumps(
            body, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise FrameError(f"frame body is not JSON-serializable: {exc}") from exc
    if len(encoded) > MAX_FRAME_BYTES:
        raise FrameTooLargeError(
            f"frame of {len(encoded)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte maximum"
        )
    return _HEADER.pack(len(encoded)) + encoded


class FrameDecoder:
    """Incremental decoder for a stream of length-prefixed frames.

    Feed arbitrary chunks with :meth:`feed`, then drain completed
    frames with :meth:`next_frame` until it returns ``None``.  A frame
    with a valid length but a malformed body is *consumed* before
    :class:`~repro.errors.FrameError` is raised, so decoding can resume
    with the next frame on the same stream.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        self._buffer.extend(data)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet consumed as complete frames."""
        return len(self._buffer)

    def next_frame(self) -> dict[str, object] | None:
        """The next complete frame, or ``None`` when more bytes are needed."""
        if len(self._buffer) < _HEADER.size:
            return None
        (length,) = _HEADER.unpack_from(self._buffer)
        if length > MAX_FRAME_BYTES:
            raise FrameTooLargeError(
                f"frame header declares {length} bytes, above the "
                f"{MAX_FRAME_BYTES}-byte maximum"
            )
        if len(self._buffer) < _HEADER.size + length:
            return None
        body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
        del self._buffer[:_HEADER.size + length]
        try:
            frame = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise FrameError(f"frame body is not valid JSON: {exc}") from exc
        if not isinstance(frame, dict):
            raise FrameError(
                f"frame body must be a JSON object, got "
                f"{type(frame).__name__}"
            )
        return frame


def decode_frames(data: bytes) -> list[dict[str, object]]:
    """Decode a complete byte string into its frames (test helper).

    Raises :class:`~repro.errors.FrameError` on any malformed frame and
    on trailing bytes that do not form a complete frame.
    """
    decoder = FrameDecoder()
    decoder.feed(data)
    frames: list[dict[str, object]] = []
    while True:
        frame = decoder.next_frame()
        if frame is None:
            break
        frames.append(frame)
    if decoder.pending_bytes:
        raise FrameError(
            f"{decoder.pending_bytes} trailing bytes do not form a "
            f"complete frame"
        )
    return frames
