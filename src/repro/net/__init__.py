"""The network substrate: a transport seam with two implementations.

:class:`NetworkBus` is the deterministic in-process simulator (see
DESIGN.md, substitutions); :class:`SocketTransport` is the real asyncio
TCP transport speaking the :mod:`repro.net.frames` protocol with
payloads in :mod:`repro.net.codec` wire form.  Both satisfy the
:class:`Transport` protocol, so every tier above runs unchanged on
either.
"""

from repro.net.bus import (
    DEFAULT_LAN_LATENCY_MS,
    DEFAULT_WAN_LATENCY_MS,
    LinkStats,
    Message,
    NetworkBus,
)
from repro.net.codec import from_wire, to_wire, wire_size
from repro.net.faults import FaultDecision, FaultPlan, LinkFaults
from repro.net.frames import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    FrameDecoder,
    decode_frames,
    encode_frame,
)
from repro.net.socket import QueuedRequest, SocketTransport
from repro.net.transport import Transport

__all__ = [
    "DEFAULT_LAN_LATENCY_MS",
    "DEFAULT_WAN_LATENCY_MS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "FaultDecision",
    "FaultPlan",
    "FrameDecoder",
    "LinkFaults",
    "LinkStats",
    "Message",
    "NetworkBus",
    "QueuedRequest",
    "SocketTransport",
    "Transport",
    "decode_frames",
    "encode_frame",
    "from_wire",
    "to_wire",
    "wire_size",
]
