"""Simulated network substrate (see DESIGN.md, substitutions)."""

from repro.net.bus import (
    DEFAULT_LAN_LATENCY_MS,
    DEFAULT_WAN_LATENCY_MS,
    LinkStats,
    Message,
    NetworkBus,
)
from repro.net.faults import FaultDecision, FaultPlan, LinkFaults

__all__ = [
    "DEFAULT_LAN_LATENCY_MS",
    "DEFAULT_WAN_LATENCY_MS",
    "FaultDecision",
    "FaultPlan",
    "LinkFaults",
    "LinkStats",
    "Message",
    "NetworkBus",
]
