"""The wire codec: every cross-tier payload as tagged, canonical JSON.

The simulated bus passes Python objects by reference; the socket
transport (:mod:`repro.net.socket`) has to serialize them.  Both must
agree on *one* encoding so that

- the two transports carry byte-identical information (the sim-vs-
  socket differential oracle compares the streams), and
- byte accounting agrees: :meth:`repro.net.bus.Message.approximate_size`
  measures :func:`wire_size` — the serialized JSON length — on the
  simulated bus, which is exactly what the socket transport puts on the
  wire.

Scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass through
as themselves.  Everything else becomes a JSON object carrying a
``"_t"`` tag: containers (``tuple`` — JSON has no tuple, and document
versions are compared as tuples — ``list``, ``dict``, ``set``) and the
domain types that cross tier boundaries (URI references, literals,
resources, documents, notifications, subscriptions, diagnostics,
replica updates, publish outcomes).  Unknown types raise
:class:`~repro.errors.WireCodecError` — the caller may fall back to a
size estimate, but never to pickling: frames cross process boundaries.

Only leaf modules are imported at module scope; the domain types are
resolved lazily on first use because this module sits *below*
:mod:`repro.net.bus` in the import graph while the payload types sit
far above it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import WireCodecError
from repro.rdf.model import Document, Literal, Resource, URIRef

__all__ = ["to_wire", "from_wire", "wire_size", "dumps", "loads"]

#: The tag key marking an encoded non-scalar value.
TAG = "_t"

_DOMAIN: dict[str, Any] | None = None


def _domain() -> dict[str, Any]:
    """The lazily imported payload types, keyed by wire tag."""
    global _DOMAIN
    if _DOMAIN is None:
        from repro.analysis.diagnostics import Diagnostic, Severity
        from repro.filter.results import FilterRunResult, PublishOutcome
        from repro.mdv.outbox import ReplicaUpdate
        from repro.pubsub.notifications import (
            DeleteNotification,
            MatchNotification,
            NotificationBatch,
            ResourcePayload,
            UnmatchNotification,
        )
        from repro.rules.registry import Subscription

        _DOMAIN = {
            "diag": Diagnostic,
            "sev": Severity,
            "run": FilterRunResult,
            "outcome": PublishOutcome,
            "replica": ReplicaUpdate,
            "del": DeleteNotification,
            "match": MatchNotification,
            "batch": NotificationBatch,
            "payload": ResourcePayload,
            "unmatch": UnmatchNotification,
            "sub": Subscription,
        }
    return _DOMAIN


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------
def to_wire(value: Any) -> Any:
    """Convert a payload into JSON-serializable wire form."""
    if isinstance(value, URIRef):
        return {TAG: "uri", "v": str(value)}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Literal):
        return {TAG: "lit", "v": value.value}
    if isinstance(value, tuple):
        return {TAG: "tup", "v": [to_wire(item) for item in value]}
    if isinstance(value, list):
        return [to_wire(item) for item in value]
    if isinstance(value, (set, frozenset)):
        # Canonical order: sets have none, the wire must (byte-identical
        # streams and sizes across runs and transports).
        encoded = [to_wire(item) for item in value]
        return {TAG: "set", "v": sorted(encoded, key=_canonical_key)}
    if isinstance(value, dict):
        return _encode_dict(value)
    if isinstance(value, Resource):
        return {
            TAG: "res",
            "uri": str(value.uri),
            "cls": value.rdf_class,
            "props": [
                [name, to_wire(item)]
                for name in value.property_names()
                for item in value.get(name)
            ],
        }
    if isinstance(value, Document):
        return {
            TAG: "doc",
            "uri": value.uri,
            "resources": [to_wire(resource) for resource in value],
        }
    return _encode_domain(value)


def _canonical_key(encoded: Any) -> str:
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def _encode_dict(value: dict) -> Any:
    if all(
        isinstance(key, str) and not isinstance(key, URIRef)
        for key in value
    ) and TAG not in value:
        return {key: to_wire(item) for key, item in value.items()}
    # Non-string (or URIRef, or tag-colliding) keys: keep the exact key
    # types through an explicit pair list.
    return {
        TAG: "map",
        "v": [[to_wire(key), to_wire(item)] for key, item in value.items()],
    }


def _encode_domain(value: Any) -> dict:
    domain = _domain()
    if isinstance(value, domain["payload"]):
        return {
            TAG: "payload",
            "r": to_wire(value.resource),
            "sc": [to_wire(item) for item in value.strong_closure],
        }
    if isinstance(value, domain["match"]):
        return {
            TAG: "match",
            "sub": value.sub_id,
            "rule": value.rule_text,
            "p": to_wire(value.payload),
        }
    if isinstance(value, domain["unmatch"]):
        return {
            TAG: "unmatch",
            "sub": value.sub_id,
            "rule": value.rule_text,
            "uri": str(value.uri),
        }
    if isinstance(value, domain["del"]):
        return {TAG: "del", "uri": str(value.uri)}
    if isinstance(value, domain["batch"]):
        return {
            TAG: "batch",
            "to": value.subscriber,
            "n": [to_wire(item) for item in value.notifications],
            "src": value.source,
            "seq": value.seq,
        }
    if isinstance(value, domain["sub"]):
        return {
            TAG: "sub",
            "id": value.sub_id,
            "to": value.subscriber,
            "rule": value.rule_text,
            "end": value.end_rule,
        }
    if isinstance(value, domain["diag"]):
        return {
            TAG: "diag",
            "sev": int(value.severity),
            "code": value.code,
            "msg": value.message,
            "span": list(value.span) if value.span is not None else None,
            "hint": value.hint,
            "src": value.source,
        }
    if isinstance(value, domain["replica"]):
        return {
            TAG: "replica",
            "uri": value.document_uri,
            "doc": to_wire(value.document),
            "ver": to_wire(value.version),
            "src": value.source,
            "seq": value.seq,
        }
    if isinstance(value, domain["outcome"]):
        return {
            TAG: "outcome",
            "matched": to_wire(value.matched),
            "unmatched": to_wire(value.unmatched),
            "deleted": to_wire(value.deleted),
            "passes": [to_wire(item) for item in value.passes],
        }
    if isinstance(value, domain["run"]):
        return {
            TAG: "run",
            "pairs": to_wire(value.pairs),
            "it": value.iterations,
            "hits": value.triggering_hits,
            "ts": value.triggering_seconds,
            "js": value.join_seconds,
        }
    raise WireCodecError(
        f"cannot encode {type(value).__name__!r} for the wire"
    )


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------
def from_wire(value: Any) -> Any:
    """Reconstruct a payload from its wire form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, list):
        return [from_wire(item) for item in value]
    if not isinstance(value, dict):
        raise WireCodecError(
            f"unexpected wire value of type {type(value).__name__!r}"
        )
    tag = value.get(TAG)
    if tag is None:
        return {key: from_wire(item) for key, item in value.items()}
    try:
        return _decode_tagged(tag, value)
    except WireCodecError:
        raise
    except Exception as exc:
        raise WireCodecError(
            f"malformed wire value tagged {tag!r}: {exc}"
        ) from exc


def _decode_tagged(tag: str, value: dict) -> Any:
    if tag == "uri":
        return URIRef(value["v"])
    if tag == "lit":
        return Literal(value["v"])
    if tag == "tup":
        return tuple(from_wire(item) for item in value["v"])
    if tag == "set":
        return {from_wire(item) for item in value["v"]}
    if tag == "map":
        return {
            from_wire(key): from_wire(item) for key, item in value["v"]
        }
    if tag == "res":
        return Resource(
            URIRef(value["uri"]),
            value["cls"],
            [(name, from_wire(item)) for name, item in value["props"]],
        )
    if tag == "doc":
        document = Document(value["uri"])
        for encoded in value["resources"]:
            document.add(from_wire(encoded))
        return document
    domain = _domain()
    if tag == "payload":
        return domain["payload"](
            resource=from_wire(value["r"]),
            strong_closure=[from_wire(item) for item in value["sc"]],
        )
    if tag == "match":
        return domain["match"](
            sub_id=value["sub"],
            rule_text=value["rule"],
            payload=from_wire(value["p"]),
        )
    if tag == "unmatch":
        return domain["unmatch"](
            sub_id=value["sub"],
            rule_text=value["rule"],
            uri=URIRef(value["uri"]),
        )
    if tag == "del":
        return domain["del"](uri=URIRef(value["uri"]))
    if tag == "batch":
        return domain["batch"](
            subscriber=value["to"],
            notifications=[from_wire(item) for item in value["n"]],
            source=value["src"],
            seq=value["seq"],
        )
    if tag == "sub":
        return domain["sub"](
            sub_id=value["id"],
            subscriber=value["to"],
            rule_text=value["rule"],
            end_rule=value["end"],
        )
    if tag == "diag":
        return domain["diag"](
            severity=domain["sev"](value["sev"]),
            code=value["code"],
            message=value["msg"],
            span=tuple(value["span"]) if value["span"] is not None else None,
            hint=value["hint"],
            source=value["src"],
        )
    if tag == "replica":
        return domain["replica"](
            document_uri=value["uri"],
            document=from_wire(value["doc"]),
            version=from_wire(value["ver"]),
            source=value["src"],
            seq=value["seq"],
        )
    if tag == "outcome":
        return domain["outcome"](
            matched=from_wire(value["matched"]),
            unmatched=from_wire(value["unmatched"]),
            deleted=from_wire(value["deleted"]),
            passes=[from_wire(item) for item in value["passes"]],
        )
    if tag == "run":
        return domain["run"](
            pairs=from_wire(value["pairs"]),
            iterations=value["it"],
            triggering_hits=value["hits"],
            triggering_seconds=value["ts"],
            join_seconds=value["js"],
        )
    raise WireCodecError(f"unknown wire tag {tag!r}")


# ----------------------------------------------------------------------
# Serialized form
# ----------------------------------------------------------------------
def dumps(value: Any) -> bytes:
    """Wire-encode and serialize a payload to canonical JSON bytes."""
    try:
        return json.dumps(
            to_wire(value), separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WireCodecError(f"payload is not JSON-serializable: {exc}") from exc


def loads(data: bytes | str) -> Any:
    """Parse canonical JSON bytes and decode the payload."""
    try:
        parsed = json.loads(data)
    except ValueError as exc:
        raise WireCodecError(f"invalid wire JSON: {exc}") from exc
    return from_wire(parsed)


def wire_size(value: Any) -> int:
    """The payload's serialized size in bytes — the cost both transports
    charge to ``net.bytes``."""
    return len(dumps(value))
