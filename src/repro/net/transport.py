"""The transport seam between the MDV tiers and the network.

Everything above the network — :class:`~repro.mdv.provider.
MetadataProvider`, :class:`~repro.mdv.repository.LocalMetadataRepository`,
:class:`~repro.mdv.backbone.Backbone`, the
:class:`~repro.mdv.outbox.Outbox` retry layer — talks to a
:class:`Transport`, never to a concrete implementation.  Two
implementations exist:

- :class:`~repro.net.bus.NetworkBus` — the deterministic in-process
  simulator (synchronous delivery, simulated clock, fault injection).
  It remains the default test transport.
- :class:`~repro.net.socket.SocketTransport` — real asyncio sockets
  speaking the length-prefixed JSON frame protocol of
  :mod:`repro.net.frames`, for MDPs and LMRs running as separate OS
  processes (``python -m repro.mdv serve``).

The contract is deliberately small: named endpoints, synchronous
request/response (``send``), fire-and-forget (``send_one_way``), and a
clock (``now_ms``/``sleep``) that the retry/backoff layers use — the
simulated bus advances a virtual clock, the socket transport consumes
real time.  Failures surface as :class:`~repro.errors.NetworkError`
subclasses on both, so the reliability layers behave identically over
either.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.net.bus import Message

__all__ = ["Transport"]


@runtime_checkable
class Transport(Protocol):
    """Named-endpoint messaging with a clock — the network seam."""

    def register(
        self, name: str, handler: Callable[["Message"], Any]
    ) -> None:
        """Attach an endpoint; re-registration replaces the handler."""
        ...  # pragma: no cover - protocol stub

    def unregister(self, name: str) -> None:
        """Detach an endpoint (no-op when absent)."""
        ...  # pragma: no cover - protocol stub

    def send(
        self, source: str, destination: str, kind: str, payload: Any
    ) -> Any:
        """Deliver a request and return the destination's response.

        Raises a :class:`~repro.errors.NetworkError` subclass when the
        destination is unreachable or the exchange is lost — the
        retryable branch.  Non-network errors mean the destination
        processed and rejected the request.
        """
        ...  # pragma: no cover - protocol stub

    def send_one_way(
        self, source: str, destination: str, kind: str, payload: Any
    ) -> None:
        """Fire-and-forget delivery (no response, no result)."""
        ...  # pragma: no cover - protocol stub

    def now_ms(self) -> float:
        """The transport's clock, in milliseconds (simulated or real)."""
        ...  # pragma: no cover - protocol stub

    def sleep(self, ms: float) -> None:
        """Wait out a backoff window on the transport's clock."""
        ...  # pragma: no cover - protocol stub
