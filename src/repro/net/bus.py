"""A deterministic in-process network simulator.

The paper's MDPs and LMRs are "distributed all over the Internet"; the
evaluation (Section 4), however, benchmarks the filter on a single node.
What the distributed tier needs from the network is delivery semantics
plus cost accounting — both provided here without sockets:

- endpoints register a handler under a name;
- :meth:`NetworkBus.send` delivers synchronously and returns the
  handler's response; a request/response exchange is charged two link
  traversals, a :meth:`NetworkBus.send_one_way` notification one;
- every message advances a simulated clock by the link's latency and
  accumulates byte counts, so examples and tests can quantify the
  benefit of answering queries at the LMR instead of crossing the
  "Internet" to an MDP;
- an optional :class:`~repro.net.faults.FaultPlan` injects drops,
  duplicates, transport errors, delays, endpoint crashes and
  partitions; injected faults are accounted per link in
  :class:`LinkStats` and surface to senders as
  :class:`~repro.errors.NetworkError` subclasses.

Latency defaults model the paper's setting: LAN-local traffic is cheap,
wide-area traffic is two orders of magnitude more expensive.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import DeliveryError, EndpointDownError, NetworkError, WireCodecError
from repro.net.codec import wire_size
from repro.net.faults import FaultDecision, FaultPlan
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["Message", "LinkStats", "NetworkBus"]

#: Default one-way latency for unconfigured links, in simulated ms.
DEFAULT_WAN_LATENCY_MS = 80.0
DEFAULT_LAN_LATENCY_MS = 0.5


@dataclass(frozen=True, slots=True)
class Message:
    """One message on the bus."""

    source: str
    destination: str
    kind: str
    payload: Any

    def approximate_size(self) -> int:
        """The message's wire size in bytes.

        Measured as the serialized JSON length of the payload
        (:func:`repro.net.codec.wire_size`) — the same bytes the socket
        transport puts on a real connection, so simulated and socket
        ``net.bytes`` accounting agree.  Payloads outside the wire
        codec (test doubles, in-process-only objects) fall back to
        their ``approximate_size`` hook, then to ``len(str(...))``.
        """
        try:
            return wire_size(self.payload)
        except WireCodecError:
            payload_size = getattr(self.payload, "approximate_size", None)
            if callable(payload_size):
                return int(payload_size())
            return len(str(self.payload))


@dataclass
class LinkStats:
    """Accumulated traffic and injected faults on one directed link."""

    messages: int = 0
    bytes: int = 0
    latency_ms: float = 0.0
    #: Messages lost in transit by the fault plan.
    dropped: int = 0
    #: Extra deliveries injected by the fault plan.
    duplicated: int = 0
    #: Transport errors signalled to the sender.
    errored: int = 0
    #: Sends that timed out against a crashed or partitioned endpoint.
    timeouts: int = 0
    #: Extra delay injected by the fault plan, in simulated ms.
    fault_delay_ms: float = 0.0

    @property
    def faults(self) -> int:
        return self.dropped + self.duplicated + self.errored + self.timeouts


class NetworkBus:
    """Synchronous message delivery with latency and traffic accounting."""

    def __init__(
        self,
        default_latency_ms: float = DEFAULT_WAN_LATENCY_MS,
        fault_plan: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self._handlers: dict[str, Callable[[Message], Any]] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self.default_latency_ms = default_latency_ms
        self.links: dict[tuple[str, str], LinkStats] = {}
        #: Total simulated network time spent, in ms.
        self.simulated_ms = 0.0
        self.total_messages = 0
        #: Optional fault-injection plan consulted once per message.
        self.faults = fault_plan
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_messages = self.metrics.counter("net.messages")
        self._m_bytes = self.metrics.counter("net.bytes")
        self._m_latency = self.metrics.histogram("net.latency_ms")
        self._m_dropped = self.metrics.counter("net.faults.dropped")
        self._m_duplicated = self.metrics.counter("net.faults.duplicated")
        self._m_errored = self.metrics.counter("net.faults.errored")
        self._m_timeouts = self.metrics.counter("net.faults.timeouts")
        self._g_simulated = self.metrics.gauge("net.simulated_ms")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Callable[[Message], Any]) -> None:
        """Attach an endpoint; re-registration replaces the handler."""
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._handlers)

    def set_latency(self, source: str, destination: str, latency_ms: float,
                    symmetric: bool = True) -> None:
        """Configure per-link latency (e.g. LAN vs WAN links)."""
        self._latency[(source, destination)] = latency_ms
        if symmetric:
            self._latency[(destination, source)] = latency_ms

    def latency(self, source: str, destination: str) -> float:
        return self._latency.get((source, destination), self.default_latency_ms)

    # ------------------------------------------------------------------
    # Simulated time
    # ------------------------------------------------------------------
    def now_ms(self) -> float:
        """The simulated clock (the :class:`Transport` clock contract)."""
        return self.simulated_ms

    def sleep(self, ms: float) -> None:
        """Advance the simulated clock without sending anything.

        Retry/backoff layers use this to wait out backoff windows
        deterministically — no wall time is ever consumed.
        """
        if ms < 0:
            raise ValueError(f"cannot sleep a negative duration: {ms!r}")
        self.simulated_ms += ms
        self._g_simulated.set(self.simulated_ms)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, kind: str, payload: Any) -> Any:
        """Deliver a message; returns the destination handler's response.

        The response trip is charged with the reverse link's latency (a
        request/response exchange costs two traversals).
        """
        return self._deliver(source, destination, kind, payload,
                             round_trip=True)

    def send_one_way(
        self, source: str, destination: str, kind: str, payload: Any
    ) -> None:
        """Fire-and-forget variant (notifications): one traversal."""
        self._deliver(source, destination, kind, payload, round_trip=False)

    def _deliver(self, source: str, destination: str, kind: str,
                 payload: Any, round_trip: bool) -> Any:
        message = Message(source, destination, kind, payload)
        link = self.links.setdefault((source, destination), LinkStats())
        latency = self.latency(source, destination)
        decision = (
            self.faults.decide(source, destination)
            if self.faults is not None
            else FaultDecision()
        )
        if decision.unreachable:
            # The request is charged — it was sent and timed out.
            link.timeouts += 1
            self._m_timeouts.inc()
            self._charge(link, latency, message.approximate_size())
            if self.faults is not None and self.faults.crashed(destination):
                raise EndpointDownError(destination, "crashed")
            if self.faults is not None and self.faults.crashed(source):
                raise EndpointDownError(source, "crashed")
            raise EndpointDownError(destination, "partitioned away")
        handler = self._handlers.get(destination)
        if handler is None:
            raise EndpointDownError(destination, "not registered on the bus")
        if decision.extra_delay_ms:
            link.fault_delay_ms += decision.extra_delay_ms
        self._charge(
            link, latency + decision.extra_delay_ms, message.approximate_size()
        )
        if decision.dropped:
            link.dropped += 1
            self._m_dropped.inc()
            raise DeliveryError(
                f"message {kind!r} from {source!r} to {destination!r} "
                f"was dropped in transit"
            )
        if decision.errored:
            link.errored += 1
            self._m_errored.inc()
            raise NetworkError(
                f"link {source!r} -> {destination!r} signalled a transport "
                f"error for message {kind!r}"
            )
        response = handler(message)
        for _ in range(decision.duplicates):
            # A duplicated packet: delivered again, charged again; its
            # outcome (including receiver-side errors) never affects the
            # original exchange.
            link.duplicated += 1
            self._m_duplicated.inc()
            self._charge(link, latency, message.approximate_size())
            try:
                handler(message)
            except Exception:  # noqa: BLE001 - receiver rejected the dup
                pass
        if round_trip:
            back_latency = self.latency(destination, source)
            back = self.links.setdefault((destination, source), LinkStats())
            back.latency_ms += back_latency
            self.simulated_ms += back_latency
        return response

    def _charge(self, link: LinkStats, latency_ms: float, size: int) -> None:
        link.messages += 1
        link.bytes += size
        link.latency_ms += latency_ms
        self.simulated_ms += latency_ms
        self.total_messages += 1
        self._m_messages.inc()
        self._m_bytes.inc(size)
        self._m_latency.observe(latency_ms)
        self._g_simulated.set(self.simulated_ms)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def publish_link_metrics(self) -> None:
        """Fold the per-link accounting into the metrics registry.

        Aggregate counters are maintained live on the hot path; the
        per-link breakdown (one gauge family per ``source->destination``
        link) is folded on demand so delivery never pays per-link
        instrument lookups.  ``--metrics`` dumps call this before
        snapshotting.
        """
        for (source, destination), stats in self.links.items():
            labels = {"link": f"{source}->{destination}"}
            self.metrics.gauge("net.link.messages", labels).set(stats.messages)
            self.metrics.gauge("net.link.bytes", labels).set(stats.bytes)
            self.metrics.gauge("net.link.latency_ms", labels).set(
                stats.latency_ms
            )
            if stats.faults:
                self.metrics.gauge("net.link.faults", labels).set(stats.faults)

    def stats_summary(self) -> str:
        lines = [
            f"messages={self.total_messages} simulated_ms={self.simulated_ms:.1f}"
        ]
        for (source, destination), stats in sorted(self.links.items()):
            line = (
                f"  {source} -> {destination}: {stats.messages} msgs, "
                f"{stats.bytes} bytes, {stats.latency_ms:.1f} ms"
            )
            if stats.faults:
                line += (
                    f" [faults: {stats.dropped} dropped, "
                    f"{stats.duplicated} duplicated, {stats.errored} errored, "
                    f"{stats.timeouts} timeouts]"
                )
            lines.append(line)
        return "\n".join(lines)

    def reset_stats(self) -> None:
        self.links.clear()
        self.simulated_ms = 0.0
        self.total_messages = 0
