"""A deterministic in-process network simulator.

The paper's MDPs and LMRs are "distributed all over the Internet"; the
evaluation (Section 4), however, benchmarks the filter on a single node.
What the distributed tier needs from the network is delivery semantics
plus cost accounting — both provided here without sockets:

- endpoints register a handler under a name;
- :meth:`NetworkBus.send` delivers synchronously and returns the
  handler's response;
- every message advances a simulated clock by the link's latency and
  accumulates byte counts, so examples and tests can quantify the
  benefit of answering queries at the LMR instead of crossing the
  "Internet" to an MDP.

Latency defaults model the paper's setting: LAN-local traffic is cheap,
wide-area traffic is two orders of magnitude more expensive.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MDVError

__all__ = ["Message", "LinkStats", "NetworkBus"]

#: Default one-way latency for unconfigured links, in simulated ms.
DEFAULT_WAN_LATENCY_MS = 80.0
DEFAULT_LAN_LATENCY_MS = 0.5


@dataclass(frozen=True, slots=True)
class Message:
    """One message on the bus."""

    source: str
    destination: str
    kind: str
    payload: Any

    def approximate_size(self) -> int:
        payload_size = getattr(self.payload, "approximate_size", None)
        if callable(payload_size):
            return int(payload_size())
        return len(str(self.payload))


@dataclass
class LinkStats:
    """Accumulated traffic on one directed link."""

    messages: int = 0
    bytes: int = 0
    latency_ms: float = 0.0


class NetworkBus:
    """Synchronous message delivery with latency and traffic accounting."""

    def __init__(self, default_latency_ms: float = DEFAULT_WAN_LATENCY_MS):
        self._handlers: dict[str, Callable[[Message], Any]] = {}
        self._latency: dict[tuple[str, str], float] = {}
        self.default_latency_ms = default_latency_ms
        self.links: dict[tuple[str, str], LinkStats] = {}
        #: Total simulated network time spent, in ms.
        self.simulated_ms = 0.0
        self.total_messages = 0

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Callable[[Message], Any]) -> None:
        """Attach an endpoint; re-registration replaces the handler."""
        self._handlers[name] = handler

    def unregister(self, name: str) -> None:
        self._handlers.pop(name, None)

    def endpoints(self) -> list[str]:
        return sorted(self._handlers)

    def set_latency(self, source: str, destination: str, latency_ms: float,
                    symmetric: bool = True) -> None:
        """Configure per-link latency (e.g. LAN vs WAN links)."""
        self._latency[(source, destination)] = latency_ms
        if symmetric:
            self._latency[(destination, source)] = latency_ms

    def latency(self, source: str, destination: str) -> float:
        return self._latency.get((source, destination), self.default_latency_ms)

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def send(self, source: str, destination: str, kind: str, payload: Any) -> Any:
        """Deliver a message; returns the destination handler's response.

        The response trip is charged with the same link latency (a
        request/response exchange costs two traversals).
        """
        handler = self._handlers.get(destination)
        if handler is None:
            raise MDVError(f"no endpoint named {destination!r} on the bus")
        message = Message(source, destination, kind, payload)
        link = self.links.setdefault((source, destination), LinkStats())
        latency = self.latency(source, destination)
        link.messages += 1
        link.bytes += message.approximate_size()
        link.latency_ms += latency
        self.simulated_ms += latency
        self.total_messages += 1
        return handler(message)

    def send_one_way(
        self, source: str, destination: str, kind: str, payload: Any
    ) -> None:
        """Fire-and-forget variant (notifications)."""
        self.send(source, destination, kind, payload)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats_summary(self) -> str:
        lines = [
            f"messages={self.total_messages} simulated_ms={self.simulated_ms:.1f}"
        ]
        for (source, destination), stats in sorted(self.links.items()):
            lines.append(
                f"  {source} -> {destination}: {stats.messages} msgs, "
                f"{stats.bytes} bytes, {stats.latency_ms:.1f} ms"
            )
        return "\n".join(lines)

    def reset_stats(self) -> None:
        self.links.clear()
        self.simulated_ms = 0.0
        self.total_messages = 0
