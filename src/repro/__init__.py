"""MDV — a publish & subscribe architecture for distributed metadata management.

A from-scratch Python reproduction of Keidl, Kreutz, Kemper, Kossmann:
*A Publish & Subscribe Architecture for Distributed Metadata Management*
(ICDE 2002).  See README.md for a tour and DESIGN.md for the paper-to-
module mapping.

Quickstart::

    from repro import MetadataProvider, LocalMetadataRepository, objectglobe_schema

    schema = objectglobe_schema()
    mdp = MetadataProvider(schema)
    lmr = LocalMetadataRepository("lmr-passau", mdp)
    lmr.subscribe(
        "search CycleProvider c register c "
        "where c.serverHost contains 'uni-passau.de'"
    )
    # ... register documents at the MDP; the LMR cache stays consistent.
"""

from repro.errors import MDVError
from repro.mdv import (
    Backbone,
    LocalMetadataRepository,
    MDVClient,
    MetadataProvider,
)
from repro.net import NetworkBus
from repro.rdf import (
    Document,
    Literal,
    PropertyDef,
    PropertyKind,
    RefStrength,
    Resource,
    Schema,
    URIRef,
    objectglobe_schema,
    parse_document,
    to_rdfxml,
)
from repro.rules import parse_query, parse_rule

__version__ = "1.0.0"

__all__ = [
    "MDVError",
    "Backbone",
    "LocalMetadataRepository",
    "MDVClient",
    "MetadataProvider",
    "NetworkBus",
    "Document",
    "Literal",
    "PropertyDef",
    "PropertyKind",
    "RefStrength",
    "Resource",
    "Schema",
    "URIRef",
    "objectglobe_schema",
    "parse_document",
    "to_rdfxml",
    "parse_query",
    "parse_rule",
    "__version__",
]
