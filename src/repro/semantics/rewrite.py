"""Registration-time semantic expansion of triggering atoms (S-ToPSS).

The central design decision of the tier: semantics are paid for **when a
rule is registered, not when a document is published**.  A subscription
atom is rewritten into the set of purely syntactic variants the active
degree licenses, and every variant lands as an ordinary row in the
existing triggering index tables (marked ``semantic = 1``).  Both
triggering paths — the paper's SQL joins and the counting matcher —
already give several index rows of one rule OR semantics (any matching
row fires the rule, conjunct counting deduplicates per rule), so the
hot publish path is byte-identical in mechanism and pays zero extra
cost beyond the larger index.

Soundness restrictions (why not every operator gets every degree):

- **Property synonyms** apply to every operator: the predicate is
  unchanged, only the path spelling varies.
- **Value synonyms and taxonomy descendants** apply to non-numeric
  ``=`` atoms only.  An ``!=`` expansion over a synonym pair would be
  an always-true disjunction (``x != a OR x != b``); ordered operators
  have no defined semantics over unordered vocabularies.
- **Affine mappings** apply to ordering atoms (the ``numeric`` flag)
  and to ``=`` atoms whose constant parses as a number.  The subscribed
  constant is pushed through the *inverse* (``(value - offset) /
  scale``) and the comparison flips direction under negative scale;
  equality variants compare the canonically formatted mapped constant
  as a string, exactly like the base row.  ``!=`` is excluded (same
  always-true hazard), ``contains`` is not numeric.
- **Enum mappings** apply to non-numeric ``=`` atoms: every source
  value the mapping sends to the subscribed constant (or one of its
  synonym/taxonomy equivalents) becomes a variant.

Equality constants produced by affine mappings are rendered with
:func:`repro.semantics.store.format_numeric` — equality triggering
compares strings, so ``=`` variants must spell values exactly as a
publisher serializes them.

Instruments (in the caller's registry): per-degree variant counters
``semantics.rewrites.synonyms|taxonomy|mappings``,
``semantics.mapping.applications`` and the ``semantics.rewrite_ms``
histogram; the registry adds the fan-out pair ``semantics.rules_in`` /
``semantics.atoms_out`` at insert time.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.rules.atoms import TriggeringAtom
from repro.semantics.store import SEMANTICS_MODES, SemanticStore, format_numeric

__all__ = ["SemanticExpansion", "SemanticRewriter", "VariantRow"]

#: Comparison direction flips when an affine mapping's scale is
#: negative: ``price <= 10`` with ``price = -2 * discount + 20``
#: becomes ``discount >= 5``.
_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}

#: Operators an affine mapping may rewrite.  ``!=`` would OR two
#: inequalities (always true), ``contains`` is not numeric.
_AFFINE_OPERATORS = ("=", "<", "<=", ">", ">=")

#: Signature of the variant collector threaded through the expanders.
_AddVariant = Callable[["VariantRow", int], None]


@dataclass(frozen=True, slots=True)
class VariantRow:
    """One semantic variant of a predicate atom (one index row set)."""

    operator: str
    prop: str
    value: str
    numeric: bool


@dataclass(frozen=True, slots=True)
class SemanticExpansion:
    """Everything the registry must add for one atom beyond its base rows.

    ``extra_classes`` are taxonomy-licensed extension classes the base
    atom does not already cover; ``variants`` are the predicate variants
    (base predicate excluded).  The full semantic row set is
    ``(base classes ∪ extra_classes) × ({base} ∪ variants)`` minus the
    base rows.
    """

    extra_classes: tuple[str, ...]
    variants: tuple[VariantRow, ...]

    @property
    def is_empty(self) -> bool:
        return not self.extra_classes and not self.variants


class SemanticRewriter:
    """Expand triggering atoms under a fixed ``semantics=`` degree."""

    def __init__(
        self,
        store: SemanticStore,
        mode: str,
        metrics: MetricsRegistry | None = None,
    ):
        if mode not in SEMANTICS_MODES:
            raise ValueError(
                f"semantics must be one of {SEMANTICS_MODES}, got {mode!r}"
            )
        self.store = store
        self.mode = mode
        self.degree = SEMANTICS_MODES.index(mode)
        registry = metrics if metrics is not None else default_registry()
        self._m_synonyms = registry.counter("semantics.rewrites.synonyms")
        self._m_taxonomy = registry.counter("semantics.rewrites.taxonomy")
        self._m_mappings = registry.counter("semantics.rewrites.mappings")
        self._m_applied = registry.counter("semantics.mapping.applications")
        self._m_rewrite_ms = registry.histogram("semantics.rewrite_ms")

    def expand(self, atom: TriggeringAtom) -> SemanticExpansion:
        """The semantic expansion of one atom under the active degree."""
        started = time.perf_counter()
        extra_classes = self._expand_classes(atom)
        variants = self._expand_predicate(atom)
        self._m_rewrite_ms.observe((time.perf_counter() - started) * 1000.0)
        return SemanticExpansion(
            extra_classes=extra_classes, variants=variants
        )

    def _expand_classes(self, atom: TriggeringAtom) -> tuple[str, ...]:
        """Taxonomy descendants of the atom's extension classes."""
        if self.degree < 2:
            return ()
        base = set(atom.extension_classes)
        extra: set[str] = set()
        for cls in atom.extension_classes:
            extra.update(self.store.descendants(cls))
        found = tuple(sorted(extra - base))
        if found:
            self._m_taxonomy.inc(len(found))
        return found

    def _expand_predicate(self, atom: TriggeringAtom) -> tuple[VariantRow, ...]:
        if atom.is_class_only or self.degree < 1:
            return ()
        prop = atom.prop
        operator = atom.operator
        value = atom.value
        assert prop is not None and operator is not None and value is not None
        variants: dict[VariantRow, None] = {}

        def add(row: VariantRow, degree_counter: int) -> None:
            if row.prop == prop and row.operator == operator and (
                row.value == value
            ):
                return  # the base predicate, never a semantic row
            if row not in variants:
                variants[row] = None
                if degree_counter == 1:
                    self._m_synonyms.inc()
                elif degree_counter == 2:
                    self._m_taxonomy.inc()
                else:
                    self._m_mappings.inc()

        prop_synonyms = self.store.synonyms_of("property", prop)
        props = (prop, *prop_synonyms)
        for alias in prop_synonyms:
            add(VariantRow(operator, alias, value, atom.numeric), 1)

        value_synonyms: tuple[str, ...] = ()
        taxonomy_values: tuple[str, ...] = ()
        if operator == "=" and not atom.numeric:
            value_synonyms = self.store.synonyms_of("value", value)
            for p in props:
                for alias in value_synonyms:
                    add(VariantRow("=", p, alias, False), 1)
            if self.degree >= 2:
                seen = {value, *value_synonyms}
                narrower: set[str] = set()
                for v in sorted(seen):
                    narrower.update(self.store.descendants(v))
                taxonomy_values = tuple(sorted(narrower - seen))
                for p in props:
                    for descendant in taxonomy_values:
                        add(VariantRow("=", p, descendant, False), 2)

        if self.degree >= 3:
            self._expand_mappings(
                atom, props, value_synonyms, taxonomy_values, add
            )
        return tuple(variants)

    def _expand_mappings(
        self,
        atom: TriggeringAtom,
        props: tuple[str, ...],
        value_synonyms: tuple[str, ...],
        taxonomy_values: tuple[str, ...],
        add: _AddVariant,
    ) -> None:
        operator = atom.operator
        value = atom.value
        assert operator is not None and value is not None
        for target in props:
            for mapping in self.store.mappings_to(target):
                if mapping.kind == "affine":
                    if operator not in _AFFINE_OPERATORS:
                        continue
                    if not atom.numeric and operator != "=":
                        continue
                    try:
                        constant = float(value)
                    except ValueError:
                        continue
                    mapped = (constant - mapping.offset) / mapping.scale
                    rewritten = operator
                    if mapping.scale < 0:
                        rewritten = _FLIPPED.get(operator, operator)
                    self._m_applied.inc()
                    add(
                        VariantRow(
                            rewritten,
                            mapping.source_property,
                            format_numeric(mapped),
                            atom.numeric,
                        ),
                        3,
                    )
                elif mapping.kind == "enum":
                    if atom.numeric or operator != "=":
                        continue
                    targets = {value, *value_synonyms, *taxonomy_values}
                    for target_value in sorted(targets):
                        for source_value in self.store.enum_sources(
                            mapping.map_id, target_value
                        ):
                            self._m_applied.inc()
                            add(
                                VariantRow(
                                    "=",
                                    mapping.source_property,
                                    source_value,
                                    False,
                                ),
                                3,
                            )
