"""Persistence for the semantic matching tier's vocabulary (S-ToPSS).

The store owns the ``semantic_*`` tables (DDL in
:mod:`repro.storage.schema`) and the invariants the rewriter relies on:

- **Synonym sets** — disjoint sets of interchangeable terms, separately
  for property names and for values.  Registering a set that overlaps
  existing sets merges them (synonymy is transitive here, the classic
  S-ToPSS simplification).
- **Taxonomy** — a DAG of ``narrower → broader`` concept edges with its
  transitive closure *precomputed* in ``semantic_taxonomy_closure``.
  The closure is maintained incrementally on every edge insert (new
  pairs = ancestors-of-broader × descendants-of-narrower), never
  recomputed from scratch, so a rewrite never walks edges at match or
  registration time.  Cycles and self-edges are rejected (MDV071).
- **Mapping functions** — declarative property-to-property conversions:
  ``affine`` (``value_target = scale * value_source + offset``, e.g.
  cents → euros) and ``enum`` (finite value renames).  Non-invertible
  mappings (zero scale, one source value mapped onto two targets) are
  rejected at registration (MDV072); with a schema at hand, affine
  mappings over non-numeric properties are too (MDV073).

The store is mode-free: which degrees are *used* is the rewriter's
business (:mod:`repro.semantics.rewrite`); the vocabulary is a property
of the database, exactly like the trigram index of :mod:`repro.text`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SemanticError
from repro.rdf.schema import Schema
from repro.storage.engine import Database

__all__ = [
    "SEMANTICS_MODES",
    "MappingFunction",
    "SemanticStore",
    "format_numeric",
]

#: Valid values of the ``semantics=`` knob on the registry and the
#: provider.  ``"off"`` is the paper's purely syntactic matching; the
#: other three are the cumulative S-ToPSS degrees: ``"synonyms"`` ⊂
#: ``"taxonomy"`` ⊂ ``"mappings"``.
SEMANTICS_MODES = ("off", "synonyms", "taxonomy", "mappings")


def format_numeric(value: float) -> str:
    """Canonical string form of a mapped numeric constant.

    Equality triggering compares *strings* (both the SQL join and the
    counting matcher's hash index), so a mapped ``=`` constant must be
    rendered exactly as a publisher would render the value: integral
    floats print without a fractional part (``"600"``, not ``"600.0"``).
    """
    if value == int(value):
        return str(int(value))
    return str(value)


@dataclass(frozen=True, slots=True)
class MappingFunction:
    """One registered mapping, as the rewriter consumes it.

    ``affine`` rows use ``scale``/``offset``; ``enum`` rows have their
    value pairs in ``semantic_mapping_values``.
    """

    map_id: int
    source_property: str
    target_property: str
    kind: str
    scale: float
    offset: float


class SemanticStore:
    """Accessors over the ``semantic_*`` vocabulary tables."""

    def __init__(self, db: Database, schema: Schema | None = None):
        self._db = db
        self._schema = schema

    # -- synonym sets ---------------------------------------------------

    def register_synonyms(self, kind: str, terms: list[str]) -> int:
        """Register (or extend) a synonym set; returns its set id.

        Terms already belonging to other sets pull those sets into this
        one — synonym sets stay disjoint.
        """
        if kind not in ("property", "value"):
            raise ValueError(f"synonym kind must be property|value, got {kind!r}")
        if len(set(terms)) < 2:
            raise ValueError("a synonym set needs at least two distinct terms")
        placeholders = ",".join("?" for __ in terms)
        existing = self._db.query_all(
            f"SELECT DISTINCT set_id FROM semantic_synonyms "
            f"WHERE kind = ? AND term IN ({placeholders}) ORDER BY set_id",
            (kind, *terms),
        )
        if existing:
            set_id = int(existing[0][0])
            for row in existing[1:]:
                self._db.execute(
                    "UPDATE semantic_synonyms SET set_id = ? "
                    "WHERE kind = ? AND set_id = ?",
                    (set_id, kind, int(row[0])),
                )
        else:
            max_row = self._db.query_one(
                "SELECT COALESCE(MAX(set_id), 0) FROM semantic_synonyms"
            )
            set_id = int(max_row[0]) + 1 if max_row is not None else 1
        self._db.executemany(
            "INSERT OR IGNORE INTO semantic_synonyms (set_id, kind, term) "
            "VALUES (?, ?, ?)",
            ((set_id, kind, term) for term in terms),
        )
        return set_id

    def synonyms_of(self, kind: str, term: str) -> tuple[str, ...]:
        """The other members of ``term``'s synonym set (sorted)."""
        rows = self._db.query_all(
            "SELECT s2.term FROM semantic_synonyms s1 "
            "JOIN semantic_synonyms s2 "
            "ON s2.set_id = s1.set_id AND s2.kind = s1.kind "
            "WHERE s1.kind = ? AND s1.term = ? AND s2.term != ? "
            "ORDER BY s2.term",
            (kind, term, term),
        )
        return tuple(str(row[0]) for row in rows)

    # -- taxonomy -------------------------------------------------------

    def register_taxonomy_edge(self, narrower: str, broader: str) -> bool:
        """Add a ``narrower → broader`` concept edge, updating the closure.

        Returns ``False`` when the edge already existed.  Raises
        :class:`SemanticError` (MDV071) for self-edges and edges that
        would close a cycle.
        """
        if narrower == broader:
            raise SemanticError(
                f"taxonomy self-edge rejected: {narrower!r}", code="MDV071"
            )
        if self._closure_contains(narrower, broader):
            raise SemanticError(
                f"taxonomy edge {narrower!r} → {broader!r} would create a "
                f"cycle ({broader!r} is already narrower than {narrower!r})",
                code="MDV071",
            )
        cursor = self._db.execute(
            "INSERT OR IGNORE INTO semantic_taxonomy_edges "
            "(narrower, broader) VALUES (?, ?)",
            (narrower, broader),
        )
        if cursor.rowcount == 0:
            return False
        # Incremental closure maintenance: every (new or old) ancestor
        # of the broader end now reaches every descendant of the
        # narrower end.
        ancestors = [broader, *self.ancestors(broader)]
        descendants = [narrower, *self.descendants(narrower)]
        self._db.executemany(
            "INSERT OR IGNORE INTO semantic_taxonomy_closure "
            "(ancestor, descendant) VALUES (?, ?)",
            ((a, d) for a in ancestors for d in descendants),
        )
        return True

    def _closure_contains(self, ancestor: str, descendant: str) -> bool:
        row = self._db.query_one(
            "SELECT 1 FROM semantic_taxonomy_closure "
            "WHERE ancestor = ? AND descendant = ?",
            (ancestor, descendant),
        )
        return row is not None

    def descendants(self, concept: str) -> tuple[str, ...]:
        """All strictly narrower concepts (sorted)."""
        rows = self._db.query_all(
            "SELECT descendant FROM semantic_taxonomy_closure "
            "WHERE ancestor = ? ORDER BY descendant",
            (concept,),
        )
        return tuple(str(row[0]) for row in rows)

    def ancestors(self, concept: str) -> tuple[str, ...]:
        """All strictly broader concepts (sorted)."""
        rows = self._db.query_all(
            "SELECT ancestor FROM semantic_taxonomy_closure "
            "WHERE descendant = ? ORDER BY ancestor",
            (concept,),
        )
        return tuple(str(row[0]) for row in rows)

    def closure_size(self) -> int:
        """Number of (ancestor, descendant) pairs in the closure."""
        row = self._db.query_one(
            "SELECT COUNT(*) FROM semantic_taxonomy_closure"
        )
        return int(row[0]) if row is not None else 0

    def seed_schema_taxonomy(self, schema: Schema) -> int:
        """Import the RDF-Schema class hierarchy as taxonomy edges.

        Every ``subClassOf`` link becomes a ``subclass → superclass``
        edge; returns the number of *new* edges.  Idempotent, so
        providers can seed on every startup.
        """
        added = 0
        for name in schema.class_names():
            superclass = schema.class_def(name).superclass
            if superclass is not None:
                if self.register_taxonomy_edge(name, superclass):
                    added += 1
        return added

    # -- mapping functions ----------------------------------------------

    def register_affine_mapping(
        self,
        source_property: str,
        target_property: str,
        scale: float,
        offset: float = 0.0,
    ) -> int:
        """Register ``value_target = scale * value_source + offset``.

        A subscription constant over the target property is rewritten to
        the inverse, ``(value - offset) / scale``, over the source
        property — hence the invertibility requirement (MDV072).
        """
        if scale == 0.0:
            raise SemanticError(
                f"affine mapping {source_property!r} → {target_property!r} "
                f"with scale 0 is not invertible",
                code="MDV072",
            )
        if self._schema is not None:
            for prop in (source_property, target_property):
                kind = self._property_kinds(prop)
                if kind and not any(k in ("integer", "float") for k in kind):
                    raise SemanticError(
                        f"affine mapping over non-numeric property {prop!r}",
                        code="MDV073",
                    )
        return self._insert_mapping(
            source_property, target_property, "affine", scale, offset
        )

    def register_enum_mapping(
        self,
        source_property: str,
        target_property: str,
        pairs: list[tuple[str, str]],
    ) -> int:
        """Register a finite value rename (source value → target value)."""
        by_source: dict[str, str] = {}
        for source_value, target_value in pairs:
            seen = by_source.get(source_value)
            if seen is not None and seen != target_value:
                raise SemanticError(
                    f"enum mapping {source_property!r} → {target_property!r} "
                    f"maps {source_value!r} onto both {seen!r} and "
                    f"{target_value!r}",
                    code="MDV072",
                )
            by_source[source_value] = target_value
        if not by_source:
            raise ValueError("an enum mapping needs at least one value pair")
        map_id = self._insert_mapping(
            source_property, target_property, "enum", 1.0, 0.0
        )
        self._db.executemany(
            "INSERT OR IGNORE INTO semantic_mapping_values "
            "(map_id, source_value, target_value) VALUES (?, ?, ?)",
            (
                (map_id, source_value, target_value)
                for source_value, target_value in by_source.items()
            ),
        )
        return map_id

    def _insert_mapping(
        self,
        source_property: str,
        target_property: str,
        kind: str,
        scale: float,
        offset: float,
    ) -> int:
        if source_property == target_property:
            raise SemanticError(
                f"mapping from {source_property!r} onto itself", code="MDV073"
            )
        self._db.execute(
            "INSERT OR REPLACE INTO semantic_mappings "
            "(source_property, target_property, kind, scale, offset) "
            "VALUES (?, ?, ?, ?, ?)",
            (source_property, target_property, kind, scale, offset),
        )
        row = self._db.query_one(
            "SELECT map_id FROM semantic_mappings "
            "WHERE source_property = ? AND target_property = ?",
            (source_property, target_property),
        )
        assert row is not None
        return int(row[0])

    def mappings_to(self, target_property: str) -> tuple[MappingFunction, ...]:
        """All mappings whose target is ``target_property`` (ordered)."""
        rows = self._db.query_all(
            "SELECT map_id, source_property, target_property, kind, "
            "scale, offset FROM semantic_mappings "
            "WHERE target_property = ? ORDER BY map_id",
            (target_property,),
        )
        return tuple(
            MappingFunction(
                map_id=int(row[0]),
                source_property=str(row[1]),
                target_property=str(row[2]),
                kind=str(row[3]),
                scale=float(row[4]),
                offset=float(row[5]),
            )
            for row in rows
        )

    def enum_sources(self, map_id: int, target_value: str) -> tuple[str, ...]:
        """Source values an enum mapping sends to ``target_value``."""
        rows = self._db.query_all(
            "SELECT source_value FROM semantic_mapping_values "
            "WHERE map_id = ? AND target_value = ? ORDER BY source_value",
            (map_id, target_value),
        )
        return tuple(str(row[0]) for row in rows)

    def _property_kinds(self, prop: str) -> set[str]:
        """Kinds under which any schema class defines ``prop``."""
        kinds: set[str] = set()
        if self._schema is None:
            return kinds
        for name in self._schema.class_names():
            definition = self._schema.class_def(name).properties.get(prop)
            if definition is not None:
                kinds.add(definition.kind.value)
        return kinds

    # -- statistics -----------------------------------------------------

    def vocabulary_counts(self) -> dict[str, int]:
        """Row counts per vocabulary table (for stats and the advisor)."""
        counts: dict[str, int] = {}
        for key, sql in (
            ("synonym_terms", "SELECT COUNT(*) FROM semantic_synonyms"),
            ("taxonomy_edges", "SELECT COUNT(*) FROM semantic_taxonomy_edges"),
            ("taxonomy_closure", "SELECT COUNT(*) FROM semantic_taxonomy_closure"),
            ("mappings", "SELECT COUNT(*) FROM semantic_mappings"),
            ("mapping_values", "SELECT COUNT(*) FROM semantic_mapping_values"),
        ):
            row = self._db.query_one(sql)
            counts[key] = int(row[0]) if row is not None else 0
        return counts
