"""The semantic matching tier: synonyms, taxonomies, mapping functions.

Implements the three S-ToPSS degrees of semantic pub/sub matching on
top of the paper's purely syntactic filter, as cumulative tiers behind
the ``semantics=off|synonyms|taxonomy|mappings`` knob on
:class:`repro.rules.registry.RuleRegistry` and
:class:`repro.mdv.provider.MetadataProvider`:

- ``synonyms`` — interchangeable property names and values;
- ``taxonomy`` — concept hierarchies with precomputed transitive
  closure, seeded from the RDF-Schema class hierarchy;
- ``mappings`` — declarative value conversions (affine/enum).

All degrees are *registration-time rewrites* into the existing
syntactic triggering tables — the publish hot path is untouched.  See
docs/SEMANTICS.md for the cost model and a worked marketplace example.
"""

from __future__ import annotations

from repro.semantics.oracle import SemanticOracle
from repro.semantics.rewrite import SemanticExpansion, SemanticRewriter, VariantRow
from repro.semantics.store import (
    SEMANTICS_MODES,
    MappingFunction,
    SemanticStore,
    format_numeric,
)

__all__ = [
    "SEMANTICS_MODES",
    "MappingFunction",
    "SemanticExpansion",
    "SemanticOracle",
    "SemanticRewriter",
    "SemanticStore",
    "VariantRow",
    "format_numeric",
]
