"""The naive post-hoc semantic evaluator — the tier's correctness oracle.

The production path never evaluates semantics at match time: atoms are
expanded once at registration and the syntactic engine does the rest.
This module is the deliberately *unoptimized* alternative: given a
resource's raw statement rows and a subscription's **original,
unexpanded** atom, decide semantically whether the resource matches
under a given degree — walking the vocabulary store per evaluation,
no rewriting, no index.

The differential suites (tests/semantics/) publish workloads through
both and require byte-identical match sets across every seed,
triggering knob and parallelism level.  For that to be a fair check the
oracle must mirror the engine's *comparison* semantics exactly, so it
reuses the canonical helpers: string comparison for ``=``/``!=``,
:func:`repro.text.ngrams.contains_match` for ``contains`` and
:func:`repro.filter.counting.sqlite_cast_real` (SQLite's ``CAST``
replica) for the ordered operators — including for constants pushed
through affine mappings, where the engine stores the mapped constant as
a canonically formatted string.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.filter.counting import sqlite_cast_real
from repro.rules.atoms import TriggeringAtom
from repro.semantics.store import SEMANTICS_MODES, SemanticStore, format_numeric
from repro.text.ngrams import contains_match

__all__ = ["SemanticOracle"]

_FLIPPED = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
_AFFINE_OPERATORS = ("=", "<", "<=", ">", ">=")


def _compare(operator: str, published: str, constant: str) -> bool:
    """One syntactic predicate, exactly as the triggering joins do it."""
    if operator == "=":
        return published == constant
    if operator == "!=":
        return published != constant
    if operator == "contains":
        return contains_match(published, constant)
    left = sqlite_cast_real(published)
    right = sqlite_cast_real(constant)
    if operator == "<":
        return left < right
    if operator == "<=":
        return left <= right
    if operator == ">":
        return left > right
    if operator == ">=":
        return left >= right
    raise ValueError(f"unknown operator {operator!r}")


class SemanticOracle:
    """Evaluate original atoms semantically, one resource at a time."""

    def __init__(self, store: SemanticStore, mode: str):
        if mode not in SEMANTICS_MODES:
            raise ValueError(
                f"semantics must be one of {SEMANTICS_MODES}, got {mode!r}"
            )
        self.store = store
        self.mode = mode
        self.degree = SEMANTICS_MODES.index(mode)

    def class_matches(self, atom: TriggeringAtom, rdf_class: str) -> bool:
        """Is ``rdf_class`` in the atom's (semantic) class extension?"""
        if rdf_class in atom.extension_classes:
            return True
        if self.degree < 2:
            return False
        return any(
            rdf_class in self.store.descendants(cls)
            for cls in atom.extension_classes
        )

    def matches_resource(
        self,
        atom: TriggeringAtom,
        rdf_class: str,
        rows: Sequence[tuple[str, str]],
    ) -> bool:
        """Does a resource (class + ``(property, value)`` rows) match?"""
        if not self.class_matches(atom, rdf_class):
            return False
        if atom.is_class_only:
            return True
        prop = atom.prop
        operator = atom.operator
        constant = atom.value
        assert prop is not None and operator is not None and constant is not None
        props = {prop}
        if self.degree >= 1:
            props.update(self.store.synonyms_of("property", prop))
        equality_values = self._equality_values(atom)
        for published_prop, published_value in rows:
            if published_prop in props:
                if equality_values is not None:
                    if published_value in equality_values:
                        return True
                elif _compare(operator, published_value, constant):
                    return True
            if self.degree >= 3 and self._mapping_matches(
                atom, props, equality_values, published_prop, published_value
            ):
                return True
        return False

    def _equality_values(self, atom: TriggeringAtom) -> set[str] | None:
        """The accepted constants of an expandable ``=`` atom.

        ``None`` means the atom's comparison is not value-expandable
        (numeric, or not ``=``) and must run as a plain comparison.
        """
        if atom.operator != "=" or atom.numeric or self.degree < 1:
            return None
        assert atom.value is not None
        accepted = {atom.value}
        accepted.update(self.store.synonyms_of("value", atom.value))
        if self.degree >= 2:
            for value in sorted(accepted):
                accepted.update(self.store.descendants(value))
        return accepted

    def _mapping_matches(
        self,
        atom: TriggeringAtom,
        props: set[str],
        equality_values: set[str] | None,
        published_prop: str,
        published_value: str,
    ) -> bool:
        operator = atom.operator
        constant = atom.value
        assert operator is not None and constant is not None
        for target in sorted(props):
            for mapping in self.store.mappings_to(target):
                if mapping.source_property != published_prop:
                    continue
                if mapping.kind == "affine":
                    if operator not in _AFFINE_OPERATORS:
                        continue
                    if not atom.numeric and operator != "=":
                        continue
                    try:
                        parsed = float(constant)
                    except ValueError:
                        continue
                    mapped = (parsed - mapping.offset) / mapping.scale
                    rewritten = operator
                    if mapping.scale < 0:
                        rewritten = _FLIPPED.get(operator, operator)
                    if _compare(
                        rewritten, published_value, format_numeric(mapped)
                    ):
                        return True
                elif mapping.kind == "enum":
                    if atom.numeric or operator != "=":
                        continue
                    targets = (
                        equality_values
                        if equality_values is not None
                        else {constant}
                    )
                    for target_value in sorted(targets):
                        if published_value in self.store.enum_sources(
                            mapping.map_id, target_value
                        ):
                            return True
        return False
