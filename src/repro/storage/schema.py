"""Physical database design for the filter algorithm (paper, Section 3.3.4).

The paper calls the physical design "a key concept to an efficient filter
implementation": the filter tables act as *indexes to all triggering
rules affected by newly registered metadata*, and the tables themselves
carry database-level indexes.  This module holds the complete DDL.

Table inventory (paper name → ours):

- ``FilterData``      → ``filter_data``: the persistent atom store; one
  row per RDF statement plus one identity row (``rdf#subject``) per
  resource (Figure 4).
- *(input batch)*     → ``filter_input``: the transient atoms a single
  filter run takes as input.  The paper feeds "the document atoms" to the
  filter; updates/deletions require feeding *old* versions that are no
  longer in ``filter_data``, hence a separate input table.
- ``AtomicRules``     → ``atomic_rules``: all atomic rules, deduplicated
  by canonical rule text (Figure 7).  Join rules carry their two input
  rules and their rule group.
- ``RuleDependencies``→ ``rule_dependencies``: the global dependency
  graph; the target's group id is denormalized here "for efficiency
  reasons", exactly as the paper describes.
- ``RuleGroups``      → ``rule_groups``: shared join shapes (Figure 6).
- ``FilterRules`` / ``FilterRulesOP`` → ``filter_rules_class`` plus one
  ``filter_rules_<op>`` table per comparison operator (Figure 8 shows
  ``FilterRulesGT`` and ``FilterRulesCON``).  Constants are stored as
  strings and re-converted when joining, as in the paper.
- ``ResultObjects``   → ``result_objects``: per-run iteration results
  (Figure 9).
- *(materialization)* → ``materialized``: the materialized results of
  every atomic rule; the paper notes that "with join rules complete
  incremental evaluation is not possible, so the results of atomic rules
  join rules depend on are materialized".
- ``subscriptions`` / ``subscription_rules``: which subscriber registered
  which rule, and which atomic rules each subscription contributed to
  (reference counts drive unsubscription cleanup).
- ``rule_canon``: canonical-form hash → end rule, maintained when the
  registry's ``dedupe`` knob is active so semantically equivalent rules
  can share one triggering entry (repro.analysis.rulebase).
- ``documents`` / ``resources``: registered documents and the
  resource → document mapping used when publishing content.
- ``semantic_*``: the vocabulary store of the semantic matching tier
  (repro.semantics) — synonym sets, the taxonomy edge list with its
  precomputed transitive closure, and declarative mapping functions.
  Rows these produce in the triggering tables carry ``semantic = 1`` so
  atom reconstruction can recover the subscriber's original predicate.
"""

from __future__ import annotations

from repro.storage.engine import Database
from repro.text.ngrams import TRIGRAM_LENGTH

__all__ = [
    "create_all",
    "COMPARISON_TABLES",
    "SEMANTIC_TABLES",
    "TRIGGER_TABLES",
    "TEXT_TABLES",
    "filter_rules_table",
]

#: Comparison operators of the rule language that have their own
#: triggering-rule index table, mapped to the table name suffix.
COMPARISON_TABLES = {
    "=": "filter_rules_eq",
    "!=": "filter_rules_ne",
    "<": "filter_rules_lt",
    "<=": "filter_rules_le",
    ">": "filter_rules_gt",
    ">=": "filter_rules_ge",
    "contains": "filter_rules_con",
}

#: All triggering-rule index tables, including the predicate-free one.
#: The trigram tables below are deliberately *not* part of this tuple:
#: every ``contains`` rule keeps its ``filter_rules_con`` row, so the
#: invariant auditor and atom reconstruction stay complete without them.
TRIGGER_TABLES = ("filter_rules_class", *COMPARISON_TABLES.values())

#: The trigram index over ``contains``-rule needles (repro.text),
#: replicated into triggering shards alongside :data:`TRIGGER_TABLES`.
TEXT_TABLES = ("filter_rules_con_tri", "text_postings")

#: The vocabulary tables of the semantic matching tier (repro.semantics).
SEMANTIC_TABLES = (
    "semantic_synonyms",
    "semantic_taxonomy_edges",
    "semantic_taxonomy_closure",
    "semantic_mappings",
    "semantic_mapping_values",
)


def filter_rules_table(operator: str) -> str:
    """The index table holding triggering rules with ``operator``."""
    try:
        return COMPARISON_TABLES[operator]
    except KeyError:
        raise ValueError(f"no triggering index table for operator {operator!r}")


_DDL = """
CREATE TABLE IF NOT EXISTS documents (
    uri           TEXT PRIMARY KEY,
    xml           TEXT NOT NULL,
    registered_at INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS resources (
    uri_reference TEXT PRIMARY KEY,
    class         TEXT NOT NULL,
    document_uri  TEXT NOT NULL REFERENCES documents(uri) ON DELETE CASCADE
);
CREATE INDEX IF NOT EXISTS idx_resources_document
    ON resources(document_uri);

CREATE TABLE IF NOT EXISTS filter_data (
    uri_reference TEXT NOT NULL,
    class         TEXT NOT NULL,
    property      TEXT NOT NULL,
    value         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_fd_class_prop_value
    ON filter_data(class, property, value);
CREATE INDEX IF NOT EXISTS idx_fd_uri_prop
    ON filter_data(uri_reference, property);
CREATE INDEX IF NOT EXISTS idx_fd_prop_value
    ON filter_data(property, value);

CREATE TABLE IF NOT EXISTS filter_input (
    uri_reference TEXT NOT NULL,
    class         TEXT NOT NULL,
    property      TEXT NOT NULL,
    value         TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_fi_class_prop
    ON filter_input(class, property);

CREATE TABLE IF NOT EXISTS atomic_rules (
    rule_id    INTEGER PRIMARY KEY AUTOINCREMENT,
    kind       TEXT NOT NULL CHECK (kind IN ('triggering', 'join')),
    rule_text  TEXT NOT NULL UNIQUE,
    class      TEXT NOT NULL,
    left_rule  INTEGER REFERENCES atomic_rules(rule_id),
    right_rule INTEGER REFERENCES atomic_rules(rule_id),
    group_id   INTEGER,
    refcount   INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_ar_group ON atomic_rules(group_id);
CREATE INDEX IF NOT EXISTS idx_ar_left_right
    ON atomic_rules(left_rule, right_rule);
CREATE INDEX IF NOT EXISTS idx_ar_right_left
    ON atomic_rules(right_rule, left_rule);

CREATE TABLE IF NOT EXISTS rule_dependencies (
    source_rule INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    target_rule INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    side        TEXT NOT NULL CHECK (side IN ('left', 'right')),
    group_id    INTEGER,
    PRIMARY KEY (source_rule, target_rule, side)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_rd_source ON rule_dependencies(source_rule);
CREATE INDEX IF NOT EXISTS idx_rd_target ON rule_dependencies(target_rule);

CREATE TABLE IF NOT EXISTS rule_groups (
    group_id       INTEGER PRIMARY KEY AUTOINCREMENT,
    signature      TEXT NOT NULL UNIQUE,
    left_class     TEXT NOT NULL,
    right_class    TEXT NOT NULL,
    left_property  TEXT,
    right_property TEXT,
    operator       TEXT NOT NULL,
    register_side  TEXT NOT NULL CHECK (register_side IN ('left', 'right')),
    numeric_compare INTEGER NOT NULL DEFAULT 0,
    self_join      INTEGER NOT NULL DEFAULT 0
);

CREATE TABLE IF NOT EXISTS named_rules (
    name      TEXT PRIMARY KEY,
    rule_text TEXT NOT NULL,
    end_rule  INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    class     TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS filter_rules_class (
    rule_id  INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    class    TEXT NOT NULL,
    semantic INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (rule_id, class)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_frc_class ON filter_rules_class(class);

CREATE TABLE IF NOT EXISTS result_objects (
    uri_reference TEXT NOT NULL,
    rule_id       INTEGER NOT NULL,
    iteration     INTEGER NOT NULL,
    PRIMARY KEY (uri_reference, rule_id, iteration)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_ro_iter_rule
    ON result_objects(iteration, rule_id);
CREATE INDEX IF NOT EXISTS idx_ro_rule
    ON result_objects(rule_id, uri_reference);

CREATE TABLE IF NOT EXISTS materialized (
    rule_id       INTEGER NOT NULL,
    uri_reference TEXT NOT NULL,
    PRIMARY KEY (rule_id, uri_reference)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_mat_uri ON materialized(uri_reference);

CREATE TABLE IF NOT EXISTS subscriptions (
    sub_id        INTEGER PRIMARY KEY AUTOINCREMENT,
    subscriber    TEXT NOT NULL,
    rule_text     TEXT NOT NULL,
    end_rule      INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    registered_at INTEGER NOT NULL DEFAULT 0,
    UNIQUE (subscriber, rule_text)
);
CREATE INDEX IF NOT EXISTS idx_subs_end_rule ON subscriptions(end_rule);

CREATE TABLE IF NOT EXISTS subscription_rules (
    sub_id  INTEGER NOT NULL REFERENCES subscriptions(sub_id) ON DELETE CASCADE,
    rule_id INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    PRIMARY KEY (sub_id, rule_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_sr_rule ON subscription_rules(rule_id);

CREATE TABLE IF NOT EXISTS rule_canon (
    canon_hash TEXT PRIMARY KEY,
    rule_id    INTEGER NOT NULL REFERENCES atomic_rules(rule_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_rc_rule ON rule_canon(rule_id);

-- Durable-state tables (docs/DURABILITY.md).  ``doc_versions`` persists
-- the provider's per-document (counter, origin) version vector entries,
-- tombstones included, so a restarted provider keeps ordering
-- anti-entropy correctly.  ``outbox_messages`` is the transactional
-- outbox: notification batches are written here in the same transaction
-- as the filter run that produced them, then delivered (and marked)
-- after commit — a crash between commit and delivery re-sends them,
-- never invents or loses them.  ``dedup_entries`` persists a receiver's
-- (source, seq) exactly-once index.
CREATE TABLE IF NOT EXISTS doc_versions (
    document_uri TEXT PRIMARY KEY,
    counter      INTEGER NOT NULL,
    origin       TEXT NOT NULL
);

CREATE TABLE IF NOT EXISTS outbox_messages (
    destination TEXT NOT NULL,
    seq         INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    payload     BLOB NOT NULL,
    delivered   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (destination, seq)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_om_undelivered
    ON outbox_messages(destination, seq) WHERE delivered = 0;

CREATE TABLE IF NOT EXISTS dedup_entries (
    source TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    PRIMARY KEY (source, seq)
) WITHOUT ROWID;

-- Semantic-tier vocabulary (repro.semantics, docs/SEMANTICS.md).
-- ``semantic_synonyms`` holds synonym sets: every term of a set shares
-- one ``set_id``; ``kind`` separates property-name synonyms from value
-- synonyms.  ``semantic_taxonomy_edges`` is the user-visible
-- broader/narrower edge list; ``semantic_taxonomy_closure`` its
-- precomputed transitive closure (maintained incrementally on edge
-- insert, never recomputed from scratch on the hot path).
-- ``semantic_mappings`` declares property-to-property mapping
-- functions: affine numeric conversions (value_dst = scale * value_src
-- + offset) or enumerated renames with pairs in
-- ``semantic_mapping_values``.
CREATE TABLE IF NOT EXISTS semantic_synonyms (
    set_id INTEGER NOT NULL,
    kind   TEXT NOT NULL CHECK (kind IN ('property', 'value')),
    term   TEXT NOT NULL,
    PRIMARY KEY (kind, term)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_ss_set ON semantic_synonyms(set_id, kind);

CREATE TABLE IF NOT EXISTS semantic_taxonomy_edges (
    narrower TEXT NOT NULL,
    broader  TEXT NOT NULL,
    PRIMARY KEY (narrower, broader)
) WITHOUT ROWID;

CREATE TABLE IF NOT EXISTS semantic_taxonomy_closure (
    ancestor   TEXT NOT NULL,
    descendant TEXT NOT NULL,
    PRIMARY KEY (ancestor, descendant)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_stc_descendant
    ON semantic_taxonomy_closure(descendant);

CREATE TABLE IF NOT EXISTS semantic_mappings (
    map_id          INTEGER PRIMARY KEY AUTOINCREMENT,
    source_property TEXT NOT NULL,
    target_property TEXT NOT NULL,
    kind            TEXT NOT NULL CHECK (kind IN ('affine', 'enum')),
    scale           REAL NOT NULL DEFAULT 1.0,
    offset          REAL NOT NULL DEFAULT 0.0,
    UNIQUE (source_property, target_property)
);
CREATE INDEX IF NOT EXISTS idx_sm_target ON semantic_mappings(target_property);

CREATE TABLE IF NOT EXISTS semantic_mapping_values (
    map_id       INTEGER NOT NULL REFERENCES semantic_mappings(map_id)
                 ON DELETE CASCADE,
    source_value TEXT NOT NULL,
    target_value TEXT NOT NULL,
    PRIMARY KEY (map_id, target_value, source_value)
) WITHOUT ROWID;
"""

#: The trigram index of :mod:`repro.text`: ``filter_rules_con_tri``
#: mirrors the indexable subset of ``filter_rules_con`` plus the
#: needle's distinct trigram count; ``text_postings`` is the inverted
#: index (probes ship the value's trigrams as a ``json_each`` parameter,
#: so no scratch table exists).
_TEXT_DDL = """
CREATE TABLE IF NOT EXISTS filter_rules_con_tri (
    rule_id       INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    class         TEXT NOT NULL,
    property      TEXT NOT NULL,
    value         TEXT NOT NULL,
    trigram_count INTEGER NOT NULL,
    PRIMARY KEY (rule_id, class, property)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_frct_class_prop
    ON filter_rules_con_tri(class, property);

CREATE TABLE IF NOT EXISTS text_postings (
    trigram TEXT NOT NULL,
    rule_id INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    PRIMARY KEY (trigram, rule_id)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_tp_rule ON text_postings(rule_id);

-- Partial index for the trigram mode's short-needle fallback: the scan
-- join restricted to ``length(fr.value) < {length}`` would otherwise
-- walk every contains rule of the (class, property) just to discard
-- the indexable ones.  The predicate text must stay identical to the
-- matcher's fallback condition for the planner to use it.
CREATE INDEX IF NOT EXISTS idx_frcon_short
    ON filter_rules_con(class, property, value)
    WHERE length(value) < {length};
"""

_OP_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS {table} (
    rule_id  INTEGER NOT NULL REFERENCES atomic_rules(rule_id),
    class    TEXT NOT NULL,
    property TEXT NOT NULL,
    value    TEXT NOT NULL,
    numeric  INTEGER NOT NULL DEFAULT 0,
    semantic INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (rule_id, class, property, value)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS idx_{table}
    ON {table}(class, property, value);
"""


def create_all(db: Database) -> None:
    """Create every table and index of the MDP store (idempotent)."""
    db.executescript(_DDL)
    for table in COMPARISON_TABLES.values():
        db.executescript(_OP_TABLE_DDL.format(table=table))
    db.executescript(_TEXT_DDL.format(length=TRIGRAM_LENGTH))
    db.commit()
