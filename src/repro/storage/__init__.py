"""Relational storage layer.

The paper implements its filter "using a standard relational database
system thereby taking advantage of their matured storing, indexing, and
querying abilities" (Section 1).  This package provides the SQLite-backed
equivalent: a small engine wrapper, the complete physical schema of
Section 3.3.4, and typed accessors for the bookkeeping tables.
"""

from repro.storage.engine import Database
from repro.storage.schema import (
    COMPARISON_TABLES,
    TRIGGER_TABLES,
    create_all,
    filter_rules_table,
)
from repro.storage.tables import (
    AtomRow,
    DocumentTable,
    FilterDataTable,
    FilterInputTable,
    MaterializedTable,
    ResourceTable,
    ResultObjectsTable,
)

__all__ = [
    "Database",
    "create_all",
    "COMPARISON_TABLES",
    "TRIGGER_TABLES",
    "filter_rules_table",
    "AtomRow",
    "DocumentTable",
    "ResourceTable",
    "FilterDataTable",
    "FilterInputTable",
    "ResultObjectsTable",
    "MaterializedTable",
]
