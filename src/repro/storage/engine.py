"""A thin, explicit wrapper around :mod:`sqlite3`.

The paper's filter algorithm is "solely based on standard relational
database technology" (Section 3); the prototype used a major commercial
RDBMS via JDBC.  This reproduction uses SQLite — the algorithm is plain
SQL over indexed tables, so any engine with B-tree indexes exercises the
same access paths (see DESIGN.md, substitutions).

:class:`Database` adds the small amount of policy the rest of the library
wants:

- dict-like row access (``sqlite3.Row``),
- explicit transactions via :meth:`transaction`,
- pragmas tuned for an embedded workload,
- helpers (:meth:`query_all`, :meth:`query_one`, :meth:`scalar`) that
  keep call sites one-liners,
- :meth:`clone` using the SQLite backup API, which the benchmark harness
  uses to restore a prepared rule base between measurements without
  paying rule registration again (and which provider snapshots reuse),
- a ``durability`` knob selecting the pragma profile
  (:func:`repro.storage.durability.pragmas_for`): ``"fast"`` for
  in-memory measurement runs, ``"safe"`` (WAL + ``synchronous=NORMAL``)
  for stores that must survive process death,
- crash-point injection: an armed
  :class:`~repro.storage.durability.CrashPlan` is consulted at every
  statement and commit boundary and tears the open transaction away
  with a :class:`~repro.errors.CrashError` when it fires,
- statement/row accounting into a :class:`~repro.obs.MetricsRegistry`
  (``storage.statements``, ``storage.rows_read``,
  ``storage.rows_written``) so filter cost is attributable to actual
  database work, not just wall time.
"""

from __future__ import annotations

import sqlite3
import threading
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

from repro.errors import CrashError, StorageError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.durability import CrashPlan, pragmas_for

__all__ = ["Database"]


class Database:
    """A connection to one MDV store (an MDP's or an LMR's database)."""

    def __init__(
        self,
        path: str = ":memory:",
        metrics: MetricsRegistry | None = None,
        check_same_thread: bool = True,
        durability: str = "fast",
    ):
        self.path = path
        #: Selected pragma profile ("fast" or "safe"); clones inherit it.
        self.durability = durability
        pragmas = pragmas_for(path, durability)  # validates the knob
        try:
            # sqlite3 connections are thread-affine; the check stays on
            # by default.  ``check_same_thread=False`` is for callers
            # that serialize access themselves (e.g. the concurrency
            # stress tests) — SQLite objects are still not safe for
            # unsynchronized concurrent use (docs/CONCURRENCY.md).
            self._connection = sqlite3.connect(
                path, check_same_thread=check_same_thread
            )
        except sqlite3.Error as exc:  # pragma: no cover - environment issue
            raise StorageError(f"cannot open database {path!r}: {exc}") from exc
        self._connection.row_factory = sqlite3.Row
        for pragma in pragmas:
            self._connection.execute(pragma)
        self._in_transaction = False
        self._transaction_owner: int | None = None
        self._savepoint_serial = 0
        self._crash_plan: CrashPlan | None = None
        # Instrument handles are resolved once; every statement then
        # pays one attribute-add, keeping the hot path hot.
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_statements = self.metrics.counter("storage.statements")
        self._m_rows_read = self.metrics.counter("storage.rows_read")
        self._m_rows_written = self.metrics.counter("storage.rows_written")
        self._m_transactions = self.metrics.counter("storage.transactions")
        self._m_crashes = self.metrics.counter("storage.crash.injected")
        self._m_crash_armed = self.metrics.counter("storage.crash.armed")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None  # type: ignore[assignment]

    def __enter__(self) -> Database:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection (escape hatch for advanced callers)."""
        if self._connection is None:
            raise StorageError("database is closed")
        return self._connection

    def clone(
        self, path: str | None = None, durability: str | None = None
    ) -> Database:
        """A full copy of this database (SQLite backup API).

        Used by the benchmark harness (prepare an expensive rule base
        once, restore a pristine copy per measurement point) and by
        provider snapshots.  ``path`` selects the destination —
        ``:memory:`` by default, a file path for a durable snapshot; an
        existing destination database file is overwritten.  Call it at a
        quiescent point: cloning mid-transaction would snapshot
        uncommitted state.
        """
        if self._connection is None:
            raise StorageError(
                f"cannot clone a closed database (source {self.path!r})"
            )
        duplicate = Database(
            path if path is not None else ":memory:",
            metrics=self.metrics,
            durability=durability if durability is not None else self.durability,
        )
        self.connection.backup(duplicate.connection)
        return duplicate

    # ------------------------------------------------------------------
    # Crash injection (fault-injection harness; see docs/DURABILITY.md)
    # ------------------------------------------------------------------
    @property
    def crash_plan(self) -> CrashPlan | None:
        """The armed crash plan, if any."""
        return self._crash_plan

    def install_crash_plan(self, plan: CrashPlan) -> None:
        """Arm ``plan``: every statement/commit boundary consults it."""
        self._crash_plan = plan
        self._m_crash_armed.inc()

    def clear_crash_plan(self) -> None:
        """Disarm crash injection (a simulated restart discards the plan)."""
        self._crash_plan = None

    def _crash(self, boundary: str, ordinal: int) -> None:
        """Inject the crash: discard the open transaction and raise."""
        self._m_crashes.inc()
        if self._connection is not None:
            self._connection.rollback()
        raise CrashError(boundary, ordinal)

    def _statement_boundary(self) -> None:
        plan = self._crash_plan
        if plan is not None and plan.on_statement():
            self._crash("statement", plan.statements_seen)

    def _commit_boundary(self) -> None:
        plan = self._crash_plan
        if plan is not None and plan.on_commit():
            self._crash("commit", plan.commits_seen)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> sqlite3.Cursor:
        """Execute one statement, translating engine errors."""
        self._statement_boundary()
        try:
            cursor = self.connection.execute(sql, parameters)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc}\nSQL: {sql}") from exc
        self._m_statements.inc()
        if cursor.rowcount > 0:  # -1 for SELECTs
            self._m_rows_written.inc(cursor.rowcount)
        return cursor

    def executemany(
        self, sql: str, parameter_rows: Iterable[Sequence[Any]]
    ) -> sqlite3.Cursor:
        """Execute one statement for many parameter rows."""
        self._statement_boundary()
        try:
            cursor = self.connection.executemany(sql, parameter_rows)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc}\nSQL: {sql}") from exc
        self._m_statements.inc()
        if cursor.rowcount > 0:
            self._m_rows_written.inc(cursor.rowcount)
        return cursor

    def executescript(self, script: str) -> None:
        """Execute a multi-statement script (DDL).

        Refused inside a :meth:`transaction` block: ``executescript``
        issues an implicit COMMIT first, which would silently persist
        the block's partial work.
        """
        if self._in_transaction:
            raise StorageError(
                "executescript() inside a transaction() block would "
                "implicitly commit its partial work; run DDL outside "
                "explicit transactions"
            )
        try:
            self.connection.executescript(script)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc}\nscript: {script[:200]}...") from exc

    @contextmanager
    def transaction(self) -> Iterator[Database]:
        """Run a block atomically.

        The top-level block opens one SQLite transaction, committed on
        normal exit and rolled back on any exception.  Nested
        invocations from the *same* thread join it through a SAVEPOINT:
        their work commits with the outer block, but a raising nested
        block is guaranteed to roll back its own writes (``ROLLBACK
        TO``) instead of leaving half its work inside the outer
        transaction.  Nested invocations from a *different* thread are
        rejected with a diagnostic — two threads sharing one connection
        would silently commit each other's partial work (SQLite has a
        single transaction per connection).
        """
        if self._in_transaction:
            if threading.get_ident() != self._transaction_owner:
                raise StorageError(
                    "nested transaction() from a different thread: the "
                    "connection's single transaction belongs to thread "
                    f"{self._transaction_owner}; serialize access or give "
                    "each thread its own Database (docs/CONCURRENCY.md)"
                )
            self._savepoint_serial += 1
            name = f"mdv_sp_{self._savepoint_serial}"
            self.connection.execute(f"SAVEPOINT {name}")
            try:
                yield self
            except BaseException:
                # After an injected crash the whole transaction (and its
                # savepoint stack) is already gone — nothing to unwind.
                if self.connection.in_transaction:
                    self.connection.execute(f"ROLLBACK TO {name}")
                    self.connection.execute(f"RELEASE {name}")
                raise
            else:
                if self.connection.in_transaction:
                    self.connection.execute(f"RELEASE {name}")
            return
        self._m_transactions.inc()
        self._in_transaction = True
        self._transaction_owner = threading.get_ident()
        if not self.connection.in_transaction:
            # An explicit BEGIN, so nested SAVEPOINTs always live inside
            # a real transaction (releasing an outermost savepoint would
            # otherwise commit).  When raw statements already opened an
            # implicit transaction, join it — same commit scope as ever.
            self.connection.execute("BEGIN")
        try:
            yield self
        except BaseException:
            self.connection.rollback()
            raise
        else:
            self._commit_boundary()
            self.connection.commit()
        finally:
            self._in_transaction = False
            self._transaction_owner = None

    def commit(self) -> None:
        """Commit outside :meth:`transaction` blocks.

        Inside a block it is rejected: committing mid-block would
        persist partial work and break the block's atomicity (this is
        also what lint MDV065 flags statically).
        """
        if self._in_transaction:
            raise StorageError(
                "commit() inside a transaction() block would persist "
                "partial work; let the block commit on exit"
            )
        self._commit_boundary()
        self.connection.commit()

    def rollback(self) -> None:
        """Discard the open (implicit or explicit) transaction, if any.

        Inside a :meth:`transaction` block it is rejected — raise out of
        the block instead and let the block unwind atomically.
        """
        if self._in_transaction:
            raise StorageError(
                "rollback() inside a transaction() block; raise instead "
                "and let the block roll back atomically"
            )
        self.connection.rollback()

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def query_all(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> list[sqlite3.Row]:
        """All rows of a query."""
        rows = self.execute(sql, parameters).fetchall()
        self._m_rows_read.inc(len(rows))
        return rows

    def query_one(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> sqlite3.Row | None:
        """The first row of a query, or ``None``."""
        row = self.execute(sql, parameters).fetchone()
        if row is not None:
            self._m_rows_read.inc()
        return row

    def scalar(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> Any:
        """The single value of a single-row, single-column query."""
        row = self.query_one(sql, parameters)
        return None if row is None else row[0]

    def count(self, table: str, where: str = "", parameters: Sequence[Any] = ()) -> int:
        """Row count of ``table`` (optionally filtered).

        ``table`` and ``where`` are trusted SQL fragments supplied by
        library code, never by end users.
        """
        suffix = f" WHERE {where}" if where else ""
        return int(self.scalar(f"SELECT COUNT(*) FROM {table}{suffix}", parameters))

    def table_names(self) -> list[str]:
        """Names of all user tables, sorted."""
        rows = self.query_all(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        )
        return [row["name"] for row in rows]

    def explain(self, sql: str, parameters: Sequence[Any] = ()) -> str:
        """The query plan as text (index-usage assertions in tests)."""
        rows = self.query_all(f"EXPLAIN QUERY PLAN {sql}", parameters)
        return "\n".join(row["detail"] for row in rows)
