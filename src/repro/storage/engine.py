"""A thin, explicit wrapper around :mod:`sqlite3`.

The paper's filter algorithm is "solely based on standard relational
database technology" (Section 3); the prototype used a major commercial
RDBMS via JDBC.  This reproduction uses SQLite — the algorithm is plain
SQL over indexed tables, so any engine with B-tree indexes exercises the
same access paths (see DESIGN.md, substitutions).

:class:`Database` adds the small amount of policy the rest of the library
wants:

- dict-like row access (``sqlite3.Row``),
- explicit transactions via :meth:`transaction`,
- pragmas tuned for an embedded workload,
- helpers (:meth:`query_all`, :meth:`query_one`, :meth:`scalar`) that
  keep call sites one-liners,
- :meth:`clone` using the SQLite backup API, which the benchmark harness
  uses to restore a prepared rule base between measurements without
  paying rule registration again,
- statement/row accounting into a :class:`~repro.obs.MetricsRegistry`
  (``storage.statements``, ``storage.rows_read``,
  ``storage.rows_written``) so filter cost is attributable to actual
  database work, not just wall time.
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

from repro.errors import StorageError
from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["Database"]

#: Pragmas applied to every connection.  The benchmark workload is
#: insert/join heavy and single-process; durability is irrelevant for an
#: in-memory reproduction, so sync is off and the journal kept in memory.
_PRAGMAS = (
    "PRAGMA journal_mode = MEMORY",
    "PRAGMA synchronous = OFF",
    "PRAGMA temp_store = MEMORY",
    "PRAGMA cache_size = -65536",  # 64 MiB page cache
    "PRAGMA foreign_keys = ON",
)


class Database:
    """A connection to one MDV store (an MDP's or an LMR's database)."""

    def __init__(
        self,
        path: str = ":memory:",
        metrics: MetricsRegistry | None = None,
        check_same_thread: bool = True,
    ):
        self.path = path
        try:
            # sqlite3 connections are thread-affine; the check stays on
            # by default.  ``check_same_thread=False`` is for callers
            # that serialize access themselves (e.g. the concurrency
            # stress tests) — SQLite objects are still not safe for
            # unsynchronized concurrent use (docs/CONCURRENCY.md).
            self._connection = sqlite3.connect(
                path, check_same_thread=check_same_thread
            )
        except sqlite3.Error as exc:  # pragma: no cover - environment issue
            raise StorageError(f"cannot open database {path!r}: {exc}") from exc
        self._connection.row_factory = sqlite3.Row
        for pragma in _PRAGMAS:
            self._connection.execute(pragma)
        self._in_transaction = False
        # Instrument handles are resolved once; every statement then
        # pays one attribute-add, keeping the hot path hot.
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_statements = self.metrics.counter("storage.statements")
        self._m_rows_read = self.metrics.counter("storage.rows_read")
        self._m_rows_written = self.metrics.counter("storage.rows_written")
        self._m_transactions = self.metrics.counter("storage.transactions")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None  # type: ignore[assignment]

    def __enter__(self) -> Database:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def connection(self) -> sqlite3.Connection:
        """The raw connection (escape hatch for advanced callers)."""
        if self._connection is None:
            raise StorageError("database is closed")
        return self._connection

    def clone(self) -> Database:
        """A full copy of this database (SQLite backup API).

        Used by the benchmark harness: prepare an expensive rule base
        once, then restore a pristine copy for every measurement point.
        """
        duplicate = Database(":memory:", metrics=self.metrics)
        self.connection.backup(duplicate.connection)
        return duplicate

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> sqlite3.Cursor:
        """Execute one statement, translating engine errors."""
        try:
            cursor = self.connection.execute(sql, parameters)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc}\nSQL: {sql}") from exc
        self._m_statements.inc()
        if cursor.rowcount > 0:  # -1 for SELECTs
            self._m_rows_written.inc(cursor.rowcount)
        return cursor

    def executemany(
        self, sql: str, parameter_rows: Iterable[Sequence[Any]]
    ) -> sqlite3.Cursor:
        """Execute one statement for many parameter rows."""
        try:
            cursor = self.connection.executemany(sql, parameter_rows)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc}\nSQL: {sql}") from exc
        self._m_statements.inc()
        if cursor.rowcount > 0:
            self._m_rows_written.inc(cursor.rowcount)
        return cursor

    def executescript(self, script: str) -> None:
        """Execute a multi-statement script (DDL)."""
        try:
            self.connection.executescript(script)
        except sqlite3.Error as exc:
            raise StorageError(f"{exc}\nscript: {script[:200]}...") from exc

    @contextmanager
    def transaction(self) -> Iterator[Database]:
        """Run a block atomically.

        Nested invocations join the outer transaction (SQLite has no real
        nested transactions and the library does not need savepoints).
        """
        if self._in_transaction:
            yield self
            return
        self._m_transactions.inc()
        self._in_transaction = True
        try:
            yield self
        except BaseException:
            self.connection.rollback()
            raise
        else:
            self.connection.commit()
        finally:
            self._in_transaction = False

    def commit(self) -> None:
        self.connection.commit()

    # ------------------------------------------------------------------
    # Query helpers
    # ------------------------------------------------------------------
    def query_all(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> list[sqlite3.Row]:
        """All rows of a query."""
        rows = self.execute(sql, parameters).fetchall()
        self._m_rows_read.inc(len(rows))
        return rows

    def query_one(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> sqlite3.Row | None:
        """The first row of a query, or ``None``."""
        row = self.execute(sql, parameters).fetchone()
        if row is not None:
            self._m_rows_read.inc()
        return row

    def scalar(
        self, sql: str, parameters: Sequence[Any] | dict[str, Any] = ()
    ) -> Any:
        """The single value of a single-row, single-column query."""
        row = self.query_one(sql, parameters)
        return None if row is None else row[0]

    def count(self, table: str, where: str = "", parameters: Sequence[Any] = ()) -> int:
        """Row count of ``table`` (optionally filtered).

        ``table`` and ``where`` are trusted SQL fragments supplied by
        library code, never by end users.
        """
        suffix = f" WHERE {where}" if where else ""
        return int(self.scalar(f"SELECT COUNT(*) FROM {table}{suffix}", parameters))

    def table_names(self) -> list[str]:
        """Names of all user tables, sorted."""
        rows = self.query_all(
            "SELECT name FROM sqlite_master WHERE type = 'table' ORDER BY name"
        )
        return [row["name"] for row in rows]

    def explain(self, sql: str, parameters: Sequence[Any] = ()) -> str:
        """The query plan as text (index-usage assertions in tests)."""
        rows = self.query_all(f"EXPLAIN QUERY PLAN {sql}", parameters)
        return "\n".join(row["detail"] for row in rows)
