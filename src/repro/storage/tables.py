"""Typed accessors for the document/atom side of the store.

The *algorithmic* SQL — triggering-rule matching and join-rule group
evaluation — lives with the algorithm in :mod:`repro.filter`; the rule
catalogue lives in :mod:`repro.rules.registry`.  This module wraps the
bookkeeping tables (documents, resources, atoms, transient run tables)
so call sites stay declarative.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Sequence

from repro.rdf.model import URIRef
from repro.storage.engine import Database

__all__ = [
    "AtomRow",
    "DocumentTable",
    "ResourceTable",
    "FilterDataTable",
    "FilterInputTable",
    "ResultObjectsTable",
    "MaterializedTable",
    "TextIndexTable",
]

#: ``(uri_reference, class, property, value)`` — one FilterData row.
AtomRow = tuple[str, str, str, str]


class DocumentTable:
    """Access to the ``documents`` table (registered RDF documents)."""

    def __init__(self, db: Database):
        self._db = db

    def upsert(self, uri: str, xml: str) -> None:
        self._db.execute(
            "INSERT INTO documents (uri, xml, registered_at) "
            "VALUES (?, ?, ?) "
            "ON CONFLICT (uri) DO UPDATE SET xml = excluded.xml, "
            "registered_at = excluded.registered_at",
            # Registration timestamps are metadata, not control flow;
            # the lone sanctioned wall-clock read in the storage layer.
            (uri, xml, int(time.time())),  # mdv: allow(MDV062)
        )

    def get_xml(self, uri: str) -> str | None:
        return self._db.scalar("SELECT xml FROM documents WHERE uri = ?", (uri,))

    def exists(self, uri: str) -> bool:
        return self.get_xml(uri) is not None

    def delete(self, uri: str) -> None:
        self._db.execute("DELETE FROM documents WHERE uri = ?", (uri,))

    def uris(self) -> list[str]:
        rows = self._db.query_all("SELECT uri FROM documents ORDER BY uri")
        return [row["uri"] for row in rows]

    def count(self) -> int:
        return self._db.count("documents")


class ResourceTable:
    """Access to the ``resources`` table (resource → document mapping)."""

    def __init__(self, db: Database):
        self._db = db

    def insert_many(self, rows: Iterable[tuple[str, str, str]]) -> None:
        """Insert ``(uri_reference, class, document_uri)`` rows (upsert)."""
        self._db.executemany(
            "INSERT INTO resources (uri_reference, class, document_uri) "
            "VALUES (?, ?, ?) "
            "ON CONFLICT (uri_reference) DO UPDATE SET "
            "class = excluded.class, document_uri = excluded.document_uri",
            rows,
        )

    def delete_many(self, uris: Iterable[str]) -> None:
        self._db.executemany(
            "DELETE FROM resources WHERE uri_reference = ?",
            ((uri,) for uri in uris),
        )

    def class_of(self, uri: str) -> str | None:
        return self._db.scalar(
            "SELECT class FROM resources WHERE uri_reference = ?", (uri,)
        )

    def document_of(self, uri: str) -> str | None:
        return self._db.scalar(
            "SELECT document_uri FROM resources WHERE uri_reference = ?", (uri,)
        )

    def by_document(self, document_uri: str) -> list[URIRef]:
        rows = self._db.query_all(
            "SELECT uri_reference FROM resources WHERE document_uri = ? "
            "ORDER BY uri_reference",
            (document_uri,),
        )
        return [URIRef(row["uri_reference"]) for row in rows]

    def count(self) -> int:
        return self._db.count("resources")


class FilterDataTable:
    """Access to ``filter_data`` — the persistent atom store (Figure 4)."""

    def __init__(self, db: Database):
        self._db = db

    def insert_atoms(self, rows: Iterable[AtomRow]) -> None:
        self._db.executemany(
            "INSERT INTO filter_data (uri_reference, class, property, value) "
            "VALUES (?, ?, ?, ?)",
            rows,
        )

    def delete_for(self, uris: Iterable[str]) -> None:
        """Remove every atom of the given subject resources."""
        self._db.executemany(
            "DELETE FROM filter_data WHERE uri_reference = ?",
            ((uri,) for uri in uris),
        )

    def atoms_of(self, uri: str) -> list[AtomRow]:
        rows = self._db.query_all(
            "SELECT uri_reference, class, property, value "
            "FROM filter_data WHERE uri_reference = ? "
            "ORDER BY property, value",
            (uri,),
        )
        return [tuple(row) for row in rows]

    def count(self) -> int:
        return self._db.count("filter_data")


class FilterInputTable:
    """Access to ``filter_input`` — the atoms one filter run consumes.

    A separate table (rather than a batch column on ``filter_data``)
    because the update algorithm's first pass feeds *old* atom versions
    that are no longer part of the current database state.
    """

    def __init__(self, db: Database):
        self._db = db

    def clear(self) -> None:
        self._db.execute("DELETE FROM filter_input")

    def load(self, rows: Iterable[AtomRow]) -> None:
        self._db.executemany(
            "INSERT INTO filter_input (uri_reference, class, property, value) "
            "VALUES (?, ?, ?, ?)",
            rows,
        )

    def count(self) -> int:
        return self._db.count("filter_input")


class ResultObjectsTable:
    """Access to ``result_objects`` — per-iteration filter results (Fig. 9)."""

    def __init__(self, db: Database):
        self._db = db

    def clear(self) -> None:
        self._db.execute("DELETE FROM result_objects")

    def insert(self, uri: str, rule_id: int, iteration: int) -> None:
        self._db.execute(
            "INSERT OR IGNORE INTO result_objects "
            "(uri_reference, rule_id, iteration) VALUES (?, ?, ?)",
            (uri, rule_id, iteration),
        )

    def rows_at(self, iteration: int) -> list[tuple[str, int]]:
        rows = self._db.query_all(
            "SELECT uri_reference, rule_id FROM result_objects "
            "WHERE iteration = ? ORDER BY rule_id, uri_reference",
            (iteration,),
        )
        return [(row["uri_reference"], row["rule_id"]) for row in rows]

    def count_at(self, iteration: int) -> int:
        return self._db.count("result_objects", "iteration = ?", (iteration,))

    def all_pairs(self) -> set[tuple[str, int]]:
        rows = self._db.query_all(
            "SELECT DISTINCT uri_reference, rule_id FROM result_objects"
        )
        return {(row["uri_reference"], row["rule_id"]) for row in rows}


class TextIndexTable:
    """Access to the trigram index of :mod:`repro.text`.

    ``filter_rules_con_tri`` holds the indexable ``contains`` rules with
    their needle and trigram count, ``text_postings`` the inverted
    ``(trigram, rule_id)`` index.  Maintenance (insert on registration,
    delete on unregistration) lives with the algorithm in
    :func:`repro.text.index.index_contains_rule` /
    :func:`~repro.text.index.drop_contains_rule`; these accessors serve
    introspection, tests and the shard replication audit.
    """

    def __init__(self, db: Database):
        self._db = db

    def needle_of(self, rule_id: int) -> str | None:
        """The indexed needle of a rule (``None`` when not indexed)."""
        return self._db.scalar(
            "SELECT value FROM filter_rules_con_tri WHERE rule_id = ? "
            "LIMIT 1",
            (rule_id,),
        )

    def postings_of(self, rule_id: int) -> list[str]:
        """The trigrams posted for a rule, sorted."""
        rows = self._db.query_all(
            "SELECT trigram FROM text_postings WHERE rule_id = ? "
            "ORDER BY trigram",
            (rule_id,),
        )
        return [row["trigram"] for row in rows]

    def rules_for_trigram(self, trigram: str) -> list[int]:
        """Every rule whose needle contains ``trigram``, sorted."""
        rows = self._db.query_all(
            "SELECT rule_id FROM text_postings WHERE trigram = ? "
            "ORDER BY rule_id",
            (trigram,),
        )
        return [int(row["rule_id"]) for row in rows]

    def indexed_rule_ids(self) -> set[int]:
        rows = self._db.query_all(
            "SELECT DISTINCT rule_id FROM filter_rules_con_tri"
        )
        return {int(row["rule_id"]) for row in rows}

    def posting_count(self) -> int:
        return self._db.count("text_postings")


class MaterializedTable:
    """Access to ``materialized`` — per-atomic-rule materialized results."""

    def __init__(self, db: Database):
        self._db = db

    def insert_pairs(self, pairs: Iterable[tuple[int, str]]) -> None:
        """Insert ``(rule_id, uri_reference)`` pairs, ignoring duplicates."""
        self._db.executemany(
            "INSERT OR IGNORE INTO materialized (rule_id, uri_reference) "
            "VALUES (?, ?)",
            pairs,
        )

    def delete_pairs(self, pairs: Iterable[tuple[int, str]]) -> None:
        self._db.executemany(
            "DELETE FROM materialized WHERE rule_id = ? AND uri_reference = ?",
            pairs,
        )

    def delete_rules(self, rule_ids: Sequence[int]) -> None:
        self._db.executemany(
            "DELETE FROM materialized WHERE rule_id = ?",
            ((rule_id,) for rule_id in rule_ids),
        )

    def delete_uris(self, uris: Iterable[str]) -> None:
        """Remove every materialized row of the given resources."""
        self._db.executemany(
            "DELETE FROM materialized WHERE uri_reference = ?",
            ((uri,) for uri in uris),
        )

    def uris_for(self, rule_id: int) -> list[URIRef]:
        rows = self._db.query_all(
            "SELECT uri_reference FROM materialized WHERE rule_id = ? "
            "ORDER BY uri_reference",
            (rule_id,),
        )
        return [URIRef(row["uri_reference"]) for row in rows]

    def contains(self, rule_id: int, uri: str) -> bool:
        return (
            self._db.query_one(
                "SELECT 1 FROM materialized WHERE rule_id = ? AND "
                "uri_reference = ?",
                (rule_id, uri),
            )
            is not None
        )

    def count(self) -> int:
        return self._db.count("materialized")
