"""Durability profiles and crash-point injection for the storage tier.

The paper's MDPs are long-lived services over a commercial RDBMS whose
crash recovery is taken for granted.  This reproduction makes the
contract explicit in two halves:

- **Pragma profiles.**  :func:`pragmas_for` maps a ``durability`` knob
  to the connection pragmas the :class:`~repro.storage.engine.Database`
  applies.  ``"fast"`` is the historical benchmark configuration
  (memory journal, ``synchronous = OFF``) — nothing survives a process
  crash, which is fine for in-memory measurement runs.  ``"safe"`` is
  the service configuration: WAL journaling with ``synchronous =
  NORMAL`` for on-disk stores, the standard SQLite durability point for
  applications that must survive process death (an OS crash may lose
  the tail of the WAL but never corrupts committed state).
- **Crash plans.**  A :class:`CrashPlan` is armed on a ``Database`` and
  consulted at every statement and commit boundary.  When its target
  boundary is reached the engine rolls back the open transaction and
  raises :class:`~repro.errors.CrashError` — the storage-level view of
  ``kill -9``: committed state survives, the in-flight transaction is
  torn away.  A plan with no target never fires and doubles as a
  boundary *counter*, which is how the crash-recovery oracle enumerates
  every crash point of a scripted workload before sweeping them
  (:mod:`repro.workload.crashes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DURABILITY_PROFILES",
    "pragmas_for",
    "CrashPlan",
    "CrashPoint",
    "enumerate_crash_points",
]

#: Valid values of the ``durability`` knob.
DURABILITY_PROFILES = ("fast", "safe")

#: Pragmas shared by both profiles.
_COMMON_PRAGMAS = (
    "PRAGMA temp_store = MEMORY",
    "PRAGMA cache_size = -65536",  # 64 MiB page cache
    "PRAGMA foreign_keys = ON",
)


def pragmas_for(path: str, durability: str) -> tuple[str, ...]:
    """The connection pragmas of a durability profile.

    ``"fast"`` keeps the journal in memory with ``synchronous = OFF``:
    maximum speed, zero crash safety.  ``"safe"`` uses WAL +
    ``synchronous = NORMAL`` on disk-backed stores; for ``:memory:``
    databases (which cannot outlive the process anyway) it keeps the
    memory journal but raises ``synchronous`` so the profile stays
    meaningful when a test swaps paths.
    """
    if durability not in DURABILITY_PROFILES:
        raise ValueError(
            f"durability must be one of {DURABILITY_PROFILES}, "
            f"got {durability!r}"
        )
    if durability == "fast":
        journal = ("PRAGMA journal_mode = MEMORY", "PRAGMA synchronous = OFF")
    elif path == ":memory:":
        journal = (
            "PRAGMA journal_mode = MEMORY",
            "PRAGMA synchronous = NORMAL",
        )
    else:
        journal = ("PRAGMA journal_mode = WAL", "PRAGMA synchronous = NORMAL")
    return (*journal, *_COMMON_PRAGMAS)


@dataclass
class CrashPlan:
    """A scripted process death, armed on one :class:`Database`.

    The plan counts the database's statement and commit boundaries.
    When ``crash_at_statement`` (1-based: the Nth statement never
    executes) or ``crash_at_commit`` (the Nth commit is torn away) is
    reached, the consulting engine injects a crash.  Each plan fires at
    most once — after a simulated restart the "process" that armed it is
    gone.

    With both targets ``None`` the plan only counts, which a workload
    driver uses to learn how many boundaries a clean run has.
    """

    crash_at_statement: int | None = None
    crash_at_commit: int | None = None
    #: Boundaries observed so far.
    statements_seen: int = field(default=0, init=False)
    commits_seen: int = field(default=0, init=False)
    #: Set once the plan has injected its crash.
    fired: bool = field(default=False, init=False)

    def on_statement(self) -> bool:
        """Count one statement boundary; ``True`` = crash now."""
        self.statements_seen += 1
        if (
            not self.fired
            and self.crash_at_statement is not None
            and self.statements_seen >= self.crash_at_statement
        ):
            self.fired = True
            return True
        return False

    def on_commit(self) -> bool:
        """Count one commit boundary; ``True`` = tear this commit away."""
        self.commits_seen += 1
        if (
            not self.fired
            and self.crash_at_commit is not None
            and self.commits_seen >= self.crash_at_commit
        ):
            self.fired = True
            return True
        return False


@dataclass(frozen=True)
class CrashPoint:
    """One enumerated crash point of a scripted workload."""

    boundary: str  # "statement" | "commit"
    ordinal: int

    def plan(self) -> CrashPlan:
        """A fresh plan that crashes at this point."""
        if self.boundary == "statement":
            return CrashPlan(crash_at_statement=self.ordinal)
        return CrashPlan(crash_at_commit=self.ordinal)


def enumerate_crash_points(
    statements: int, commits: int, statement_stride: int = 1
) -> list[CrashPoint]:
    """Every commit boundary plus every Nth statement boundary.

    ``statements``/``commits`` are the totals a clean run of the
    workload produced (measured with a counting :class:`CrashPlan`).
    Commit boundaries are where torn transactions hide, so all of them
    are always enumerated; statement boundaries are sampled at
    ``statement_stride`` to keep sweep cost proportional.
    """
    if statement_stride < 1:
        raise ValueError("statement_stride must be >= 1")
    points = [
        CrashPoint("statement", ordinal)
        for ordinal in range(1, statements + 1, statement_stride)
    ]
    points.extend(
        CrashPoint("commit", ordinal) for ordinal in range(1, commits + 1)
    )
    return points
