"""Garbage collection for LMR caches (paper, Section 2.4).

The paper's MDV uses a reference-counting collector to remove resources
that were transmitted only because of strong references once the
referencing resource disappears.  In this implementation the reference
counts live on the cache entries and cascade eagerly (see
:mod:`repro.mdv.cache`), so the collector here serves two roles:

- :meth:`GarbageCollector.sweep` — a defensive full pass that evicts any
  entry whose bookkeeping says it is unreachable (it finds nothing when
  the eager cascade is correct; tests assert exactly that);
- :meth:`GarbageCollector.collect_cycles` — a mark-and-sweep pass that
  also reclaims *cyclic* strong-reference clusters, which reference
  counting alone can never free.  The paper does not address cycles;
  this is an extension documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mdv.cache import CacheStore
from repro.pubsub.closure import strong_targets
from repro.rdf.model import URIRef
from repro.rdf.schema import Schema

__all__ = ["GcReport", "GarbageCollector"]


@dataclass
class GcReport:
    """Outcome of one collection pass."""

    examined: int = 0
    evicted: int = 0
    cycles_broken: int = 0

    def __str__(self) -> str:
        return (
            f"gc(examined={self.examined}, evicted={self.evicted}, "
            f"cycles={self.cycles_broken})"
        )


class GarbageCollector:
    """Collects unreachable entries of one :class:`CacheStore`."""

    def __init__(self, schema: Schema):
        self._schema = schema

    def sweep(self, cache: CacheStore) -> GcReport:
        """Evict every entry that is not retained (refcount-based pass)."""
        report = GcReport()
        for uri in list(cache.uris()):
            entry = cache.get(uri)
            if entry is None:
                continue
            report.examined += 1
            if not entry.retained:
                cache.evict(uri)
                report.evicted += 1
        return report

    def collect_cycles(self, cache: CacheStore) -> GcReport:
        """Mark from the roots, sweep unmarked strong-only entries.

        Roots are entries retained for a reason *other than* strong
        references: a matching rule or local registration.  Everything
        reachable from a root over strong reference edges is live; the
        rest — including strong-reference cycles that keep each other's
        refcount positive — is reclaimed.
        """
        report = GcReport()
        marked: set[URIRef] = set()
        frontier: list[URIRef] = []
        for uri in cache.uris():
            entry = cache.get(uri)
            if entry is None:
                continue
            report.examined += 1
            if entry.matched_subs or entry.is_local:
                marked.add(uri)
                frontier.append(uri)
        while frontier:
            current = frontier.pop()
            entry = cache.get(current)
            if entry is None:
                continue
            for target in strong_targets(entry.resource, self._schema):
                if target not in marked and cache.get(target) is not None:
                    marked.add(target)
                    frontier.append(target)
        for uri in list(cache.uris()):
            if uri not in marked:
                cache.evict(uri)
                report.evicted += 1
                report.cycles_broken += 1
        return report
