"""System statistics: one snapshot across a provider's subsystems.

Operational visibility for the MDP: document/resource volume, the rule
catalogue (atoms, groups, dependency-graph depth), filter activity and
publishing counters.  Used by the examples and by operators embedding
the library.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mdv.provider import MetadataProvider
from repro.rules.graph import DependencyGraph

__all__ = ["ProviderStatistics", "collect_statistics"]


@dataclass(frozen=True)
class ProviderStatistics:
    """A point-in-time snapshot of one MDP."""

    name: str
    documents: int
    resources: int
    atoms: int
    atomic_rules_triggering: int
    atomic_rules_join: int
    rule_groups: int
    dependency_edges: int
    max_dependency_depth: int
    subscriptions: int
    named_rules: int
    materialized_rows: int
    filter_runs: int
    notifications_sent: int

    def summary(self) -> str:
        return (
            f"{self.name}: {self.documents} docs / {self.resources} "
            f"resources / {self.atoms} atom rows; rules: "
            f"{self.atomic_rules_triggering} triggering + "
            f"{self.atomic_rules_join} join in {self.rule_groups} groups "
            f"(depth {self.max_dependency_depth}); "
            f"{self.subscriptions} subscriptions, "
            f"{self.materialized_rows} materialized rows, "
            f"{self.filter_runs} filter runs, "
            f"{self.notifications_sent} notifications"
        )


def collect_statistics(provider: MetadataProvider) -> ProviderStatistics:
    """Gather a consistent snapshot from one provider."""
    db = provider.db
    graph = DependencyGraph.load(db)
    graph_stats = graph.stats()
    subscriptions = int(
        db.scalar(
            "SELECT COUNT(*) FROM subscriptions "
            "WHERE subscriber NOT LIKE '~named~%'"
        )
    )
    return ProviderStatistics(
        name=provider.name,
        documents=provider.document_count(),
        resources=provider.resource_count(),
        atoms=db.count("filter_data"),
        atomic_rules_triggering=graph_stats["triggering"],
        atomic_rules_join=graph_stats["joins"],
        rule_groups=graph_stats["groups"],
        dependency_edges=graph_stats["edges"],
        max_dependency_depth=graph_stats["max_depth"],
        subscriptions=subscriptions,
        named_rules=db.count("named_rules"),
        materialized_rows=db.count("materialized"),
        filter_runs=provider.engine.runs_executed,
        notifications_sent=provider.publisher.notifications_sent,
    )
