"""The MDV system tiers: providers (MDPs), repositories (LMRs), clients.

See the paper's Figure 2: MDV clients query Local Metadata Repositories,
which cache global metadata from the Metadata Provider backbone via the
publish & subscribe mechanism.
"""

from repro.mdv.backbone import Backbone
from repro.mdv.batching import BatchingRegistrar, BatchStats
from repro.mdv.cache import CacheEntry, CacheStore
from repro.mdv.stats import ProviderStatistics, collect_statistics
from repro.mdv.client import MDVClient, ProviderHandle, ServiceClient
from repro.mdv.consistency import (
    FilterStrategy,
    ResourceListStrategy,
    StrategyCost,
    TTLStrategy,
    expire_stale_entries,
)
from repro.mdv.gc import GarbageCollector, GcReport
from repro.mdv.outbox import (
    DeadLetter,
    DedupIndex,
    Outbox,
    OutboxEntry,
    ReplicaUpdate,
    RetryPolicy,
)
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import CachedQueryResult, LocalMetadataRepository

__all__ = [
    "CachedQueryResult",
    "DeadLetter",
    "DedupIndex",
    "Outbox",
    "OutboxEntry",
    "ReplicaUpdate",
    "RetryPolicy",
    "Backbone",
    "BatchingRegistrar",
    "BatchStats",
    "CacheEntry",
    "CacheStore",
    "ProviderStatistics",
    "collect_statistics",
    "MDVClient",
    "ProviderHandle",
    "ServiceClient",
    "FilterStrategy",
    "ResourceListStrategy",
    "StrategyCost",
    "TTLStrategy",
    "expire_stale_entries",
    "GarbageCollector",
    "GcReport",
    "MetadataProvider",
    "LocalMetadataRepository",
]
