"""Crash recovery for an MDP's store (docs/DURABILITY.md).

A provider that restarts on an existing database cannot assume the
previous process died politely.  Committed state is trustworthy — that
is SQLite's contract — but *multi-transaction* operations of older
(non-durable) providers, raw-commit call sites, or operator surgery can
leave **torn derived state**: trigram postings without their
``filter_rules_con`` rows, refcounts that disagree with
``subscription_rules``, atom trees no subscription references, scratch
rows of an interrupted filter run.

:class:`RecoveryManager` runs at startup, before the node reattaches to
its bus:

1. roll back any open transaction and clear the per-run scratch tables
   (``filter_input``, ``result_objects``);
2. audit the invariants (:func:`repro.analysis.invariants.audit_database`
   — the MDV03x pack);
3. repair from source-of-truth tables: refcounts are recomputed from
   ``subscription_rules``, orphaned index/materialized/canon rows are
   dropped, unreachable atom trees are garbage-collected, the trigram
   text index is rebuilt from ``filter_rules_con``, and ``filter_data``
   / ``resources`` rows are rebuilt from the registered documents'
   XML;
4. audit again — a clean second audit is the contract the
   crash-recovery oracle (:mod:`repro.workload.crashes`) enforces.

Repairs restore the *structural* invariants the auditor checks.  They
deliberately do not re-run the filter: materialized match sets are part
of committed filter output, and with the durable single-transaction
write path (``durable_delivery``) they can never tear away from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.invariants import audit_database
from repro.filter.decompose import document_atoms
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.rdf.parser import parse_document
from repro.rdf.schema import Schema
from repro.storage.engine import Database
from repro.storage.schema import TRIGGER_TABLES
from repro.text.index import index_contains_rule
from repro.text.ngrams import is_indexable, trigrams

__all__ = ["RecoveryManager", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """What one recovery pass found and fixed."""

    findings_before: list[Diagnostic] = field(default_factory=list)
    findings_after: list[Diagnostic] = field(default_factory=list)
    repairs: dict[str, int] = field(default_factory=dict)
    #: Leftover ``filter_input``/``result_objects`` rows cleared on
    #: startup.  The engine clears them itself at the start of every
    #: run, so finding some is routine residue, not damage — they are
    #: reported here but do not count as repairs.
    scratch_rows: int = 0

    @property
    def clean(self) -> bool:
        """``True`` when the post-repair audit found nothing."""
        return not self.findings_after

    @property
    def repaired(self) -> int:
        return sum(self.repairs.values())

    def summary(self) -> str:
        fixed = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.repairs.items())
            if count
        )
        return (
            f"recovery: {len(self.findings_before)} finding(s) before, "
            f"{len(self.findings_after)} after"
            + (f" ({fixed})" if fixed else "")
        )


class RecoveryManager:
    """Audits and repairs one store; see the module docstring."""

    def __init__(
        self,
        db: Database,
        schema: Schema,
        metrics: MetricsRegistry | None = None,
    ):
        self._db = db
        self._schema = schema
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_runs = self.metrics.counter("recovery.runs")
        self._m_repairs = self.metrics.counter("recovery.repairs")
        self._m_before = self.metrics.counter("recovery.findings_before")
        self._m_after = self.metrics.counter("recovery.findings_after")

    def recover(self, repair: bool = True) -> RecoveryReport:
        """Audit, optionally repair, audit again."""
        self._m_runs.inc()
        # The previous process may have died mid-transaction; SQLite
        # discards it at reopen, but a same-process simulated restart
        # (crash injection) leaves it open on the shared connection.
        self._db.rollback()
        repairs: dict[str, int] = {}
        scratch_rows = self._clear_scratch()
        before = list(audit_database(self._db).diagnostics)
        self._m_before.inc(len(before))
        if repair:
            with self._db.transaction():
                repairs["orphan_subscription_rules"] = (
                    self._drop_orphan_subscription_rows()
                )
                repairs["orphan_index_rows"] = self._drop_orphan_index_rows()
                repairs["refcounts"] = self._repair_refcounts()
                repairs["dead_atoms"] = self._collect_unreachable_atoms()
                repairs["orphan_groups"] = self._drop_orphan_groups()
                repairs["text_index_rules"] = self._rebuild_text_index()
                repairs["filter_data_documents"] = self._rebuild_filter_data()
        after = list(audit_database(self._db).diagnostics)
        self._m_after.inc(len(after))
        self._m_repairs.inc(sum(repairs.values()))
        return RecoveryReport(before, after, repairs, scratch_rows)

    # ------------------------------------------------------------------
    # Individual repairs (each returns how many rows/entities it fixed)
    # ------------------------------------------------------------------
    def _clear_scratch(self) -> int:
        """Drop per-run scratch rows an interrupted filter left behind."""
        with self._db.transaction():
            cleared = self._db.execute("DELETE FROM filter_input").rowcount
            cleared += self._db.execute("DELETE FROM result_objects").rowcount
        return max(cleared, 0)

    def _drop_orphan_subscription_rows(self) -> int:
        """``subscription_rules`` rows whose subscription is gone."""
        cursor = self._db.execute(
            "DELETE FROM subscription_rules WHERE sub_id NOT IN "
            "(SELECT sub_id FROM subscriptions)"
        )
        return max(cursor.rowcount, 0)

    def _drop_orphan_index_rows(self) -> int:  # mdv: allow(MDV065): runs inside caller's transaction
        """Index/materialized/canon rows referencing missing atoms."""
        dropped = 0
        guard = "(SELECT rule_id FROM atomic_rules)"
        for table in (*TRIGGER_TABLES, "filter_rules_con_tri",
                      "text_postings", "materialized", "rule_canon",
                      "subscription_rules"):
            cursor = self._db.execute(
                f"DELETE FROM {table} WHERE rule_id NOT IN {guard}"
            )
            dropped += max(cursor.rowcount, 0)
        cursor = self._db.execute(
            f"DELETE FROM rule_dependencies WHERE source_rule NOT IN {guard} "
            f"OR target_rule NOT IN {guard}"
        )
        dropped += max(cursor.rowcount, 0)
        cursor = self._db.execute(
            f"DELETE FROM named_rules WHERE end_rule NOT IN {guard}"
        )
        dropped += max(cursor.rowcount, 0)
        cursor = self._db.execute(
            f"DELETE FROM subscriptions WHERE end_rule NOT IN {guard}"
        )
        dropped += max(cursor.rowcount, 0)
        return dropped

    def _repair_refcounts(self) -> int:
        """Recompute ``atomic_rules.refcount`` from ``subscription_rules``."""
        cursor = self._db.execute(
            "UPDATE atomic_rules SET refcount = ("
            "  SELECT COUNT(*) FROM subscription_rules sr"
            "  WHERE sr.rule_id = atomic_rules.rule_id"
            ") WHERE refcount != ("
            "  SELECT COUNT(*) FROM subscription_rules sr"
            "  WHERE sr.rule_id = atomic_rules.rule_id"
            ")"
        )
        return max(cursor.rowcount, 0)

    def _live_rule_ids(self) -> set[int]:
        """Atoms reachable from any subscription or named rule."""
        roots = {
            int(row["end_rule"])
            for row in self._db.query_all("SELECT end_rule FROM subscriptions")
        }
        roots.update(
            int(row["end_rule"])
            for row in self._db.query_all("SELECT end_rule FROM named_rules")
        )
        live: set[int] = set()
        frontier = list(roots)
        while frontier:
            rule_id = frontier.pop()
            if rule_id in live:
                continue
            live.add(rule_id)
            row = self._db.query_one(
                "SELECT left_rule, right_rule FROM atomic_rules "
                "WHERE rule_id = ?",
                (rule_id,),
            )
            if row is not None:
                for column in ("left_rule", "right_rule"):
                    if row[column] is not None:
                        frontier.append(int(row[column]))
            for dep in self._db.query_all(
                "SELECT source_rule FROM rule_dependencies "
                "WHERE target_rule = ?",
                (rule_id,),
            ):
                frontier.append(int(dep["source_rule"]))
        return live

    def _collect_unreachable_atoms(self) -> int:  # mdv: allow(MDV065): runs inside caller's transaction
        """Drop atom trees no subscription or named rule can reach.

        A crash between ``ensure_atoms`` and the subscription insert of
        a (non-durable) registration strands a whole atom chain with
        zero refcounts; this is the transitive garbage collection that
        removes it together with every index row it owns.
        """
        live = self._live_rule_ids()
        rows = self._db.query_all("SELECT rule_id FROM atomic_rules")
        dead = [
            int(row["rule_id"])
            for row in rows
            if int(row["rule_id"]) not in live
        ]
        for rule_id in dead:
            self._db.execute(
                "DELETE FROM rule_dependencies WHERE source_rule = ? "
                "OR target_rule = ?",
                (rule_id, rule_id),
            )
            for table in (*TRIGGER_TABLES, "filter_rules_con_tri",
                          "text_postings", "materialized", "rule_canon",
                          "subscription_rules"):
                self._db.execute(
                    f"DELETE FROM {table} WHERE rule_id = ?", (rule_id,)
                )
        # Atom rows must go parents-first: a join atom's left_rule /
        # right_rule foreign keys pin its children until it is gone.
        # Rule trees are acyclic, so each pass frees at least one atom.
        pending = set(dead)
        while pending:
            referenced: set[int] = set()
            for row in self._db.query_all(
                "SELECT left_rule, right_rule FROM atomic_rules "
                "WHERE left_rule IS NOT NULL OR right_rule IS NOT NULL"
            ):
                for column in ("left_rule", "right_rule"):
                    if row[column] is not None:
                        referenced.add(int(row[column]))
            batch = sorted(pending - referenced)
            if not batch:
                break
            self._db.executemany(
                "DELETE FROM atomic_rules WHERE rule_id = ?",
                ((rule_id,) for rule_id in batch),
            )
            pending.difference_update(batch)
        return len(dead) - len(pending)

    def _drop_orphan_groups(self) -> int:
        """Rule groups no join rule references anymore."""
        cursor = self._db.execute(
            "DELETE FROM rule_groups WHERE group_id NOT IN "
            "(SELECT group_id FROM atomic_rules WHERE group_id IS NOT NULL)"
        )
        return max(cursor.rowcount, 0)

    def _rebuild_text_index(self) -> int:  # mdv: allow(MDV065): runs inside caller's transaction
        """Rebuild trigram postings from ``filter_rules_con``.

        ``filter_rules_con`` is the source of truth: every ``contains``
        rule keeps its row there whether or not it is indexable.  The
        derived ``filter_rules_con_tri`` / ``text_postings`` pair is
        compared against the expectation and rebuilt wholesale on any
        mismatch.  Returns the number of rules whose index entries were
        rebuilt (0 = the index was consistent).
        """
        con_rows = self._db.query_all(
            "SELECT rule_id, class, property, value FROM filter_rules_con "
            "ORDER BY rule_id, class"
        )
        expected_tri: set[tuple[int, str, str, str, int]] = set()
        expected_postings: set[tuple[str, int]] = set()
        # Keyed by (rule_id, property): semantic property-synonym
        # expansion gives one rule con rows under several properties,
        # each needing its own index entry set.
        by_rule: dict[tuple[int, str], tuple[list[str], str]] = {}
        for row in con_rows:
            rule_id = int(row["rule_id"])
            needle = row["value"]
            if not is_indexable(needle):
                continue
            grams = trigrams(needle)
            expected_tri.add(
                (rule_id, row["class"], row["property"], needle, len(grams))
            )
            expected_postings.update((gram, rule_id) for gram in grams)
            classes, _ = by_rule.setdefault(
                (rule_id, row["property"]), ([], needle)
            )
            classes.append(row["class"])
        actual_tri = {
            (
                int(row["rule_id"]), row["class"], row["property"],
                row["value"], int(row["trigram_count"]),
            )
            for row in self._db.query_all(
                "SELECT rule_id, class, property, value, trigram_count "
                "FROM filter_rules_con_tri"
            )
        }
        actual_postings = {
            (row["trigram"], int(row["rule_id"]))
            for row in self._db.query_all(
                "SELECT trigram, rule_id FROM text_postings"
            )
        }
        if actual_tri == expected_tri and actual_postings == expected_postings:
            return 0
        self._db.execute("DELETE FROM filter_rules_con_tri")
        self._db.execute("DELETE FROM text_postings")
        for (rule_id, prop), (classes, needle) in sorted(by_rule.items()):
            index_contains_rule(
                self._db, rule_id, classes, prop, needle, self.metrics
            )
        return len({rule_id for rule_id, __ in by_rule})

    def _rebuild_filter_data(self) -> int:  # mdv: allow(MDV065): runs inside caller's transaction
        """Rebuild ``filter_data``/``resources`` from the documents' XML.

        The stored RDF/XML is the source of truth for a document's
        atoms; a torn multi-transaction registration can commit the
        document row without (or with stale) derived rows.  Each
        document's expected atoms are recomputed with the same
        decomposition the registration path uses and compared; only
        mismatching documents are rewritten.  Returns the number of
        documents repaired.
        """
        repaired = 0
        doc_rows = self._db.query_all(
            "SELECT uri, xml FROM documents ORDER BY uri"
        )
        for doc_row in doc_rows:
            uri = doc_row["uri"]
            document = parse_document(doc_row["xml"], uri, self._schema)
            expected_atoms = sorted(document_atoms(document))
            expected_resources = sorted(
                (str(r.uri), r.rdf_class, uri) for r in document
            )
            actual_resources = sorted(
                (row["uri_reference"], row["class"], row["document_uri"])
                for row in self._db.query_all(
                    "SELECT uri_reference, class, document_uri "
                    "FROM resources WHERE document_uri = ?",
                    (uri,),
                )
            )
            subject_uris = {entry[0] for entry in expected_resources} | {
                entry[0] for entry in actual_resources
            }
            actual_atoms: list[tuple[str, str, str, str]] = []
            for subject in sorted(subject_uris):
                actual_atoms.extend(
                    (
                        row["uri_reference"], row["class"],
                        row["property"], row["value"],
                    )
                    for row in self._db.query_all(
                        "SELECT uri_reference, class, property, value "
                        "FROM filter_data WHERE uri_reference = ?",
                        (subject,),
                    )
                )
            if (
                sorted(actual_atoms) == expected_atoms
                and actual_resources == expected_resources
            ):
                continue
            repaired += 1
            self._db.executemany(
                "DELETE FROM filter_data WHERE uri_reference = ?",
                ((subject,) for subject in sorted(subject_uris)),
            )
            self._db.executemany(
                "DELETE FROM resources WHERE uri_reference = ?",
                ((subject,) for subject in sorted(subject_uris)),
            )
            self._db.executemany(
                "INSERT INTO resources (uri_reference, class, document_uri) "
                "VALUES (?, ?, ?)",
                expected_resources,
            )
            self._db.executemany(
                "INSERT INTO filter_data (uri_reference, class, property, "
                "value) VALUES (?, ?, ?, ?)",
                expected_atoms,
            )
        # Atoms of resources whose document vanished entirely.
        cursor = self._db.execute(
            "DELETE FROM filter_data WHERE uri_reference NOT IN "
            "(SELECT uri_reference FROM resources)"
        )
        if cursor.rowcount > 0:
            repaired += 1
        return repaired
