"""Command-line entry point: ``python -m repro.mdv <command>``.

Commands:

- ``demo`` — run a scripted three-tier scenario and print the system
  statistics and network accounting at the end.
- ``explain "<rule text>"`` — show how a subscription rule is
  normalized and decomposed into atomic rules (uses the ObjectGlobe
  example schema unless ``--schema-class`` pairs are given).
- ``serve --config PATH`` — run one MDV node (MDP or LMR) as a
  long-lived process over real sockets (docs/SERVICE.md); prints an
  ``MDV-SERVE READY`` line with the bound port, drains gracefully on
  SIGTERM, and ``--metrics-dump PATH`` writes the final metrics
  snapshot on exit.
- ``--chaos-seed N`` — fault-tolerance smoke check: run the seeded
  chaos scenario twice (faulty and clean) and verify the faulty run
  converged to the clean one after recovery; exits 1 on divergence.
- ``--metrics`` — after any command, dump the metrics registry snapshot
  (counters, gauges, histograms accumulated by the run) as JSON.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import MDVError
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.mdv.stats import collect_statistics
from repro.net.bus import NetworkBus
from repro.obs.metrics import default_registry, reset_default_registry
from repro.rdf.model import Document, URIRef
from repro.rdf.schema import objectglobe_schema
from repro.rules.explain import explain_rule

__all__ = ["main"]


def _demo_document(index: int, host: str, memory: int) -> Document:
    doc = Document(f"doc{index}.rdf")
    provider = doc.new_resource("host", "CycleProvider")
    provider.add("serverHost", host)
    provider.add("serverPort", 5000 + index)
    provider.add("serverInformation", URIRef(f"doc{index}.rdf#info"))
    info = doc.new_resource("info", "ServerInformation")
    info.add("memory", memory)
    info.add("cpu", 600)
    return doc


def run_demo() -> int:
    schema = objectglobe_schema()
    bus = NetworkBus()
    mdp = MetadataProvider(schema, name="mdp-1", bus=bus)
    lmr = LocalMetadataRepository("lmr-passau", mdp, bus=bus)

    rule = (
        "search CycleProvider c register c "
        "where c.serverHost contains 'uni-passau.de' "
        "and c.serverInformation.memory > 64"
    )
    print(f"subscribing lmr-passau: {rule}\n")
    lmr.subscribe(rule)

    fleet = [
        ("pirates.uni-passau.de", 92),
        ("db.tum.de", 256),
        ("kat.uni-passau.de", 32),
        ("hal.uni-passau.de", 512),
    ]
    for index, (host, memory) in enumerate(fleet):
        outcome = mdp.register_document(_demo_document(index, host, memory))
        print(f"registered doc{index}.rdf ({host}, {memory}MB): "
              f"{outcome.summary()}")

    print("\ncache after registrations:", lmr.stats())
    print("local query:", [
        str(r.uri) for r in lmr.query("search CycleProvider c")
    ])

    print("\nupgrading kat.uni-passau.de to 1024MB …")
    mdp.register_document(
        _demo_document(2, "kat.uni-passau.de", 1024)
    )
    print("local query:", [
        str(r.uri) for r in lmr.query("search CycleProvider c")
    ])

    print("\n--- provider statistics ---")
    print(collect_statistics(mdp).summary())
    print("\n--- network accounting ---")
    print(bus.stats_summary())
    bus.publish_link_metrics()
    return 0


def run_chaos(seed: int) -> int:
    from repro.workload.chaos import run_chaos_scenario

    print(f"chaos smoke check, seed {seed}")
    faulty = run_chaos_scenario(seed, faulty=True)
    clean = run_chaos_scenario(seed, faulty=False)
    print("faulty:", faulty.summary())
    print("clean: ", clean.summary())
    failures = []
    if faulty.provider_snapshots != clean.provider_snapshots:
        failures.append("provider document stores diverged")
    if faulty.lmr_snapshots != clean.lmr_snapshots:
        failures.append("LMR caches diverged")
    if not faulty.backbone_synchronized:
        failures.append("backbone did not resynchronize")
    if (faulty.batches_received - faulty.batches_applied
            != faulty.duplicates_ignored):
        failures.append("dedup counters are inconsistent")
    if not faulty.stale_read_observed:
        failures.append("partitioned LMR read was not flagged stale")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        f"ok: converged after {faulty.faults_injected} injected faults "
        f"({faulty.duplicates_ignored} duplicate batches ignored, "
        f"{faulty.recovery.get('redriven', 0)} dead letters redriven, "
        f"{faulty.recovery.get('repaired', 0)} anti-entropy repairs)"
    )
    return 0


def run_explain(rule_text: str) -> int:
    schema = objectglobe_schema()
    try:
        print(explain_rule(rule_text, schema))
    except MDVError as exc:  # surface parse/normalize errors readably
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mdv",
        description="MDV demo, rule-inspection and chaos-smoke commands.",
    )
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        metavar="N",
        help="run the seeded fault-tolerance smoke check and exit",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="dump the metrics registry snapshot as JSON after the run",
    )
    subparsers = parser.add_subparsers(dest="command")
    demo_parser = subparsers.add_parser(
        "demo", help="run a scripted 3-tier scenario"
    )
    explain_parser = subparsers.add_parser(
        "explain", help="explain a subscription rule"
    )
    explain_parser.add_argument("rule", help="the rule text (quote it)")
    serve_parser = subparsers.add_parser(
        "serve", help="serve one MDV node over real sockets (SERVICE.md)"
    )
    serve_parser.add_argument(
        "--config", required=True, metavar="PATH",
        help="JSON service config (name, role, port, peers, knobs)",
    )
    serve_parser.add_argument(
        "--metrics-dump", default=None, metavar="PATH",
        help="write the final metrics snapshot here on graceful exit",
    )
    serve_parser.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="override the configured listen port (0 = OS-assigned)",
    )
    for sub in (demo_parser, explain_parser):
        # Accepted before or after the subcommand; SUPPRESS keeps the
        # subparser from overwriting a pre-subcommand --metrics.
        sub.add_argument(
            "--metrics", action="store_true", default=argparse.SUPPRESS
        )
    args = parser.parse_args(argv)
    # Fresh registry per invocation: the run's metrics, nothing else's.
    reset_default_registry()
    if args.chaos_seed is not None:
        status = run_chaos(args.chaos_seed)
    elif args.command == "demo":
        status = run_demo()
    elif args.command == "explain":
        status = run_explain(args.rule)
    elif args.command == "serve":
        from repro.mdv.daemon import serve_from_args

        status = serve_from_args(
            args.config, metrics_dump=args.metrics_dump, port=args.port
        )
    else:
        parser.error(
            "a command (demo|explain|serve) or --chaos-seed is required"
        )
        return 2  # pragma: no cover - parser.error raises SystemExit
    if args.metrics:
        print(json.dumps(default_registry().snapshot(), indent=2))
    return status


if __name__ == "__main__":
    sys.exit(main())
