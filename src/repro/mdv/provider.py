"""The Metadata Provider (MDP) — the backbone tier (paper, Section 2.2).

An MDP stores global metadata in a relational database, accepts document
registrations/updates/deletions ("this is the only way to add, update,
or delete metadata"), runs the publish & subscribe filter, and pushes
notifications to the Local Metadata Repositories subscribed to it.

Public surface:

- :meth:`MetadataProvider.register_document` — register or re-register
  (update) an RDF document; returns the :class:`PublishOutcome`.
- :meth:`MetadataProvider.delete_document`.
- :meth:`MetadataProvider.subscribe` / :meth:`unsubscribe` — manage an
  LMR's subscription rules; subscribing immediately delivers the
  currently matching resources.
- :meth:`MetadataProvider.register_named_rule` — register a rule under a
  name so later rules can use it as a search extension (Section 2.3).
- :meth:`MetadataProvider.browse` — evaluate a query directly at the MDP
  (the "real users can also browse metadata at an MDP" path), via the
  SQL translation.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator, Sequence
from contextlib import contextmanager
from typing import Any

from repro.analysis import check_subsumption, lint_rule_text
from repro.analysis.diagnostics import Diagnostic
from repro.errors import (
    DocumentNotFoundError,
    NetworkError,
    RuleAnalysisError,
    RuleError,
    SchemaValidationError,
    SubscriptionError,
)
from repro.filter.engine import FilterEngine
from repro.filter.matcher import initialize_triggering_rule
from repro.filter.results import PublishOutcome
from repro.mdv.outbox import (
    DedupIndex,
    Outbox,
    OutboxStore,
    ReplicaUpdate,
    RetryPolicy,
)
from repro.mdv.recovery import RecoveryManager, RecoveryReport
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.pubsub.notifications import NotificationBatch
from repro.pubsub.publisher import Publisher
from repro.query.sql import run_query_sql
from repro.rdf.diff import deletion_diff, diff_documents
from repro.rdf.model import Document, Resource, URIRef
from repro.rdf.parser import parse_document
from repro.rdf.schema import Schema
from repro.rdf.serializer import to_rdfxml
from repro.rules.decompose import decompose_rule
from repro.rules.normalize import normalize_rule
from repro.rules.parser import parse_query, parse_rule
from repro.rules.registry import ANALYZE_POLICIES, RuleRegistry, Subscription
from repro.storage.engine import Database
from repro.storage.schema import create_all
from repro.storage.tables import DocumentTable, ResourceTable

__all__ = ["MetadataProvider"]


def _merge_outcomes(into, outcome) -> None:
    """Accumulate one publish outcome into another."""
    for rule_id, uris in outcome.matched.items():
        into.matched.setdefault(rule_id, set()).update(uris)
    for rule_id, uris in outcome.unmatched.items():
        into.unmatched.setdefault(rule_id, set()).update(uris)
    into.deleted.update(outcome.deleted)
    into.passes.extend(outcome.passes)

#: Handler type for directly connected subscribers (no network bus).
BatchHandler = Callable[[NotificationBatch], None]


class MetadataProvider:
    """One MDP node: storage, filter, subscriptions, publishing."""

    def __init__(
        self,
        schema: Schema,
        name: str = "mdp",
        db: Database | None = None,
        bus: Transport | None = None,
        use_rule_groups: bool = True,
        consistency: str = "filter",
        join_evaluation: str = "probe",
        analyze: str = "off",
        retry_policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
        parallelism: int = 1,
        contains_index: str = "scan",
        triggering: str = "sql",
        dedupe: str = "off",
        durability: str = "fast",
        durable_delivery: bool = False,
        recovery: str = "off",
        semantics: str = "off",
    ):
        if consistency not in ("filter", "resource-list", "ttl"):
            raise ValueError(
                f"consistency must be 'filter', 'resource-list' or 'ttl', "
                f"got {consistency!r}"
            )
        if analyze not in ANALYZE_POLICIES:
            raise ValueError(
                f"analyze must be one of {ANALYZE_POLICIES}, got {analyze!r}"
            )
        if recovery not in ("off", "auto"):
            raise ValueError(
                f"recovery must be 'off' or 'auto', got {recovery!r}"
            )
        self.name = name
        self.schema = schema
        self.metrics = metrics if metrics is not None else default_registry()
        labels = {"mdp": name}
        self._m_registrations = self.metrics.counter(
            "mdp.registrations", labels
        )
        self._m_deletions = self.metrics.counter("mdp.deletions", labels)
        self._m_batches_sent = self.metrics.counter(
            "mdp.notification_batches", labels
        )
        self._m_stale_replicas = self.metrics.counter(
            "mdp.stale_replicas_ignored", labels
        )
        self.db = db or Database(metrics=self.metrics, durability=durability)
        create_all(self.db)
        #: Crash-atomic operations: every state change plus the outbox
        #: rows carrying its notifications commit in one transaction,
        #: and delivery happens after commit (docs/DURABILITY.md).
        self.durable_delivery = durable_delivery
        self._in_op = False
        self._pending_flush: set[str] = set()
        self.registry = RuleRegistry(self.db, dedupe=dedupe, semantics=semantics)
        #: Active S-ToPSS degree (``repro.semantics``, docs/SEMANTICS.md);
        #: the registry constructor validates the mode.
        self.semantics = semantics
        if semantics in ("taxonomy", "mappings"):
            # The RDF-Schema class hierarchy doubles as the seed concept
            # taxonomy; user edges arrive via register_taxonomy_edge().
            self.registry.seed_schema_taxonomy(schema)
        self.engine = FilterEngine(
            self.db, self.registry, use_rule_groups, join_evaluation,
            metrics=self.metrics, parallelism=parallelism,
            contains_index=contains_index, triggering=triggering,
        )
        #: Selected contains matching strategy, also applied to browse
        #: queries (the engine constructor validates the mode).
        self.contains_index = contains_index
        #: Triggering-stage evaluator ("sql" = the paper's joins,
        #: "counting" = the in-memory predicate index; the engine
        #: constructor validates the mode).
        self.triggering = triggering
        self.publisher = Publisher(schema, self.registry, self.resource)
        #: Update-consistency strategy (paper §3.5 and its alternatives);
        #: instantiated lazily to avoid a circular import.
        self.consistency = consistency
        self._strategy = None
        #: Default pre-subscription analysis policy (see ANALYZE_POLICIES).
        self.analyze = analyze
        #: Diagnostics of the most recent analyzed subscribe call.
        self.last_diagnostics: list[Diagnostic] = []
        self.bus = bus
        self._documents: dict[str, Document] = {}
        self._document_table = DocumentTable(self.db)
        self._resource_table = ResourceTable(self.db)
        self._direct_subscribers: dict[str, BatchHandler] = {}
        #: Peers notified of document changes (backbone replication).
        self._replication_hook: (
            Callable[[str, Document | None, tuple[int, str]], None] | None
        ) = None
        #: Per-document ``(counter, origin)`` versions; deletions keep a
        #: tombstone version so anti-entropy can order them.  Persisted
        #: in the ``doc_versions`` table and reloaded on startup.
        self._doc_versions: dict[str, tuple[int, str]] = {}
        #: Exactly-once application of replicated changes by (source,
        #: seq); durable providers persist the index (``dedup_entries``).
        self.replica_dedup = DedupIndex(self.db if durable_delivery else None)
        #: Replica updates ignored because a newer version was applied.
        self.stale_replicas_ignored = 0
        #: Report of the startup recovery pass (``recovery="auto"``).
        self.last_recovery: RecoveryReport | None = None
        #: Reliable delivery of notifications and replication; present
        #: with a bus, or without one when ``durable_delivery`` routes
        #: direct subscribers through the transactional outbox too.
        self.outbox: Outbox | None = None
        store = OutboxStore(self.db) if durable_delivery else None
        if bus is not None:
            bus.register(name, self._handle_message)
            self.outbox = Outbox(
                name,
                transport=self._transport,
                clock=bus.now_ms,
                sleep=bus.sleep,
                policy=retry_policy,
                metrics=self.metrics,
                store=store,
            )
        elif durable_delivery:
            self.outbox = Outbox(
                name,
                transport=self._transport,
                policy=retry_policy,
                metrics=self.metrics,
                store=store,
            )
        if recovery == "auto":
            # Audit and repair the store before trusting anything in it
            # — and before the outbox resumes the delivery streams.
            self.last_recovery = RecoveryManager(
                self.db, schema, self.metrics
            ).recover()
        if triggering == "counting":
            # Build the in-memory predicate index eagerly — after any
            # recovery repairs, so a provider reopened on a crashed
            # store matches against the repaired rule base from the
            # first publish on.
            self.engine.warm_shards()
        if self.outbox is not None:
            self.outbox.recover()
        self._load_persisted_documents()
        self._load_persisted_versions()

    def _transport(self, destination: str, kind: str, payload: Any) -> Any:
        """Route one outbox delivery: direct handler first, then bus."""
        handler = self._direct_subscribers.get(destination)
        if handler is not None:
            return handler(payload)
        if self.bus is not None:
            return self.bus.send(self.name, destination, kind, payload)
        raise NetworkError(
            f"no route from {self.name!r} to {destination!r}: "
            f"subscriber not attached"
        )

    def close(self) -> None:
        """Release the filter engine's worker shards (idempotent).

        Only needed when the provider was built with ``parallelism > 1``
        — shard threads are non-daemon and otherwise linger until
        interpreter shutdown.  The database stays open (callers own it
        when they passed one in).
        """
        self.engine.close()

    def _load_persisted_documents(self) -> None:
        """Rebuild the in-memory document store from the database.

        A provider opened on an existing (file-backed) database resumes
        with its full state: documents, filter tables, rule catalogue
        and subscriptions all live in SQLite; only the parsed
        :class:`Document` objects need reconstruction.
        """
        for uri in self._document_table.uris():
            xml = self._document_table.get_xml(uri)
            if xml is None:  # pragma: no cover - table just listed it
                continue
            self._documents[uri] = parse_document(xml, uri, self.schema)

    def _load_persisted_versions(self) -> None:
        for row in self.db.query_all(
            "SELECT document_uri, counter, origin FROM doc_versions"
        ):
            self._doc_versions[row["document_uri"]] = (
                int(row["counter"]),
                row["origin"],
            )

    @contextmanager
    def _op(self) -> Iterator[None]:
        """One crash-atomic provider operation (docs/DURABILITY.md).

        With ``durable_delivery`` every write the operation performs —
        filter tables, documents, subscriptions, versions, and the
        outbox rows carrying its notifications — joins one transaction;
        nested ``transaction()`` calls become savepoints.  Deliveries
        requested during the operation are deferred and flushed *after*
        the commit, so a crash at any statement or commit boundary
        either leaves no trace of the operation or leaves it fully
        committed with its notifications queued for redelivery.
        Without ``durable_delivery`` this is a no-op wrapper.
        """
        if not self.durable_delivery or self._in_op:
            yield
            return
        self._in_op = True
        self._pending_flush = set()
        try:
            with self.db.transaction():
                yield
        except BaseException:
            self._pending_flush = set()
            raise
        finally:
            self._in_op = False
        pending = sorted(self._pending_flush)
        self._pending_flush = set()
        if self.outbox is not None:
            for destination in pending:
                self.outbox.flush(destination)

    # ------------------------------------------------------------------
    # Document administration (paper, Section 2.2)
    # ------------------------------------------------------------------
    def register_document(
        self,
        document: Document | str,
        document_uri: str | None = None,
        _replicated: bool = False,
    ) -> PublishOutcome:
        """Register a new document or re-register (update) an old one."""
        if isinstance(document, str):
            if document_uri is None:
                raise ValueError("document_uri is required for XML input")
            document = parse_document(document, document_uri, self.schema)
        self.schema.validate_document(document)
        self._check_uri_ownership(document)
        with self._op():
            old = self._documents.get(document.uri)
            diff = diff_documents(old, document)
            outcome = self._process_diff(diff)
            self._store_document(document, diff.deleted)
            self._republish_strong_parents(outcome, diff)
            self._publish(outcome)
            self._m_registrations.inc()
            if not _replicated:
                version = self._next_version(document.uri)
                if self._replication_hook is not None:
                    self._replication_hook(document.uri, document, version)
        return outcome

    def _process_diff(self, diff) -> PublishOutcome:
        """Route a diff through the configured consistency strategy."""
        if self.consistency == "filter":
            return self.engine.process_diff(diff)
        if self._strategy is None:
            from repro.mdv.consistency import (
                ResourceListStrategy,
                TTLStrategy,
            )

            strategy_class = (
                ResourceListStrategy
                if self.consistency == "resource-list"
                else TTLStrategy
            )
            self._strategy = strategy_class(self)
        return self._strategy.process_diff(diff)

    def register_documents(
        self, documents: Sequence[Document]
    ) -> PublishOutcome:
        """Register several documents with one filter execution.

        The paper's evaluation exists "to decide if the filter should be
        started either when a new document is registered or periodically,
        to process several documents in one batch" — and finds batching
        amortizes the per-run cost for most rule types.  This is the
        batching entry point: brand-new documents share a single filter
        run; re-registrations (updates) fall back to the per-document
        three-pass algorithm.  Returns the merged outcome.
        """
        fresh: list[Document] = []
        merged = PublishOutcome()
        with self._op():
            for document in documents:
                self.schema.validate_document(document)
                self._check_uri_ownership(document)
                if document.uri in self._documents:
                    outcome = self.register_document(document)
                    _merge_outcomes(merged, outcome)
                else:
                    fresh.append(document)
            if fresh:
                resources = [resource for doc in fresh for resource in doc]
                outcome = self.engine.process_insertions(resources)
                for document in fresh:
                    self._store_document(document, [])
                    version = self._next_version(document.uri)
                    if self._replication_hook is not None:
                        self._replication_hook(document.uri, document, version)
                _merge_outcomes(merged, outcome)
                self._publish(outcome)
        return merged

    def delete_document(
        self, document_uri: str, _replicated: bool = False
    ) -> PublishOutcome:
        """Remove a document with all its content."""
        old = self._documents.get(document_uri)
        if old is None:
            raise DocumentNotFoundError(document_uri)
        with self._op():
            outcome = self._process_diff(deletion_diff(old))
            del self._documents[document_uri]
            with self.db.transaction():
                self._document_table.delete(document_uri)
                self._resource_table.delete_many(str(r.uri) for r in old)
            self._publish(outcome)
            self._m_deletions.inc()
            if not _replicated:
                version = self._next_version(document_uri)
                if self._replication_hook is not None:
                    self._replication_hook(document_uri, None, version)
        return outcome

    def _check_uri_ownership(self, document: Document) -> None:
        """A resource URI may not be claimed by two different documents."""
        for resource in document:
            owner = self._resource_table.document_of(str(resource.uri))
            if owner is not None and owner != document.uri:
                raise SchemaValidationError(
                    f"resource <{resource.uri}> is already registered by "
                    f"document {owner!r}"
                )

    def _store_document(self, document: Document, deleted: list[Resource]) -> None:
        self._documents[document.uri] = document
        with self.db.transaction():
            self._document_table.upsert(document.uri, to_rdfxml(document))
            self._resource_table.delete_many(str(r.uri) for r in deleted)
            self._resource_table.insert_many(
                (str(r.uri), r.rdf_class, document.uri) for r in document
            )

    # ------------------------------------------------------------------
    # Schema exchange (the backbone "shares the same schema", §2.2)
    # ------------------------------------------------------------------
    def schema_document(self) -> str:
        """The provider's schema as an RDF Schema document (§2.4).

        LMRs and peer MDPs bootstrap from this document instead of
        sharing Python objects — the wire format the paper implies.
        """
        from repro.rdf.schema_io import schema_to_rdfxml

        return schema_to_rdfxml(self.schema)

    # ------------------------------------------------------------------
    # Content lookup
    # ------------------------------------------------------------------
    def resource(self, uri: URIRef | str) -> Resource | None:
        """The current content of a resource, or ``None``."""
        reference = URIRef(uri)
        document = self._documents.get(reference.document_uri)
        if document is None:
            return None
        return document.get(reference)

    def document(self, uri: str) -> Document | None:
        return self._documents.get(uri)

    def document_count(self) -> int:
        return len(self._documents)

    def resource_count(self) -> int:
        return self._resource_table.count()

    # ------------------------------------------------------------------
    # Subscriptions
    # ------------------------------------------------------------------
    def connect_subscriber(self, name: str, handler: BatchHandler) -> None:
        """Attach a directly connected subscriber (no network bus)."""
        self._direct_subscribers[name] = handler

    def subscribe(
        self,
        subscriber: str,
        rule_text: str,
        analyze: str | None = None,
    ) -> list[Subscription]:
        """Register a subscription rule for ``subscriber``.

        Rules containing ``or`` are split into conjuncts (Section 2.3);
        one subscription per conjunct is registered, all labelled with
        the original rule text.  Current matches are delivered right
        away.  Returns the registered subscriptions.

        ``analyze`` overrides the provider's default analysis policy for
        this call.  With ``"warn"`` or ``"reject"`` the rule is linted
        and subsumption-checked *before anything is stored*, so a
        rejected multi-conjunct rule never registers partially; findings
        land in :attr:`last_diagnostics`.
        """
        policy = self.analyze if analyze is None else analyze
        if policy not in ANALYZE_POLICIES:
            raise ValueError(
                f"analyze must be one of {ANALYZE_POLICIES}, got {policy!r}"
            )
        self.last_diagnostics = []
        if policy != "off":
            diagnostics = self.analyze_rule(rule_text, subscriber=subscriber)
            self.last_diagnostics = diagnostics
            if policy == "reject" and any(d.is_error for d in diagnostics):
                first = next(d for d in diagnostics if d.is_error)
                raise RuleAnalysisError(
                    f"subscription rejected by analysis: "
                    f"[{first.code}] {first.message}",
                    diagnostics=diagnostics,
                )
        rule = parse_rule(rule_text)
        conjuncts = normalize_rule(
            rule, self.schema, self.registry.named_rule_types()
        )
        named_producers = self.registry.named_producers()
        subscriptions: list[Subscription] = []
        with self._op():
            for index, normalized in enumerate(conjuncts):
                decomposed = decompose_rule(
                    normalized, self.schema, named_producers
                )
                stored_text = (
                    rule_text
                    if len(conjuncts) == 1
                    else f"{rule_text}#or{index}"
                )
                registration = self.registry.register_subscription(
                    subscriber, stored_text, decomposed
                )
                self.engine.initialize_rules(registration.created)
                subscription = registration.subscription
                subscriptions.append(subscription)
                matches = self.engine.current_matches(subscription.end_rule)
                if matches:
                    batch = self.publisher.initial_batch(
                        subscriber, subscription.sub_id, stored_text, matches
                    )
                    self._deliver(batch)
        return subscriptions

    # -- semantic vocabulary (repro.semantics, docs/SEMANTICS.md) -------

    def register_synonyms(self, kind: str, terms: list[str]) -> int:
        """Register a synonym set (``kind`` is ``property`` or ``value``)."""
        with self._op():
            set_id = self.registry.register_synonyms(kind, terms)
            self._reinitialize_semantics()
        return set_id

    def register_taxonomy_edge(self, narrower: str, broader: str) -> None:
        """Add a broader/narrower concept edge to the taxonomy."""
        with self._op():
            affected = self.registry.register_taxonomy_edge(narrower, broader)
            self._reinitialize_semantics(affected)

    def register_affine_mapping(
        self,
        source_property: str,
        target_property: str,
        scale: float,
        offset: float = 0.0,
    ) -> int:
        """Register ``target = scale * source + offset``."""
        with self._op():
            map_id = self.registry.register_affine_mapping(
                source_property, target_property, scale, offset
            )
            self._reinitialize_semantics()
        return map_id

    def register_enum_mapping(
        self,
        source_property: str,
        target_property: str,
        pairs: list[tuple[str, str]],
    ) -> int:
        """Register a finite value rename mapping."""
        with self._op():
            map_id = self.registry.register_enum_mapping(
                source_property, target_property, pairs
            )
            self._reinitialize_semantics()
        return map_id

    def _reinitialize_semantics(
        self, affected: list[int] | None = None
    ) -> None:
        """Rematerialize triggering rules after a vocabulary change.

        Vocabulary registered after subscriptions widens already-stored
        rules, so their materialized result sets must be recomputed
        against the existing metadata — future publications resync via
        the registry's mutation log, but stored state does not.
        """
        if self.registry.semantics == "off":
            return
        rule_ids = affected
        if rule_ids is None:
            rows = self.db.query_all(
                "SELECT rule_id FROM atomic_rules "
                "WHERE kind = 'triggering' ORDER BY rule_id"
            )
            rule_ids = [int(row["rule_id"]) for row in rows]
        for rule_id in rule_ids:
            initialize_triggering_rule(self.db, rule_id)

    def analyze_rule(
        self, rule_text: str, subscriber: str | None = None
    ) -> list[Diagnostic]:
        """Statically analyze a rule without registering anything.

        Runs the linter (schema, typing, satisfiability) and — when the
        rule is lintably clean — the subsumption check of each conjunct
        against the live registry.  Never raises on a bad rule; parse
        and normalization failures come back as diagnostics.
        """
        named_types = self.registry.named_rule_types()
        report = lint_rule_text(rule_text, self.schema, named_types)
        if report.has_errors:
            return list(report.diagnostics)
        try:
            rule = parse_rule(rule_text)
            conjuncts = normalize_rule(rule, self.schema, named_types)
            named_producers = self.registry.named_producers()
            for normalized in conjuncts:
                decomposed = decompose_rule(
                    normalized, self.schema, named_producers
                )
                report.extend(
                    check_subsumption(
                        decomposed,
                        self.registry,
                        subscriber=subscriber,
                        source=rule_text,
                    )
                )
        except RuleError:
            # The linter accepted what it could check; the rest of the
            # pipeline rejected the rule for a reason the linter does
            # not model (e.g. named-rule restrictions).  Registration
            # will surface that error; analysis reports what it has.
            pass
        return list(report.diagnostics)

    def unsubscribe(self, subscriber: str, rule_text: str) -> None:
        """Remove every subscription registered under ``rule_text``."""
        removed = False
        for subscription in self.registry.subscriptions_of(subscriber):
            base_text = subscription.rule_text.split("#or")[0]
            if subscription.rule_text == rule_text or base_text == rule_text:
                self.registry.unsubscribe(subscriber, subscription.rule_text)
                removed = True
        if not removed:
            raise SubscriptionError(
                f"subscriber {subscriber!r} has no subscription "
                f"{rule_text!r}"
            )

    def register_named_rule(self, name: str, rule_text: str) -> None:
        """Register a rule usable as a search extension by later rules."""
        rule = parse_rule(rule_text)
        conjuncts = normalize_rule(
            rule, self.schema, self.registry.named_rule_types()
        )
        if len(conjuncts) != 1:
            raise SubscriptionError(
                "named rules must be or-free (they serve as extensions)"
            )
        decomposed = decompose_rule(
            conjuncts[0], self.schema, self.registry.named_producers()
        )
        registration = self.registry.register_named_rule(
            name, rule_text, decomposed
        )
        self.engine.initialize_rules(registration.created)

    # ------------------------------------------------------------------
    # Browsing (direct MDP queries)
    # ------------------------------------------------------------------
    def browse(self, query_text: str) -> list[Resource]:
        """Evaluate a query at the MDP via the SQL translation.

        Named-rule extensions are inlined first so their predicates
        apply — the query paths have no atomic rules to carry them.
        """
        from repro.rules.inline import inline_named_query
        from repro.rules.parser import parse_rule as _parse_rule

        query = parse_query(query_text)
        definitions = {
            name: _parse_rule(text)
            for name, text in self.registry.named_rule_definitions().items()
        }
        if definitions:
            query = inline_named_query(query, definitions)
        uris = run_query_sql(
            self.db, query, self.schema, contains_index=self.contains_index
        )
        resources = []
        for uri in uris:
            content = self.resource(uri)
            if content is not None:
                resources.append(content)
        return resources

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _republish_strong_parents(self, outcome, diff) -> None:
        """Re-publish matched resources whose strong closure changed.

        When a resource is updated, LMRs holding it *through a strong
        reference* must refresh their copy even though the referencing
        resource's own match set is untouched (its content, and hence
        its filter derivations, did not change).  The paper's filter
        cannot see this case — the updated resource's atoms reach no
        rule of the referencing resource — so the provider walks the
        strong-reference edges backwards and re-sends every transitive
        parent that currently matches a subscribed rule.
        """
        updated_uris = [str(new.uri) for __, new in diff.updated]
        if not updated_uris:
            return
        strong_pairs: set[tuple[str, str]] = set()
        for class_name in self.schema.class_names():
            for prop in self.schema.strong_reference_properties(class_name):
                strong_pairs.add((class_name, prop.name))
        if not strong_pairs:
            return
        parents: set[str] = set()
        frontier = list(updated_uris)
        seen = set(frontier)
        while frontier:
            target = frontier.pop()
            rows = self.db.query_all(
                "SELECT DISTINCT uri_reference, class, property "
                "FROM filter_data WHERE value = ?",
                (target,),
            )
            for row in rows:
                if (row["class"], row["property"]) not in strong_pairs:
                    continue
                parent = row["uri_reference"]
                if parent in seen:
                    continue
                seen.add(parent)
                parents.add(parent)
                frontier.append(parent)
        if not parents:
            return
        already = {
            str(uri) for uris in outcome.matched.values() for uri in uris
        }
        for parent in sorted(parents - already):
            rows = self.db.query_all(
                "SELECT DISTINCT m.rule_id FROM materialized m "
                "JOIN subscriptions s ON s.end_rule = m.rule_id "
                "WHERE m.uri_reference = ?",
                (parent,),
            )
            for row in rows:
                outcome.add_matched(int(row["rule_id"]), URIRef(parent))

    def _publish(self, outcome: PublishOutcome) -> None:
        if not outcome.has_notifications:
            return
        for batch in self.publisher.batches_for(outcome):
            self._deliver(batch)

    def _deliver(self, batch: NotificationBatch) -> None:
        if not batch.notifications:
            return
        self._m_batches_sent.inc()
        if self.outbox is not None and (
            self.durable_delivery
            or batch.subscriber not in self._direct_subscribers
        ):
            # Reliable at-least-once delivery: stamp, queue, attempt.
            # Failures are retried by later flushes; they never abort
            # the publish that produced the batch.  Inside a durable
            # operation the entry is persisted with the transaction and
            # the flush is deferred until after the commit.
            seq = self.outbox.reserve_seq(batch.subscriber)
            batch.source = self.name
            batch.seq = seq
            self.outbox.enqueue(batch.subscriber, "notifications", batch, seq)
            if self._in_op:
                self._pending_flush.add(batch.subscriber)
            else:
                self.outbox.flush(batch.subscriber)
            return
        handler = self._direct_subscribers.get(batch.subscriber)
        if handler is not None:
            handler(batch)
            return
        if self.bus is not None:  # pragma: no cover - bus implies outbox
            self.bus.send_one_way(
                self.name, batch.subscriber, "notifications", batch
            )

    def resync_subscriber(self, subscriber: str, after_seq: int) -> int:
        """Replay everything a restarted subscriber may have missed.

        Dead letters for the subscriber are redriven, acknowledged
        batches with ``seq > after_seq`` are re-enqueued, and the queue
        is flushed.  Redelivered duplicates are ignored by the
        subscriber's ``(source, seq)`` dedup index.  Returns the number
        of batches delivered by the flush.
        """
        if self.outbox is None:
            return 0
        self.outbox.redrive(subscriber)
        self.outbox.replay_since(subscriber, after_seq)
        return self.outbox.flush(subscriber)

    def deliver_pending(self) -> int:
        """Flush every queued outbox entry (post-recovery redelivery).

        A restarted durable provider recovers its committed-but-
        undelivered batches into the outbox queues; call this once the
        subscribers are reattached to push them out.  Receivers dedup
        by ``(source, seq)``, so redelivering an already-applied batch
        is harmless.  Returns the number of batches delivered.
        """
        if self.outbox is None:
            return 0
        return self.outbox.flush()

    def outbox_watermark(self, destination: str) -> int:
        """Highest notification seq ever reserved for ``destination``.

        Read from the persistent store when there is one, so the value
        reflects committed state — exactly what a snapshot of this
        provider's database would carry.
        """
        if self.durable_delivery:
            row = self.db.query_one(
                "SELECT MAX(seq) AS high FROM outbox_messages "
                "WHERE destination = ?",
                (destination,),
            )
            if row is not None and row["high"] is not None:
                return int(row["high"])
            return 0
        if self.outbox is None:
            return 0
        return self.outbox._next_seq.get(destination, 0)

    # ------------------------------------------------------------------
    # Snapshots (docs/DURABILITY.md)
    # ------------------------------------------------------------------
    def snapshot(self, path: str | None = None,
                 durability: str | None = None) -> Database:
        """A transactionally consistent copy of the provider's store.

        Uses SQLite's online backup API via :meth:`Database.clone`;
        the copy includes documents, rules, subscriptions, outbox and
        version state, so a new provider constructed on it resumes
        exactly where the snapshot was taken — and an LMR can catch up
        from it via
        :meth:`~repro.mdv.repository.LocalMetadataRepository.catch_up_from_snapshot`.
        """
        return self.db.clone(path, durability=durability)

    # ------------------------------------------------------------------
    # Backbone integration
    # ------------------------------------------------------------------
    def set_replication_hook(
        self, hook: Callable[[str, Document | None, tuple[int, str]], None]
    ) -> None:
        """Called after local registration with ``(uri, document,
        version)``; the backbone uses this to replicate the document to
        peer MDPs (``document=None`` = deletion)."""
        self._replication_hook = hook

    def _next_version(self, document_uri: str) -> tuple[int, str]:
        """Bump a document's version for a local (non-replicated) write.

        Versions are ``(counter, origin)`` pairs, totally ordered by
        tuple comparison — concurrent writes resolve deterministically
        (last writer wins, origin name breaking counter ties).
        """
        current = self._doc_versions.get(document_uri)
        counter = (current[0] if current is not None else 0) + 1
        version = (counter, self.name)
        self._doc_versions[document_uri] = version
        self._persist_version(document_uri, version)
        return version

    def _persist_version(self, document_uri: str, version: tuple[int, str]) -> None:
        with self.db.transaction():
            self.db.execute(
                "INSERT OR REPLACE INTO doc_versions "
                "(document_uri, counter, origin) VALUES (?, ?, ?)",
                (document_uri, version[0], version[1]),
            )

    def document_version(self, document_uri: str) -> tuple[int, str] | None:
        return self._doc_versions.get(document_uri)

    def version_digest(self) -> dict[str, tuple[int, str]]:
        """Every known document version, tombstones included.

        Peers exchange these digests during anti-entropy
        (:meth:`~repro.mdv.backbone.Backbone.reconcile`) to find
        documents they missed during a partition.
        """
        return dict(self._doc_versions)

    def fetch_document(self, document_uri: str):
        """A document's current content and version (anti-entropy pull)."""
        return (
            self._documents.get(document_uri),
            self._doc_versions.get(document_uri),
        )

    def apply_replica(
        self,
        document_uri: str,
        document: Document | None,
        version: tuple[int, str] | None = None,
        source: str | None = None,
        seq: int | None = None,
    ) -> str:
        """Apply a replicated change originating at a peer MDP.

        Idempotent: redeliveries of the same ``(source, seq)`` and
        changes older than the locally applied version are ignored, so
        at-least-once delivery yields exactly-once application.
        Returns ``"applied"``, ``"duplicate"`` or ``"stale"``.
        """
        with self._op():
            if source is not None and seq is not None:
                if not self.replica_dedup.check_and_record(source, seq):
                    return "duplicate"
            if version is not None:
                local = self._doc_versions.get(document_uri)
                if local is not None and local >= version:
                    self.stale_replicas_ignored += 1
                    self._m_stale_replicas.inc()
                    return "stale"
                self._doc_versions[document_uri] = version
                self._persist_version(document_uri, version)
            if document is None:
                if document_uri in self._documents:
                    self.delete_document(document_uri, _replicated=True)
                return "applied"
            self.register_document(document.copy(), _replicated=True)
        return "applied"

    # ------------------------------------------------------------------
    # Bus endpoint
    # ------------------------------------------------------------------
    def _handle_message(self, message) -> object:
        """Requests arriving over the simulated network."""
        kind = message.kind
        payload = message.payload
        if kind == "register_document":
            return self.register_document(payload)
        if kind == "delete_document":
            return self.delete_document(payload)
        if kind == "subscribe":
            subscriber, rule_text = payload
            return self.subscribe(subscriber, rule_text)
        if kind == "analyze":
            subscriber, rule_text = payload
            return self.analyze_rule(rule_text, subscriber=subscriber)
        if kind == "unsubscribe":
            subscriber, rule_text = payload
            return self.unsubscribe(subscriber, rule_text)
        if kind == "browse":
            return self.browse(payload)
        if kind == "schema":
            return self.schema_document()
        if kind == "named_definitions":
            return self.registry.named_rule_definitions()
        if kind == "replicate":
            if isinstance(payload, ReplicaUpdate):
                return self.apply_replica(
                    payload.document_uri,
                    payload.document,
                    version=payload.version,
                    source=payload.source,
                    seq=payload.seq,
                )
            document_uri, document = payload
            return self.apply_replica(document_uri, document)
        if kind == "ping":
            return "pong"
        if kind == "digest":
            return self.version_digest()
        if kind == "fetch_document":
            return self.fetch_document(payload)
        if kind == "resync":
            subscriber, watermark = payload
            return self.resync_subscriber(subscriber, watermark)
        raise ValueError(f"unknown message kind {kind!r}")
