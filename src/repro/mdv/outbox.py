"""Reliable at-least-once delivery: outbox, retry/backoff, dedup.

The paper requires MDPs to "consistently replicate metadata among each
other" and to keep LMR caches consistent through notifications — over a
network that, at Internet scale, loses and duplicates messages.  This
module supplies the delivery contract that survives that network:

- :class:`Outbox` — a per-destination FIFO of unacknowledged messages,
  each stamped with a monotonic per-destination sequence number.  A
  successful (non-raising) transport call is the acknowledgement;
  :class:`~repro.errors.NetworkError` failures are retried with capped
  exponential backoff plus seeded jitter on a *simulated* clock, and
  after ``max_attempts`` the entry moves to a dead-letter queue from
  which :meth:`Outbox.redrive` can resurrect it (e.g. after a partition
  heals).  Delivery is therefore *at-least-once*.
- :class:`DedupIndex` — the receiving side: ``(source, seq)`` pairs are
  applied exactly once; duplicates (from retries or from a faulty link)
  are counted and ignored.  At-least-once delivery plus idempotent
  receivers yields *exactly-once application*.
- :class:`ReplicaUpdate` — the backbone's replication envelope: a
  document change with its version vector entry and delivery metadata.

Non-network transport failures (the receiver rejected the message) are
*poison*: they dead-letter immediately instead of retrying forever, and
the fan-out to other destinations continues — a raising peer never
again stalls the loop.

With an :class:`OutboxStore` the outbox becomes a *transactional*
outbox (docs/DURABILITY.md): entries are written to the
``outbox_messages`` table as they are enqueued — inside the same
database transaction as the state change that produced them — and
marked delivered after a successful transport call.  A process crash
between commit and delivery therefore loses nothing: a restarted outbox
:meth:`Outbox.recover`\\ s its sequence watermarks and its undelivered
tail from the store before the bus reattaches.
"""

from __future__ import annotations

import pickle
import random
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import CrashError, NetworkError
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.engine import Database

if TYPE_CHECKING:
    from repro.rdf.model import Document

__all__ = [
    "RetryPolicy",
    "OutboxEntry",
    "DeadLetter",
    "Outbox",
    "OutboxStore",
    "DedupIndex",
    "ReplicaUpdate",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with jitter, in simulated ms."""

    base_delay_ms: float = 10.0
    multiplier: float = 2.0
    max_delay_ms: float = 5000.0
    jitter_ms: float = 5.0
    #: Attempts before an entry is dead-lettered.
    max_attempts: int = 8

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        raw = self.base_delay_ms * self.multiplier ** max(attempt - 1, 0)
        return min(raw, self.max_delay_ms) + rng.uniform(0.0, self.jitter_ms)


@dataclass
class OutboxEntry:
    """One unacknowledged message."""

    destination: str
    kind: str
    payload: Any
    seq: int
    attempts: int = 0
    #: Simulated time before which no retry is attempted.
    due_ms: float = 0.0
    last_error: str | None = None
    #: Clock reading at enqueue time (delivery-latency accounting).
    enqueued_ms: float = 0.0


@dataclass(frozen=True)
class DeadLetter:
    """An entry that exhausted its retries or poisoned its receiver."""

    entry: OutboxEntry
    error: str
    at_ms: float
    #: ``True`` when the receiver rejected the message (non-retryable).
    poison: bool = False


@dataclass(frozen=True)
class ReplicaUpdate:
    """A replicated document change (``document is None`` = deletion)."""

    document_uri: str
    document: Document | None
    #: ``(counter, origin)`` — totally ordered, last-writer-wins.
    version: tuple[int, str]
    source: str
    seq: int

    def approximate_size(self) -> int:
        size = len(self.document_uri) + len(self.source) + 16
        if self.document is not None:
            for resource in self.document:
                size += len(str(resource.uri)) + len(resource.rdf_class)
                for name in resource.property_names():
                    for value in resource.get(name):
                        size += len(name) + len(str(value))
        return size


#: ``transport(destination, kind, payload)``; raises on failure.
Transport = Callable[[str, str, Any], Any]


class OutboxStore:
    """SQLite persistence behind an :class:`Outbox`.

    Rows live in the ``outbox_messages`` table of the owning node's
    store (:mod:`repro.storage.schema`), so :meth:`record` calls made
    inside the provider's operation transaction commit or vanish
    *atomically with* the state change whose notifications they carry.
    Payloads are pickled: the store is written and read only by the
    owning node, never by untrusted parties.
    """

    def __init__(self, db: Database):
        self._db = db

    def record(self, entry: OutboxEntry) -> None:
        """Persist one enqueued entry (idempotent per ``(dest, seq)``)."""
        with self._db.transaction():
            self._db.execute(
                "INSERT OR REPLACE INTO outbox_messages "
                "(destination, seq, kind, payload, delivered) "
                "VALUES (?, ?, ?, ?, 0)",
                (
                    entry.destination,
                    entry.seq,
                    entry.kind,
                    pickle.dumps(entry.payload),
                ),
            )

    def mark_delivered(self, destination: str, seq: int) -> None:
        with self._db.transaction():
            self._db.execute(
                "UPDATE outbox_messages SET delivered = 1 "
                "WHERE destination = ? AND seq = ?",
                (destination, seq),
            )

    def watermarks(self) -> dict[str, int]:
        """Highest persisted sequence number per destination."""
        rows = self._db.query_all(
            "SELECT destination, MAX(seq) AS high FROM outbox_messages "
            "GROUP BY destination"
        )
        return {row["destination"]: int(row["high"]) for row in rows}

    def undelivered(self) -> list[OutboxEntry]:
        """Every persisted entry not yet marked delivered, in seq order."""
        rows = self._db.query_all(
            "SELECT destination, seq, kind, payload FROM outbox_messages "
            "WHERE delivered = 0 ORDER BY destination, seq"
        )
        return [self._entry(row) for row in rows]

    def entries_since(self, destination: str, after_seq: int) -> list[OutboxEntry]:
        """Persisted entries of a destination with ``seq > after_seq``."""
        rows = self._db.query_all(
            "SELECT destination, seq, kind, payload FROM outbox_messages "
            "WHERE destination = ? AND seq > ? ORDER BY seq",
            (destination, after_seq),
        )
        return [self._entry(row) for row in rows]

    @staticmethod
    def _entry(row: Any) -> OutboxEntry:
        return OutboxEntry(
            destination=row["destination"],
            kind=row["kind"],
            payload=pickle.loads(row["payload"]),
            seq=int(row["seq"]),
        )


class Outbox:
    """Per-destination reliable send queues for one source node.

    ``clock`` and ``sleep`` tie retries to a simulated timeline (by
    default the outbox keeps its own); with a
    any :class:`~repro.net.transport.Transport` pass ``clock=bus.now_ms``
    and ``sleep=bus.sleep`` so backoff windows and
    network latency share one clock.  No wall time is ever consumed.
    """

    def __init__(
        self,
        source: str,
        transport: Transport,
        clock: Callable[[], float] | None = None,
        sleep: Callable[[float], None] | None = None,
        policy: RetryPolicy | None = None,
        seed: int = 0,
        metrics: MetricsRegistry | None = None,
        store: OutboxStore | None = None,
    ):
        self.source = source
        self.policy = policy or RetryPolicy()
        self._transport = transport
        self._store = store
        self._own_clock_ms = 0.0
        self._clock = clock if clock is not None else self._read_own_clock
        self._sleep = sleep if sleep is not None else self._advance_own_clock
        self._rng = random.Random(seed)
        self._queues: dict[str, deque[OutboxEntry]] = {}
        self._next_seq: dict[str, int] = {}
        #: Destinations whose queue was dead-lettered wholesale; no
        #: further delivery is attempted until a redrive unparks them,
        #: preserving sequence order across the outage.
        self._parked: set[str] = set()
        #: Acknowledged entries retained per destination for replay.
        self._history: dict[str, list[OutboxEntry]] = {}
        self.dead_letters: list[DeadLetter] = []
        self.enqueued = 0
        self.delivered = 0
        self.retries = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_enqueued = self.metrics.counter("outbox.enqueued")
        self._m_delivered = self.metrics.counter("outbox.delivered")
        self._m_retries = self.metrics.counter("outbox.retries")
        self._m_dead = self.metrics.counter("outbox.dead_letters")
        self._m_poison = self.metrics.counter("outbox.poison")
        self._m_redriven = self.metrics.counter("outbox.redriven")
        self._m_replayed = self.metrics.counter("outbox.replayed")
        self._m_persisted = self.metrics.counter("outbox.persisted")
        self._m_recovered = self.metrics.counter("outbox.recovered")
        self._m_latency = self.metrics.histogram("outbox.delivery_latency_ms")
        self._g_pending = self.metrics.gauge(
            "outbox.pending", {"source": source}
        )
        self._g_dead = self.metrics.gauge(
            "outbox.dead", {"source": source}
        )

    def _sync_gauges(self) -> None:
        self._g_pending.set(self.pending_count())
        self._g_dead.set(len(self.dead_letters))

    def _read_own_clock(self) -> float:
        return self._own_clock_ms

    def _advance_own_clock(self, ms: float) -> None:
        self._own_clock_ms += ms

    # ------------------------------------------------------------------
    # Enqueue
    # ------------------------------------------------------------------
    def reserve_seq(self, destination: str) -> int:
        """Claim the next monotonic sequence number for a destination.

        With a persistent store the first reservation per destination
        resumes from the highest persisted sequence number, so a
        restarted node continues the stream instead of reusing numbers
        its receivers already applied.
        """
        current = self._next_seq.get(destination)
        if current is None:
            current = 0
            if self._store is not None:
                current = self._store.watermarks().get(destination, 0)
        seq = current + 1
        self._next_seq[destination] = seq
        return seq

    def enqueue(
        self, destination: str, kind: str, payload: Any, seq: int | None = None
    ) -> OutboxEntry:
        """Queue a message; ``seq`` defaults to a freshly reserved one.

        With a persistent store the entry is recorded durably as part of
        the caller's open transaction (transactional outbox).
        """
        if seq is None:
            seq = self.reserve_seq(destination)
        entry = OutboxEntry(
            destination, kind, payload, seq, enqueued_ms=self._clock()
        )
        if self._store is not None:
            self._store.record(entry)
            self._m_persisted.inc()
        self._queues.setdefault(destination, deque()).append(entry)
        self.enqueued += 1
        self._m_enqueued.inc()
        self._g_pending.set(self.pending_count())
        return entry

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def flush(self, destination: str | None = None) -> int:
        """Attempt every due entry once; returns deliveries.

        Per destination the queue is FIFO with head-of-line blocking: a
        retryable failure of the head backs the whole queue off, so
        sequence order is preserved on the wire.  When the head exhausts
        its retries the destination is considered down: the *entire*
        queue dead-letters and the destination is parked until
        :meth:`redrive` — delivering later entries past a lost earlier
        one would reorder the stream.  Poison failures (receiver
        rejected the message) skip just the poisoned entry.
        """
        destinations = (
            [destination] if destination is not None else sorted(self._queues)
        )
        delivered = 0
        for name in destinations:
            delivered += self._flush_queue(name)
        self._sync_gauges()
        return delivered

    def _flush_queue(self, destination: str) -> int:
        if destination in self._parked:
            return 0
        queue = self._queues.get(destination)
        delivered = 0
        while queue:
            entry = queue[0]
            if entry.due_ms > self._clock():
                break
            try:
                self._transport(destination, entry.kind, entry.payload)
            except CrashError:
                # An injected crash is a process death, not a receiver
                # rejection — it must never be absorbed as poison.  The
                # entry stays undelivered in the store; recovery will
                # re-enqueue and redeliver it (receiver dedup absorbs
                # the duplicate if the handler already ran).
                raise
            except NetworkError as exc:
                entry.attempts += 1
                entry.last_error = str(exc)
                if entry.attempts >= self.policy.max_attempts:
                    self._park(destination, queue, str(exc))
                    break
                self.retries += 1
                self._m_retries.inc()
                entry.due_ms = self._clock() + self.policy.delay_for(
                    entry.attempts, self._rng
                )
                break
            except Exception as exc:  # noqa: BLE001 - receiver rejected it
                entry.attempts += 1
                entry.last_error = str(exc)
                queue.popleft()
                self.dead_letters.append(
                    DeadLetter(entry, str(exc), self._clock(), poison=True)
                )
                self._m_dead.inc()
                self._m_poison.inc()
                continue
            queue.popleft()
            if self._store is not None:
                self._store.mark_delivered(destination, entry.seq)
            self._history.setdefault(destination, []).append(entry)
            self.delivered += 1
            delivered += 1
            self._m_delivered.inc()
            self._m_latency.observe(
                max(self._clock() - entry.enqueued_ms, 0.0)
            )
        if queue is not None and not queue:
            del self._queues[destination]
        return delivered

    def _park(self, destination: str, queue: deque[OutboxEntry],
              error: str) -> None:
        """Dead-letter the whole queue and halt delivery to ``destination``."""
        head = True
        now = self._clock()
        while queue:
            entry = queue.popleft()
            reason = error if head else f"held back behind dead letter: {error}"
            head = False
            self.dead_letters.append(DeadLetter(entry, reason, now))
            self._m_dead.inc()
        self._parked.add(destination)

    def drain(
        self, destination: str | None = None, max_rounds: int = 10_000
    ) -> int:
        """Flush repeatedly, sleeping out backoff windows, until the
        pending queues are empty (delivered or dead-lettered)."""
        delivered = 0
        for _ in range(max_rounds):
            if not self._deliverable_pending(destination):
                break
            delivered += self.flush(destination)
            next_due = self._next_due(destination)
            if next_due is None:
                continue
            now = self._clock()
            if next_due > now:
                self._sleep(next_due - now)
        return delivered

    def _deliverable_pending(self, destination: str | None) -> int:
        """Queued entries on destinations that are not parked."""
        return sum(
            len(queue)
            for name, queue in self._queues.items()
            if name not in self._parked
            and (destination is None or name == destination)
        )

    def _next_due(self, destination: str | None) -> float | None:
        heads = [
            queue[0].due_ms
            for name, queue in self._queues.items()
            if queue
            and name not in self._parked
            and (destination is None or name == destination)
        ]
        return min(heads) if heads else None

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def recover(self) -> int:
        """Reload watermarks and the undelivered tail from the store.

        Run once after a restart, *before* the bus reattaches: sequence
        counters resume past every persisted number (no reuse), and
        committed-but-undelivered entries re-enter their queues in seq
        order, ready for the next flush.  Returns the number of entries
        restored.
        """
        if self._store is None:
            return 0
        for destination, high in self._store.watermarks().items():
            if high > self._next_seq.get(destination, 0):
                self._next_seq[destination] = high
        restored = 0
        for entry in self._store.undelivered():
            queue = self._queues.setdefault(entry.destination, deque())
            if any(pending.seq == entry.seq for pending in queue):
                continue
            entry.enqueued_ms = self._clock()
            queue.append(entry)
            self.enqueued += 1
            restored += 1
        for queue in self._queues.values():
            ordered = sorted(queue, key=lambda e: e.seq)
            queue.clear()
            queue.extend(ordered)
        self._m_recovered.inc(restored)
        self._sync_gauges()
        return restored

    def redrive(self, destination: str | None = None) -> int:
        """Move dead letters back into their queues (in seq order) and
        unpark the affected destinations."""
        if destination is None:
            self._parked.clear()
        else:
            self._parked.discard(destination)
        kept: list[DeadLetter] = []
        revived: list[OutboxEntry] = []
        for letter in self.dead_letters:
            if destination is None or letter.entry.destination == destination:
                revived.append(letter.entry)
            else:
                kept.append(letter)
        self.dead_letters = kept
        for entry in sorted(revived, key=lambda e: (e.destination, e.seq)):
            entry.attempts = 0
            entry.due_ms = 0.0
            queue = self._queues.setdefault(entry.destination, deque())
            # Dead letters predate anything still pending: put them in
            # front, keeping per-destination seq order on the wire.
            queue.appendleft(entry)
        for queue in self._queues.values():
            ordered = sorted(queue, key=lambda e: e.seq)
            queue.clear()
            queue.extend(ordered)
        self._m_redriven.inc(len(revived))
        self._sync_gauges()
        return len(revived)

    def replay_since(self, destination: str, after_seq: int) -> int:
        """Re-enqueue acknowledged history with ``seq > after_seq``.

        Supports receiver resync after a restart: replayed entries are
        redelivered and deduplicated by the receiver's
        :class:`DedupIndex`.  With a persistent store the acknowledged
        history survives the *sender's* restarts too, so replay works
        across process boundaries, not just within one.
        """
        if self._store is not None:
            entries = self._store.entries_since(destination, after_seq)
        else:
            entries = [
                entry
                for entry in self._history.get(destination, [])
                if entry.seq > after_seq
            ]
        queue = self._queues.setdefault(destination, deque())
        pending_seqs = {entry.seq for entry in queue}
        replayed = 0
        for entry in entries:
            if entry.seq in pending_seqs:
                continue
            replay = OutboxEntry(
                destination, entry.kind, entry.payload, entry.seq,
                enqueued_ms=self._clock(),
            )
            queue.append(replay)
            self.enqueued += 1
            replayed += 1
        ordered = sorted(queue, key=lambda e: e.seq)
        queue.clear()
        queue.extend(ordered)
        self._m_enqueued.inc(replayed)
        self._m_replayed.inc(replayed)
        self._sync_gauges()
        return len(entries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending_count(self, destination: str | None = None) -> int:
        if destination is not None:
            return len(self._queues.get(destination, ()))
        return sum(len(queue) for queue in self._queues.values())

    def dead_count(self, destination: str | None = None) -> int:
        return sum(
            1
            for letter in self.dead_letters
            if destination is None or letter.entry.destination == destination
        )

    def destinations(self) -> list[str]:
        names = set(self._queues) | set(self._next_seq)
        return sorted(names)

    def lag_report(self) -> dict[str, dict[str, object]]:
        """Per-destination backlog: pending, dead, last error."""
        report: dict[str, dict[str, object]] = {}
        for name in self.destinations():
            queue = self._queues.get(name)
            pending = len(queue) if queue else 0
            dead = self.dead_count(name)
            if not pending and not dead:
                continue
            last_error: str | None = None
            if queue:
                last_error = queue[0].last_error
            if last_error is None and dead:
                last_error = next(
                    letter.error
                    for letter in reversed(self.dead_letters)
                    if letter.entry.destination == name
                )
            report[name] = {
                "pending": pending,
                "dead": dead,
                "last_error": last_error,
            }
        return report


class DedupIndex:
    """Receiver-side ``(source, seq)`` exactly-once-application index.

    With a backing :class:`~repro.storage.engine.Database` (its
    ``dedup_entries`` table) the index is durable: recorded pairs are
    persisted as they arrive and reloaded on construction, so a
    restarted receiver keeps ignoring the duplicates it already
    applied.  :meth:`prime` additionally seeds a per-source floor —
    everything at or below it counts as seen — which is how an LMR
    restored from a provider snapshot skips the stream prefix the
    snapshot already reflects.
    """

    def __init__(self, db: Database | None = None) -> None:
        self._db = db
        self._seen: dict[str, set[int]] = {}
        #: Per-source floor: seqs <= floor are treated as already seen.
        self._floor: dict[str, int] = {}
        #: Messages applied for the first time.
        self.applied = 0
        #: Messages ignored as duplicates.
        self.duplicates_ignored = 0
        if db is not None:
            for row in db.query_all("SELECT source, seq FROM dedup_entries"):
                self._seen.setdefault(row["source"], set()).add(int(row["seq"]))

    def check_and_record(self, source: str, seq: int) -> bool:
        """``True`` when ``(source, seq)`` is fresh (and now recorded)."""
        if seq <= self._floor.get(source, 0):
            self.duplicates_ignored += 1
            return False
        seen = self._seen.setdefault(source, set())
        if seq in seen:
            self.duplicates_ignored += 1
            return False
        seen.add(seq)
        if self._db is not None:
            with self._db.transaction():
                self._db.execute(
                    "INSERT OR IGNORE INTO dedup_entries (source, seq) "
                    "VALUES (?, ?)",
                    (source, seq),
                )
        self.applied += 1
        return True

    def prime(self, source: str, upto_seq: int) -> None:
        """Mark every seq of ``source`` up to ``upto_seq`` as seen."""
        if upto_seq > self._floor.get(source, 0):
            self._floor[source] = upto_seq

    def highest(self, source: str) -> int:
        seen = self._seen.get(source)
        high = max(seen) if seen else 0
        return max(high, self._floor.get(source, 0))

    def watermarks(self) -> dict[str, int]:
        marks = {
            source: max(seqs) for source, seqs in self._seen.items() if seqs
        }
        for source, floor in self._floor.items():
            if floor > marks.get(source, 0):
                marks[source] = floor
        return marks

    def seen_count(self, source: str) -> int:
        return len(self._seen.get(source, ()))
