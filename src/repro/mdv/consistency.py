"""Alternative cache-consistency strategies (paper, Section 3.5).

After presenting the three-pass filter algorithm for updates and
deletions, the paper sketches two alternatives: *"e.g., to store for
each resource a list of LMR's caching the resource.  Or to use
periodical cache invalidation, based on a time-to-live approach,
resulting in resources dropping out of an LMR cache if they are not
reinserted periodically."*

This module implements all three as interchangeable strategies so the
ablation benchmark can compare them:

- :class:`FilterStrategy` — the paper's design: three filter passes per
  update, precise match/unmatch notifications.
- :class:`ResourceListStrategy` — the MDP tracks which subscriptions
  received each resource; an update re-evaluates only those
  subscriptions' *full rules* against the store (one filter pass for new
  matches, full rule evaluation per affected cached resource for
  evictions).  Precise, but per-update cost grows with the number of
  rules attached to the changed resources.
- :class:`TTLStrategy` — no eviction notifications at all; one filter
  pass publishes new/updated matches and LMR entries expire unless the
  periodic re-publication refreshes them.  Cheap at the MDP, but caches
  serve stale data for up to one TTL.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filter.results import PublishOutcome
from repro.mdv.cache import CacheStore
from repro.mdv.provider import MetadataProvider
from repro.query.sql import run_query_sql
from repro.rdf.diff import DocumentDiff
from repro.rdf.model import URIRef
from repro.rules.ast import Query
from repro.rules.parser import parse_rule

__all__ = [
    "StrategyCost",
    "FilterStrategy",
    "ResourceListStrategy",
    "TTLStrategy",
    "expire_stale_entries",
]


@dataclass
class StrategyCost:
    """Work accounting for one processed update."""

    filter_passes: int = 0
    full_rule_evaluations: int = 0

    def add(self, other: "StrategyCost") -> None:
        self.filter_passes += other.filter_passes
        self.full_rule_evaluations += other.full_rule_evaluations


class FilterStrategy:
    """The paper's three-pass filter algorithm (the default)."""

    name = "filter"

    def __init__(self, provider: MetadataProvider):
        self.provider = provider
        self.cost = StrategyCost()

    def process_diff(self, diff: DocumentDiff) -> PublishOutcome:
        outcome = self.provider.engine.process_diff(diff)
        self.cost.filter_passes += len(outcome.passes) or 1
        return outcome


@dataclass
class _ResourceSubscribers:
    """Which subscriptions cache which resource (MDP-side book).

    Maps every *cached* resource — the registered resource plus its
    strong-reference closure, since both live in LMR caches — to the
    ``(sub_id, registered_uri)`` pairs responsible for its presence.
    """

    by_resource: dict[URIRef, set[tuple[int, URIRef]]] = field(
        default_factory=dict
    )

    def record(self, outcome: PublishOutcome, end_rule_subs, closure_uris) -> None:
        for rule_id, uris in outcome.matched.items():
            for sub in end_rule_subs(rule_id):
                for uri in uris:
                    entry = (sub.sub_id, uri)
                    self.by_resource.setdefault(uri, set()).add(entry)
                    for member in closure_uris(uri):
                        self.by_resource.setdefault(member, set()).add(entry)

    def forget(self, entries) -> None:
        for entry in entries:
            for uri in list(self.by_resource):
                pairs = self.by_resource[uri]
                pairs.discard(entry)
                if not pairs:
                    del self.by_resource[uri]


class ResourceListStrategy:
    """Per-resource subscriber lists instead of filter passes 1–2."""

    name = "resource-list"

    def __init__(self, provider: MetadataProvider):
        self.provider = provider
        self.book = _ResourceSubscribers()
        self.cost = StrategyCost()

    def _subs_for_rule(self, rule_id: int):
        return self.provider.registry.subscriptions_for({rule_id})

    def _closure_uris(self, uri: URIRef) -> set[URIRef]:
        """Transitive strong-reference targets, read from filter_data."""
        schema = self.provider.schema
        strong_pairs = {
            (class_name, prop.name)
            for class_name in schema.class_names()
            for prop in schema.strong_reference_properties(class_name)
        }
        closure: set[URIRef] = set()
        frontier = [str(uri)]
        while frontier:
            current = frontier.pop()
            rows = self.provider.db.query_all(
                "SELECT class, property, value FROM filter_data "
                "WHERE uri_reference = ?",
                (current,),
            )
            for row in rows:
                if (row["class"], row["property"]) not in strong_pairs:
                    continue
                target = URIRef(row["value"])
                if target not in closure:
                    closure.add(target)
                    frontier.append(str(target))
        return closure

    def process_diff(self, diff: DocumentDiff) -> PublishOutcome:
        engine = self.provider.engine
        if not diff.old_versions_of_changed():
            outcome = engine.process_insertions(diff.inserted)
            self.cost.filter_passes += 1
            self.book.record(outcome, self._subs_for_rule, self._closure_uris)
            return outcome

        # Apply the change and run ONE filter pass for new matches.
        from repro.filter.decompose import resources_atoms

        changed_uris = [str(r.uri) for r in diff.old_versions_of_changed()]
        engine._filter_data.delete_for(changed_uris)
        # Drop the changed resources' own materialized derivations; rows
        # derived *through* them at other resources stay until the
        # per-resource re-evaluation (this strategy's trade-off).
        engine._materialized.delete_uris(changed_uris)
        new_resources = diff.new_versions_of_changed()
        engine._filter_data.insert_atoms(resources_atoms(new_resources))
        run = engine.run(
            input_atoms=resources_atoms(new_resources),
            materialize=True,
            collect="end",
        )
        self.cost.filter_passes += 1
        outcome = PublishOutcome()
        outcome.passes.append(run)
        outcome.matched = run.matches_of(self.provider.registry.end_rule_ids())
        outcome.deleted = {r.uri for r in diff.deleted}

        # Eviction decisions: re-evaluate the full rule of every
        # subscription attached to a changed cached resource.
        all_subs = {
            s.sub_id: s
            for s in self.provider.registry.subscriptions_for(
                self.provider.registry.end_rule_ids()
            )
        }
        affected = {URIRef(uri) for uri in changed_uris}
        entries: set[tuple[int, URIRef]] = set()
        for uri in sorted(affected):
            entries.update(self.book.by_resource.get(uri, ()))
        forget: list[tuple[int, URIRef]] = []
        for sub_id, registered in sorted(entries):
            subscription = all_subs.get(sub_id)
            if subscription is None:
                continue
            rule = parse_rule(subscription.rule_text.split("#or")[0])
            query = Query(rule.extensions, rule.register, rule.where)
            matches = run_query_sql(
                self.provider.db, query, self.provider.schema
            )
            self.cost.full_rule_evaluations += 1
            if registered not in matches:
                outcome.unmatched.setdefault(
                    subscription.end_rule, set()
                ).add(registered)
                forget.append((sub_id, registered))
            else:
                # Still matching after the change: refresh the copy.
                outcome.add_matched(subscription.end_rule, registered)
        self.book.forget(forget)
        self.book.record(outcome, self._subs_for_rule, self._closure_uris)
        return outcome


class TTLStrategy:
    """Publish-only consistency: stale entries simply expire."""

    name = "ttl"

    def __init__(self, provider: MetadataProvider):
        self.provider = provider
        self.cost = StrategyCost()

    def process_diff(self, diff: DocumentDiff) -> PublishOutcome:
        engine = self.provider.engine
        from repro.filter.decompose import resources_atoms

        old_changed = diff.old_versions_of_changed()
        if old_changed:
            changed_uris = [str(r.uri) for r in old_changed]
            engine._filter_data.delete_for(changed_uris)
            # Stale derivations *through* changed resources age out with
            # the TTL; the changed resources' own rows go now.
            engine._materialized.delete_uris(changed_uris)
        new_resources = diff.new_versions_of_changed()
        engine._filter_data.insert_atoms(resources_atoms(new_resources))
        run = engine.run(
            input_atoms=resources_atoms(new_resources),
            materialize=True,
            collect="end",
        )
        self.cost.filter_passes += 1
        outcome = PublishOutcome()
        outcome.passes.append(run)
        outcome.matched = run.matches_of(self.provider.registry.end_rule_ids())
        outcome.deleted = {r.uri for r in diff.deleted}
        return outcome


def expire_stale_entries(cache: CacheStore, now: int, ttl: int) -> int:
    """TTL expiry pass at the LMR: evict entries not refreshed in time.

    Local metadata never expires.  Returns the number of evictions.
    """
    evicted = 0
    for uri in list(cache.uris()):
        entry = cache.get(uri)
        if entry is None or entry.is_local:
            continue
        if now - entry.refreshed_at > ttl:
            if cache.evict(uri):
                evicted += 1
    return evicted
