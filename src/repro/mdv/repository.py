"""The Local Metadata Repository (LMR) — the caching middle tier.

LMRs "do the actual metadata query processing.  For efficiency reasons,
i.e., to avoid communication across the Internet, LMRs cache global
metadata and use only locally available metadata for query processing"
(paper, Section 2.2).

An LMR:

- subscribes to an MDP with rules describing the metadata its clients
  need; the MDP delivers current matches immediately and keeps the cache
  consistent through match/unmatch/delete notifications;
- answers :meth:`query` calls entirely from its cache (plus local
  metadata), never touching the network;
- stores *local metadata* that "should not be accessible to the public
  and therefore is not forwarded to the backbone";
- forwards global registrations by its clients to the MDP;
- runs a reference-counting garbage collector over strong-reference
  copies (Section 2.4);
- applies notification batches *exactly once* (``(source, seq)``
  dedup) although the reliable delivery layer may redeliver them, and
  keeps serving (possibly stale) cached results when its provider is
  unreachable (:meth:`~LocalMetadataRepository.query_with_status`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.diagnostics import Diagnostic
from repro.errors import (
    NetworkError,
    RepositoryError,
    RuleAnalysisError,
    SubscriptionError,
)
from repro.mdv.cache import CacheStore
from repro.mdv.gc import GarbageCollector, GcReport
from repro.mdv.outbox import DedupIndex
from repro.mdv.provider import MetadataProvider
from repro.net.bus import DEFAULT_LAN_LATENCY_MS, Message
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.pubsub.closure import strong_closure
from repro.pubsub.notifications import (
    DeleteNotification,
    MatchNotification,
    NotificationBatch,
    ResourcePayload,
    UnmatchNotification,
)
from repro.query.evaluator import evaluate_query
from repro.rdf.model import Document, Resource, URIRef
from repro.rdf.parser import parse_document
from repro.rdf.schema import Schema
from repro.rules.parser import parse_query
from repro.storage.engine import Database

__all__ = ["CachedQueryResult", "LocalMetadataRepository"]


@dataclass
class CachedQueryResult:
    """A degraded-read-aware query result.

    ``stale`` marks results served while the LMR's provider was
    unreachable: the cache answered, but it may lag behind the backbone
    until the partition heals and pending notifications arrive.
    """

    resources: list[Resource] = field(default_factory=list)
    stale: bool = False
    reason: str | None = None

    def __iter__(self):
        return iter(self.resources)

    def __len__(self) -> int:
        return len(self.resources)


class LocalMetadataRepository:
    """One LMR node, connected to one MDP."""

    def __init__(
        self,
        name: str,
        provider: MetadataProvider,
        schema: Schema | None = None,
        bus: Transport | None = None,
        analyze: str = "off",
        metrics: MetricsRegistry | None = None,
    ):
        self.name = name
        self.provider = provider
        self.schema = schema or provider.schema
        #: Pre-subscription analysis policy ("off", "warn" or "reject").
        self.analyze = analyze
        self.bus = bus
        self.metrics = metrics if metrics is not None else default_registry()
        labels = {"lmr": name}
        self._m_batches_received = self.metrics.counter(
            "lmr.batches_received", labels
        )
        self._m_batches_applied = self.metrics.counter(
            "lmr.batches_applied", labels
        )
        self._m_duplicates = self.metrics.counter(
            "lmr.duplicates_ignored", labels
        )
        self._m_notifications = self.metrics.counter(
            "lmr.notifications", labels
        )
        self._m_resyncs = self.metrics.counter("lmr.resyncs", labels)
        self._m_stale_reads = self.metrics.counter("lmr.stale_reads", labels)
        self.cache = CacheStore(self.schema)
        self.collector = GarbageCollector(self.schema)
        self._local: dict[URIRef, Resource] = {}
        self._subscriptions: dict[str, list[int]] = {}
        #: Logical clock advanced per notification batch (TTL support).
        self.clock = 0
        self.notifications_received = 0
        #: Exactly-once application of reliable batches by (source, seq).
        self.dedup = DedupIndex()
        #: Every batch that reached this LMR, duplicates included.
        self.batches_received = 0
        if bus is not None:
            bus.register(name, self._handle_message)
        else:
            provider.connect_subscriber(name, self.apply_batch)

    # ------------------------------------------------------------------
    # Subscription management
    # ------------------------------------------------------------------
    def subscribe(
        self, rule_text: str, analyze: str | None = None
    ) -> list[Diagnostic]:
        """Register a subscription rule at the MDP.

        Rules are produced "by users browsing and selecting metadata or
        by administrators of LMRs" (Section 2.3); either way they arrive
        here as rule text.

        With an analysis policy (``analyze`` argument, falling back to
        the LMR's default), the MDP statically analyzes the rule first
        and the findings are returned; the ``"reject"`` policy raises
        :class:`~repro.errors.RuleAnalysisError` on analyzer errors and
        registers nothing.
        """
        if rule_text in self._subscriptions:
            raise SubscriptionError(
                f"LMR {self.name!r} already subscribed: {rule_text!r}"
            )
        policy = self.analyze if analyze is None else analyze
        diagnostics: list[Diagnostic] = []
        if policy != "off":
            diagnostics = list(
                self._call_provider("analyze", (self.name, rule_text))
            )
            if policy == "reject" and any(d.is_error for d in diagnostics):
                first = next(d for d in diagnostics if d.is_error)
                raise RuleAnalysisError(
                    f"subscription rejected by analysis: "
                    f"[{first.code}] {first.message}",
                    diagnostics=diagnostics,
                )
        subscriptions = self._call_provider(
            "subscribe", (self.name, rule_text)
        )
        self._subscriptions[rule_text] = [s.sub_id for s in subscriptions]
        return diagnostics

    def unsubscribe(self, rule_text: str) -> None:
        """Cancel a subscription and evict its no-longer-covered matches."""
        sub_ids = self._subscriptions.pop(rule_text, None)
        if sub_ids is None:
            raise SubscriptionError(
                f"LMR {self.name!r} is not subscribed: {rule_text!r}"
            )
        self._call_provider("unsubscribe", (self.name, rule_text))
        for sub_id in sub_ids:
            self.cache.drop_subscription(sub_id)

    def subscriptions(self) -> list[str]:
        return sorted(self._subscriptions)

    # ------------------------------------------------------------------
    # Notification handling
    # ------------------------------------------------------------------
    def apply_batch(self, batch: NotificationBatch) -> bool:
        """Apply one notification batch to the cache.

        Within a batch, matches are applied before unmatches and
        deletions so content refreshes never race against evictions of
        the same publish event.

        Batches carrying reliable-delivery metadata are applied exactly
        once: a redelivered ``(source, seq)`` pair is counted in the
        dedup index and ignored.  Returns ``True`` when the batch was
        applied, ``False`` for a duplicate.
        """
        self.batches_received += 1
        self._m_batches_received.inc()
        if batch.source is not None and batch.seq is not None:
            if not self.dedup.check_and_record(batch.source, batch.seq):
                self._m_duplicates.inc()
                return False
        self.clock += 1
        self.notifications_received += len(batch)
        self._m_batches_applied.inc()
        self._m_notifications.inc(len(batch))
        matches = [n for n in batch if isinstance(n, MatchNotification)]
        unmatches = [n for n in batch if isinstance(n, UnmatchNotification)]
        deletes = [n for n in batch if isinstance(n, DeleteNotification)]
        for notification in matches:
            self.cache.apply_match(
                notification.sub_id, notification.payload, now=self.clock
            )
        for notification in unmatches:
            self.cache.apply_unmatch(notification.sub_id, notification.uri)
        for notification in deletes:
            self.cache.apply_delete(notification.uri)
        return True

    def resync(self, max_attempts: int = 25) -> None:
        """Ask the provider to replay batches missed while unreachable.

        Sends the highest applied sequence number; the provider
        redrives dead letters and re-sends everything newer.  Replayed
        duplicates are absorbed by the ``(source, seq)`` dedup index.
        Without a bus the provider is called directly — the path a
        durable direct-connected deployment uses after a restart.  With
        a bus the request is idempotent, so transient link faults are
        retried (with backoff on the simulated clock) up to
        ``max_attempts`` times before the last error propagates.
        """
        watermark = self.dedup.highest(self.provider.name)
        if self.bus is None:
            if self.provider.outbox is None:
                return
            self._m_resyncs.inc()
            self.provider.resync_subscriber(self.name, watermark)
            return
        self._m_resyncs.inc()
        for attempt in range(max_attempts):
            try:
                self.bus.send(
                    self.name,
                    self.provider.name,
                    "resync",
                    (self.name, watermark),
                )
                return
            except NetworkError:
                if attempt == max_attempts - 1:
                    raise
                self.bus.sleep(2.0 * (attempt + 1))

    # ------------------------------------------------------------------
    # Crash recovery (docs/DURABILITY.md)
    # ------------------------------------------------------------------
    def reattach(self, provider: MetadataProvider) -> None:
        """Rebind to a restarted provider object (same logical node).

        The LMR survives the provider's crash; when a new provider
        process comes up on the same store, the LMR re-registers its
        batch handler and rebuilds its rule-text → subscription-id map
        from the provider's (persisted) registry.  The dedup index is
        kept: the restarted provider resumes its sequence stream from
        the persisted watermark, so already-applied batches that get
        redelivered are recognised and ignored.
        """
        self.provider = provider
        if self.bus is None:
            provider.connect_subscriber(self.name, self.apply_batch)
        subscriptions: dict[str, list[int]] = {}
        for subscription in provider.registry.subscriptions_of(self.name):
            base_text = subscription.rule_text.split("#or")[0]
            subscriptions.setdefault(base_text, []).append(
                subscription.sub_id
            )
        self._subscriptions = subscriptions

    def catch_up_from_snapshot(self, snapshot: Database) -> int:
        """Rebuild the cache from a provider snapshot, then resync.

        Restores a *blank* LMR (a replacement node, or one whose cache
        was lost) from a provider :meth:`~MetadataProvider.snapshot`:
        the cache is filled with every resource the snapshot's
        ``materialized`` table records for this LMR's subscriptions,
        the dedup index is primed with the snapshot's outbox watermark
        — everything at or below it is already reflected in the cache —
        and a :meth:`resync` replays the stream *after* the watermark
        from the live provider.  Returns the number of cached matches.
        """
        row = snapshot.query_one(
            "SELECT MAX(seq) AS high FROM outbox_messages "
            "WHERE destination = ?",
            (self.name,),
        )
        watermark = (
            int(row["high"])
            if row is not None and row["high"] is not None
            else 0
        )
        documents: dict[str, Document | None] = {}

        def lookup(uri: URIRef | str) -> Resource | None:
            reference = URIRef(uri)
            document_uri = reference.document_uri
            if document_uri not in documents:
                doc_row = snapshot.query_one(
                    "SELECT xml FROM documents WHERE uri = ?",
                    (document_uri,),
                )
                documents[document_uri] = (
                    parse_document(doc_row["xml"], document_uri, self.schema)
                    if doc_row is not None
                    else None
                )
            document = documents[document_uri]
            return document.get(reference) if document is not None else None

        cached = 0
        subscriptions: dict[str, list[int]] = {}
        for sub in snapshot.query_all(
            "SELECT sub_id, end_rule, rule_text FROM subscriptions "
            "WHERE subscriber = ? ORDER BY sub_id",
            (self.name,),
        ):
            base_text = sub["rule_text"].split("#or")[0]
            subscriptions.setdefault(base_text, []).append(int(sub["sub_id"]))
            for match in snapshot.query_all(
                "SELECT uri_reference FROM materialized WHERE rule_id = ? "
                "ORDER BY uri_reference",
                (sub["end_rule"],),
            ):
                resource = lookup(match["uri_reference"])
                if resource is None:
                    continue
                closure = strong_closure(resource, self.schema, lookup)
                payload = ResourcePayload(
                    resource=resource.copy(),
                    strong_closure=[child.copy() for child in closure],
                )
                self.clock += 1
                self.cache.apply_match(
                    int(sub["sub_id"]), payload, now=self.clock
                )
                cached += 1
        self._subscriptions = subscriptions
        self.dedup.prime(self.provider.name, watermark)
        self.resync()
        return cached

    # ------------------------------------------------------------------
    # Query processing (local only)
    # ------------------------------------------------------------------
    def query(self, query_text: str) -> list[Resource]:
        """Evaluate a query against local data only.

        Queries referencing *named rules* as extensions need the named
        rules' definitions, which live at the MDP; they are fetched once
        and cached, so only the first such query crosses the network.
        """
        query = parse_query(query_text)
        unknown = [
            ext.name
            for ext in query.extensions
            if not self.schema.has_class(ext.name)
        ]
        if unknown:
            from repro.rules.inline import inline_named_query
            from repro.rules.parser import parse_rule

            definitions = {
                name: parse_rule(text)
                for name, text in self._named_definitions().items()
            }
            query = inline_named_query(query, definitions)
        pool = {r.uri: r for r in self.cache.resources()}
        pool.update(self._local)
        return evaluate_query(query, pool, self.schema)

    def query_with_status(self, query_text: str) -> CachedQueryResult:
        """Evaluate a query, degrading gracefully when the MDP is away.

        The cache always answers; what the provider's reachability
        decides is the *staleness marker*.  During a partition (or
        provider crash) the result is flagged ``stale`` instead of
        raising — the cache may lag behind the backbone until pending
        notifications are redelivered.  A query whose named-rule
        extensions cannot be resolved (definitions live at the MDP and
        were never fetched) comes back empty and stale rather than
        failing.
        """
        try:
            resources = self.query(query_text)
        except NetworkError as exc:
            self._m_stale_reads.inc()
            return CachedQueryResult(
                resources=[],
                stale=True,
                reason=(
                    f"named-rule definitions unavailable while provider "
                    f"is unreachable: {exc}"
                ),
            )
        if not self.provider_reachable():
            self._m_stale_reads.inc()
            return CachedQueryResult(
                resources=resources,
                stale=True,
                reason="provider unreachable; serving cached results",
            )
        return CachedQueryResult(resources=resources)

    def provider_reachable(self, attempts: int = 3) -> bool:
        """Probe the provider (pings over the bus).

        A single lost ping on a lossy-but-connected link must not flag
        query results stale, so the probe retries a few times; during a
        real partition or crash every attempt fails fast anyway.
        """
        if self.bus is None:
            return True
        for attempt in range(attempts):
            try:
                self.bus.send(self.name, self.provider.name, "ping", None)
            except NetworkError:
                if attempt < attempts - 1:
                    self.bus.sleep(1.0)
                continue
            return True
        return False

    def _named_definitions(self) -> dict[str, str]:
        if not hasattr(self, "_named_definition_cache"):
            if self.bus is not None:
                fetched = self.bus.send(
                    self.name, self.provider.name, "named_definitions", None
                )
            else:
                fetched = self.provider.registry.named_rule_definitions()
            self._named_definition_cache = dict(fetched)
        return self._named_definition_cache

    # ------------------------------------------------------------------
    # Metadata registration
    # ------------------------------------------------------------------
    def register_local_document(self, document: Document) -> int:
        """Store local metadata; never forwarded to the backbone."""
        self.schema.validate_document(document)
        for resource in document:
            self._local[resource.uri] = resource
        return len(document)

    def register_document(self, document: Document):
        """Forward a global registration to the MDP."""
        return self._call_provider("register_document", document)

    def delete_document(self, document_uri: str):
        return self._call_provider("delete_document", document_uri)

    # ------------------------------------------------------------------
    # Garbage collection and expiry
    # ------------------------------------------------------------------
    def collect_garbage(self, cycles: bool = False) -> GcReport:
        if cycles:
            return self.collector.collect_cycles(self.cache)
        return self.collector.sweep(self.cache)

    def expire(self, ttl: int) -> int:
        """TTL expiry pass (for providers in ``consistency="ttl"`` mode).

        Evicts cached entries not refreshed within ``ttl`` notification
        batches; local metadata never expires.  Returns the number of
        evictions.
        """
        from repro.mdv.consistency import expire_stale_entries

        return expire_stale_entries(self.cache, now=self.clock, ttl=ttl)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _call_provider(self, kind: str, payload):
        if self.bus is not None:
            return self.bus.send(self.name, self.provider.name, kind, payload)
        if kind == "subscribe":
            return self.provider.subscribe(*payload)
        if kind == "analyze":
            subscriber, rule_text = payload
            return self.provider.analyze_rule(rule_text, subscriber=subscriber)
        if kind == "unsubscribe":
            return self.provider.unsubscribe(*payload)
        if kind == "register_document":
            return self.provider.register_document(payload)
        if kind == "delete_document":
            return self.provider.delete_document(payload)
        raise RepositoryError(f"unknown provider call {kind!r}")

    def _handle_message(self, message: Message):
        if message.kind == "notifications":
            batch: NotificationBatch = message.payload
            applied = self.apply_batch(batch)
            return batch.ack(duplicate=not applied)
        if message.kind == "query":
            return self.query(message.payload)
        raise RepositoryError(f"unknown message kind {message.kind!r}")

    def stats(self) -> dict[str, int]:
        stats = self.cache.stats()
        stats["local_resources"] = len(self._local)
        stats["notifications"] = self.notifications_received
        stats["batches_received"] = self.batches_received
        stats["batches_applied"] = self.dedup.applied
        stats["duplicates_ignored"] = self.dedup.duplicates_ignored
        return stats

    def configure_lan_latency(self) -> None:
        """Mark the LMR↔client links as LAN-cheap on the bus, if any.

        Latency modelling is a simulated-bus concept; transports
        without per-link latency (real sockets) are left alone.
        """
        set_latency = getattr(self.bus, "set_latency", None)
        if callable(set_latency):
            set_latency(self.name, self.name, DEFAULT_LAN_LATENCY_MS)
