"""The MDV backbone: replicated Metadata Providers (paper, Section 2.2).

"Metadata Providers (MDPs), referred to as (MDV) backbone, are
distributed all over the Internet to provide a uniform access regarding
network latency and metadata content.  MDPs accomplish the latter by
sharing the same schema and consistently replicating metadata among each
other.  Basically, the backbone is an extension of a distributed DBMS
with a flat hierarchy, full synchronization, and replication."

This module implements that flat, fully synchronized topology over an
unreliable network: a document registered (or deleted) at any provider
is replicated to every peer through a reliable per-origin outbox
(:mod:`repro.mdv.outbox`) — at-least-once delivery with retry/backoff,
exactly-once application through ``(source, seq)`` dedup and
``(counter, origin)`` document versions.  A failing peer never aborts
the fan-out to the others; its backlog is tracked and surfaced through
:meth:`Backbone.lag_report` until :meth:`Backbone.recover` (retry
drain + digest-exchange anti-entropy) converges the backbone again,
e.g. after a partition heals.  More sophisticated partitioning schemes
are explicitly out of the paper's scope (its footnote 1) and out of
ours.
"""

from __future__ import annotations

from typing import Any

from repro.errors import MDVError, NetworkError
from repro.filter.results import PublishOutcome
from repro.mdv.outbox import Outbox, ReplicaUpdate, RetryPolicy
from repro.mdv.provider import MetadataProvider
from repro.net.transport import Transport
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.rdf.model import Document
from repro.rdf.schema import Schema

__all__ = ["Backbone"]


class Backbone:
    """A flat set of fully synchronized MDPs."""

    def __init__(
        self,
        schema: Schema,
        bus: Transport | None = None,
        retry_policy: RetryPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.schema = schema
        self.bus = bus
        self.retry_policy = retry_policy
        self.providers: dict[str, MetadataProvider] = {}
        self.replications = 0
        #: Outboxes for bus-less backbones (direct peer calls); with a
        #: bus each provider's own outbox carries the replication.
        self._direct_outboxes: dict[str, Outbox] = {}
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_replications = self.metrics.counter("backbone.replications")
        self._m_repairs = self.metrics.counter(
            "backbone.anti_entropy_repairs"
        )
        self._m_recoveries = self.metrics.counter("backbone.recoveries")
        self._g_lag = self.metrics.gauge("backbone.replication_lag")

    def add_provider(self, name: str) -> MetadataProvider:
        """Create and wire a new MDP into the backbone."""
        if name in self.providers:
            raise MDVError(f"provider {name!r} already exists")
        provider = MetadataProvider(
            self.schema, name=name, bus=self.bus,
            retry_policy=self.retry_policy,
        )
        provider.set_replication_hook(
            lambda uri, doc, version, origin=name: self._replicate(
                origin, uri, doc, version
            )
        )
        self.providers[name] = provider
        return provider

    def provider(self, name: str) -> MetadataProvider:
        try:
            return self.providers[name]
        except KeyError:
            raise MDVError(f"no provider named {name!r}") from None

    # ------------------------------------------------------------------
    # Replication (reliable, partial-failure tolerant)
    # ------------------------------------------------------------------
    def _outbox_for(self, origin: str) -> Outbox:
        provider = self.providers[origin]
        if provider.outbox is not None:
            return provider.outbox
        outbox = self._direct_outboxes.get(origin)
        if outbox is None:
            outbox = Outbox(
                origin,
                transport=self._direct_transport,
                policy=self.retry_policy,
            )
            self._direct_outboxes[origin] = outbox
        return outbox

    def _direct_transport(self, destination: str, kind: str,
                          payload: Any) -> Any:
        """Bus-less transport: apply the replica on the peer directly."""
        peer = self.providers[destination]
        update: ReplicaUpdate = payload
        return peer.apply_replica(
            update.document_uri,
            update.document,
            version=update.version,
            source=update.source,
            seq=update.seq,
        )

    def _replicate(
        self,
        origin: str,
        document_uri: str,
        document: Document | None,
        version: tuple[int, str],
    ) -> None:
        """Queue a change from ``origin`` for every peer MDP.

        Each peer has its own outbox queue: a peer that is down, cut
        off, or raising never blocks the fan-out to the others.  The
        flush attempts immediate delivery; whatever fails stays queued
        (or dead-letters) and shows up in :meth:`lag_report`.
        """
        outbox = self._outbox_for(origin)
        for name in self.providers:
            if name == origin:
                continue
            self.replications += 1
            self._m_replications.inc()
            seq = outbox.reserve_seq(name)
            update = ReplicaUpdate(
                document_uri, document, version, origin, seq
            )
            outbox.enqueue(name, "replicate", update, seq)
        outbox.flush()

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def register_document(
        self, document: Document, at: str | None = None
    ) -> PublishOutcome:
        """Register at one provider; replication fans out to the rest."""
        name = at or next(iter(self.providers), None)
        if name is None:
            raise MDVError("backbone has no providers")
        return self.provider(name).register_document(document)

    def delete_document(self, document_uri: str, at: str | None = None):
        name = at or next(iter(self.providers), None)
        if name is None:
            raise MDVError("backbone has no providers")
        return self.provider(name).delete_document(document_uri)

    # ------------------------------------------------------------------
    # Lag tracking and recovery
    # ------------------------------------------------------------------
    def _outboxes(self) -> dict[str, Outbox]:
        boxes: dict[str, Outbox] = {}
        for name, provider in self.providers.items():
            if provider.outbox is not None:
                boxes[name] = provider.outbox
        boxes.update(self._direct_outboxes)
        return boxes

    def lag_report(self) -> dict[str, dict[str, Any]]:
        """Per-link replication backlog, keyed ``"origin->peer"``.

        Only provider-to-provider lag is reported; notification backlog
        toward LMRs lives in each provider's own outbox lag report.
        """
        report: dict[str, dict[str, Any]] = {}
        for origin, outbox in self._outboxes().items():
            for destination, lag in outbox.lag_report().items():
                if destination in self.providers:
                    report[f"{origin}->{destination}"] = lag
        return report

    def replication_lag(self) -> int:
        """Total queued + dead-lettered replica updates backbone-wide."""
        total = 0
        for lag in self.lag_report().values():
            total += int(lag["pending"]) + int(lag["dead"])
        self._g_lag.set(total)
        return total

    def flush_replication(self) -> int:
        """Retry every queued replica update once; returns deliveries."""
        delivered = 0
        for outbox in self._outboxes().values():
            delivered += outbox.flush()
        return delivered

    def recover(self, anti_entropy: bool = True) -> dict[str, int]:
        """Converge the backbone after failures heal.

        Dead-lettered replica updates are redriven and every outbox is
        drained (backoff windows are slept out on the simulated clock);
        then a digest-exchange anti-entropy pass fills any remaining
        holes (e.g. from messages dead-lettered at a crashed-and-wiped
        peer), and a final drain pushes out the notifications those
        repairs produced.
        """
        redriven = 0
        delivered = 0
        for outbox in self._outboxes().values():
            redriven += outbox.redrive()
            delivered += outbox.drain()
        repaired = self.reconcile() if anti_entropy else 0
        for outbox in self._outboxes().values():
            delivered += outbox.drain()
        self._m_recoveries.inc()
        return {
            "redriven": redriven,
            "delivered": delivered,
            "repaired": repaired,
        }

    # ------------------------------------------------------------------
    # Anti-entropy (digest exchange)
    # ------------------------------------------------------------------
    def reconcile(self) -> int:
        """One full anti-entropy round: every provider pulls from every
        peer whatever the peer holds in a strictly newer version.

        Digests map document URI to ``(counter, origin)`` version
        (tombstones included), so deletions propagate too.  Unreachable
        peers are skipped — run again after the network heals.  Returns
        the number of replica updates applied.
        """
        applied = 0
        names = sorted(self.providers)
        for puller in names:
            for holder in names:
                if puller != holder:
                    applied += self._pull(puller, holder)
        if applied:
            self._m_repairs.inc(applied)
        return applied

    def _pull(self, puller: str, holder: str) -> int:
        puller_provider = self.providers[puller]
        try:
            if self.bus is not None:
                digest = self.bus.send(puller, holder, "digest", None)
            else:
                digest = self.providers[holder].version_digest()
        except NetworkError:
            return 0
        applied = 0
        local = puller_provider.version_digest()
        for uri in sorted(digest):
            version = digest[uri]
            mine = local.get(uri)
            if mine is not None and mine >= version:
                continue
            try:
                if self.bus is not None:
                    document, held_version = self.bus.send(
                        puller, holder, "fetch_document", uri
                    )
                else:
                    document, held_version = self.providers[
                        holder
                    ].fetch_document(uri)
            except NetworkError:
                continue
            if held_version is None:
                continue
            outcome = puller_provider.apply_replica(
                uri, document, version=held_version
            )
            if outcome == "applied":
                applied += 1
        return applied

    def is_synchronized(self) -> bool:
        """All providers hold the same documents and nothing is in flight."""
        if self.replication_lag():
            return False
        snapshots = [
            {
                uri: {r.uri: r for r in doc}
                for uri, doc in provider._documents.items()
            }
            for provider in self.providers.values()
        ]
        return all(snapshot == snapshots[0] for snapshot in snapshots[1:])
