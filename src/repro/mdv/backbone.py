"""The MDV backbone: replicated Metadata Providers (paper, Section 2.2).

"Metadata Providers (MDPs), referred to as (MDV) backbone, are
distributed all over the Internet to provide a uniform access regarding
network latency and metadata content.  MDPs accomplish the latter by
sharing the same schema and consistently replicating metadata among each
other.  Basically, the backbone is an extension of a distributed DBMS
with a flat hierarchy, full synchronization, and replication."

This module implements exactly that flat, fully synchronized topology: a
document registered (or deleted) at any provider is synchronously
replicated to every peer, each of which runs its own filter for its own
subscribers.  More sophisticated partitioning schemes are explicitly out
of the paper's scope (its footnote 1) and out of ours.
"""

from __future__ import annotations

from repro.errors import MDVError
from repro.filter.results import PublishOutcome
from repro.mdv.provider import MetadataProvider
from repro.net.bus import NetworkBus
from repro.rdf.model import Document
from repro.rdf.schema import Schema

__all__ = ["Backbone"]


class Backbone:
    """A flat set of fully synchronized MDPs."""

    def __init__(self, schema: Schema, bus: NetworkBus | None = None):
        self.schema = schema
        self.bus = bus
        self.providers: dict[str, MetadataProvider] = {}
        self.replications = 0

    def add_provider(self, name: str) -> MetadataProvider:
        """Create and wire a new MDP into the backbone."""
        if name in self.providers:
            raise MDVError(f"provider {name!r} already exists")
        provider = MetadataProvider(self.schema, name=name, bus=self.bus)
        provider.set_replication_hook(
            lambda uri, doc, origin=name: self._replicate(origin, uri, doc)
        )
        self.providers[name] = provider
        return provider

    def provider(self, name: str) -> MetadataProvider:
        try:
            return self.providers[name]
        except KeyError:
            raise MDVError(f"no provider named {name!r}") from None

    def _replicate(
        self, origin: str, document_uri: str, document: Document | None
    ) -> None:
        """Push a change from ``origin`` to every peer MDP."""
        for name, peer in self.providers.items():
            if name == origin:
                continue
            self.replications += 1
            if self.bus is not None:
                self.bus.send(
                    origin, name, "replicate", (document_uri, document)
                )
            else:
                peer.apply_replica(document_uri, document)

    # ------------------------------------------------------------------
    # Convenience entry points
    # ------------------------------------------------------------------
    def register_document(
        self, document: Document, at: str | None = None
    ) -> PublishOutcome:
        """Register at one provider; replication fans out to the rest."""
        name = at or next(iter(self.providers), None)
        if name is None:
            raise MDVError("backbone has no providers")
        return self.provider(name).register_document(document)

    def delete_document(self, document_uri: str, at: str | None = None):
        name = at or next(iter(self.providers), None)
        if name is None:
            raise MDVError("backbone has no providers")
        return self.provider(name).delete_document(document_uri)

    def is_synchronized(self) -> bool:
        """All providers hold the same document set (test helper)."""
        snapshots = [
            {
                uri: {r.uri: r for r in doc}
                for uri, doc in provider._documents.items()
            }
            for provider in self.providers.values()
        ]
        return all(snapshot == snapshots[0] for snapshot in snapshots[1:])
