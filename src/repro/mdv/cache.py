"""The LMR cache store with rule-match and strong-reference accounting.

An LMR's cache "should contain relevant metadata, appropriate to the
users or applications using it" (paper, Section 2.2).  Every cached
resource therefore tracks *why* it is cached:

- ``matched_subs`` — the subscriptions whose rules currently match it.
  A resource evicted from the last matching rule leaves the cache
  ("It must be removed from an LMR's cache if this was the only rule the
  resource matched" — Section 3.5) …
- ``strong_refcount`` — … unless other cached resources strongly
  reference it.  "With strong references an LMR can receive resources
  where there is no corresponding rule for.  An LMR must take care for
  deleting such resources if the resource that caused their transmission
  is deleted.  MDV uses a garbage collector (based on reference
  counting) to detect such resources" (Section 2.4).
- ``is_local`` — local metadata registered directly at the LMR, never
  forwarded to the backbone and never evicted by notifications.

Reference counts are edge-accurate: each cached resource accounts one
count on every *direct* strong target, and content updates reconcile the
old and new target sets.  Cascading eviction is immediate; the separate
:mod:`repro.mdv.gc` module adds a mark-sweep pass for strong-reference
cycles, which pure reference counting cannot reclaim.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pubsub.notifications import ResourcePayload
from repro.rdf.model import Resource, URIRef
from repro.rdf.schema import Schema
from repro.pubsub.closure import strong_targets

__all__ = ["CacheEntry", "CacheStore"]


@dataclass
class CacheEntry:
    """One cached resource with its retention bookkeeping."""

    resource: Resource
    matched_subs: set[int] = field(default_factory=set)
    strong_refcount: int = 0
    is_local: bool = False
    #: Logical timestamp of the last refresh (used by the TTL strategy).
    refreshed_at: int = 0

    @property
    def retained(self) -> bool:
        return bool(self.matched_subs) or self.strong_refcount > 0 or self.is_local


class CacheStore:
    """URI-keyed store of :class:`CacheEntry` objects."""

    def __init__(self, schema: Schema):
        self._schema = schema
        self._entries: dict[URIRef, CacheEntry] = {}
        #: Strong edges whose target content has not arrived yet; only
        #: populated within one payload application.
        self._pending_edges: dict[URIRef, int] = {}
        #: Eviction counter (diagnostics; examples report it).
        self.evictions = 0

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------
    def get(self, uri: URIRef | str) -> CacheEntry | None:
        return self._entries.get(URIRef(uri))

    def resource(self, uri: URIRef | str) -> Resource | None:
        entry = self.get(uri)
        return entry.resource if entry else None

    def resources(self) -> list[Resource]:
        return [entry.resource for entry in self._entries.values()]

    def uris(self) -> list[URIRef]:
        return sorted(self._entries)

    def entries(self) -> list[CacheEntry]:
        return list(self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, uri: object) -> bool:
        return URIRef(str(uri)) in self._entries

    # ------------------------------------------------------------------
    # Content upserts with edge-accurate strong accounting
    # ------------------------------------------------------------------
    def _upsert_content(self, resource: Resource, now: int) -> CacheEntry:
        """Insert or update content, reconciling strong-target counts."""
        uri = resource.uri
        entry = self._entries.get(uri)
        new_targets = set(strong_targets(resource, self._schema))
        if entry is None:
            entry = CacheEntry(resource=resource, refreshed_at=now)
            self._entries[uri] = entry
            old_targets: set[URIRef] = set()
        else:
            old_targets = set(strong_targets(entry.resource, self._schema))
            entry.resource = resource
            entry.refreshed_at = now
        for gone in old_targets - new_targets:
            self._release_strong(gone)
        for added in new_targets - old_targets:
            target = self._entries.get(added)
            if target is not None:
                target.strong_refcount += 1
            else:
                # Target content not cached yet; the payload walk will
                # insert it and call _account_pending_edges afterwards.
                self._pending_edges.setdefault(added, 0)
                self._pending_edges[added] += 1
        return entry

    def apply_match(self, sub_id: int, payload: ResourcePayload, now: int = 0) -> None:
        """Apply a match notification: content + closure + accounting."""
        self._pending_edges: dict[URIRef, int] = {}
        main = self._upsert_content(payload.resource, now)
        main.matched_subs.add(sub_id)
        for child in payload.strong_closure:
            self._upsert_content(child, now)
        # Resolve edges whose target arrived later in the payload walk.
        for uri, count in self._pending_edges.items():
            target = self._entries.get(uri)
            if target is not None:
                target.strong_refcount += count
        self._pending_edges = {}

    def insert_local(self, resource: Resource, now: int = 0) -> CacheEntry:
        """Insert local metadata (not subject to notification eviction)."""
        self._pending_edges = {}
        entry = self._upsert_content(resource, now)
        entry.is_local = True
        for uri, count in self._pending_edges.items():
            target = self._entries.get(uri)
            if target is not None:
                target.strong_refcount += count
        self._pending_edges = {}
        return entry

    # ------------------------------------------------------------------
    # Unmatch / delete / eviction
    # ------------------------------------------------------------------
    def apply_unmatch(self, sub_id: int, uri: URIRef) -> bool:
        """Remove one rule match; returns True when the entry was evicted."""
        entry = self._entries.get(uri)
        if entry is None:
            return False
        entry.matched_subs.discard(sub_id)
        return self._maybe_evict(uri)

    def apply_delete(self, uri: URIRef) -> bool:
        """Drop a deleted resource's content regardless of bookkeeping."""
        entry = self._entries.pop(URIRef(uri), None)
        if entry is None:
            return False
        self.evictions += 1
        for target in strong_targets(entry.resource, self._schema):
            self._release_strong(target)
        return True

    def drop_subscription(self, sub_id: int) -> int:
        """Remove every match of one subscription (unsubscribe cleanup).

        Returns the number of evicted entries — "An LMR must take care
        for deleting such resources if … the according rule is changed or
        removed" (Section 2.4).
        """
        evicted = 0
        for uri in list(self._entries):
            entry = self._entries.get(uri)
            if entry is not None and sub_id in entry.matched_subs:
                entry.matched_subs.discard(sub_id)
                if self._maybe_evict(uri):
                    evicted += 1
        return evicted

    def _release_strong(self, uri: URIRef) -> None:
        entry = self._entries.get(uri)
        if entry is None:
            return
        entry.strong_refcount -= 1
        self._maybe_evict(uri)

    def _maybe_evict(self, uri: URIRef) -> bool:
        entry = self._entries.get(uri)
        if entry is None or entry.retained:
            return False
        del self._entries[uri]
        self.evictions += 1
        for target in strong_targets(entry.resource, self._schema):
            self._release_strong(target)
        return True

    def evict(self, uri: URIRef) -> bool:
        """Forced eviction with cascading release (used by TTL expiry)."""
        entry = self._entries.pop(URIRef(uri), None)
        if entry is None:
            return False
        self.evictions += 1
        for target in strong_targets(entry.resource, self._schema):
            self._release_strong(target)
        return True

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        matched = sum(1 for e in self._entries.values() if e.matched_subs)
        strong_only = sum(
            1
            for e in self._entries.values()
            if not e.matched_subs and not e.is_local and e.strong_refcount > 0
        )
        local = sum(1 for e in self._entries.values() if e.is_local)
        return {
            "entries": len(self._entries),
            "matched": matched,
            "strong_only": strong_only,
            "local": local,
            "evictions": self.evictions,
        }
