"""Periodic batch registration (the paper's alternative operating mode).

The evaluation's purpose is "to decide if the filter should be started
either when a new document is registered or periodically, to process
several documents in one batch" (Section 4) — and finds that for OID,
PATH and JOIN rule bases batching amortizes the per-run cost, while for
COMP rule bases small batches are preferable.

:class:`BatchingRegistrar` implements the periodic mode: registrations
are queued and flushed together — on demand, when the queue reaches
``max_batch``, or when ``max_delay`` ticks of the logical clock pass.
A re-registration of a queued document replaces the queued version (the
filter only ever sees the latest state, exactly as if the intermediate
version had never existed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.filter.results import PublishOutcome
from repro.mdv.provider import MetadataProvider
from repro.rdf.model import Document

__all__ = ["BatchStats", "BatchingRegistrar"]


@dataclass
class BatchStats:
    """Accounting over the registrar's lifetime."""

    submitted: int = 0
    coalesced: int = 0
    flushes: int = 0
    documents_flushed: int = 0
    flush_sizes: list[int] = field(default_factory=list)

    @property
    def average_batch_size(self) -> float:
        if not self.flush_sizes:
            return 0.0
        return sum(self.flush_sizes) / len(self.flush_sizes)


class BatchingRegistrar:
    """Queues document registrations and flushes them in batches."""

    def __init__(
        self,
        provider: MetadataProvider,
        max_batch: int = 50,
        max_delay: int = 10,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay < 1:
            raise ValueError("max_delay must be at least 1")
        self.provider = provider
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.stats = BatchStats()
        self._queue: dict[str, Document] = {}
        self._clock = 0
        self._oldest_tick: int | None = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, document: Document) -> PublishOutcome | None:
        """Queue a registration; returns the outcome if a flush fired."""
        self.provider.schema.validate_document(document)
        self.stats.submitted += 1
        if document.uri in self._queue:
            self.stats.coalesced += 1
        elif self._oldest_tick is None:
            self._oldest_tick = self._clock
        self._queue[document.uri] = document
        if len(self._queue) >= self.max_batch:
            return self.flush()
        return None

    def tick(self) -> PublishOutcome | None:
        """Advance the logical clock; flush when the queue grows stale."""
        self._clock += 1
        if (
            self._queue
            and self._oldest_tick is not None
            and self._clock - self._oldest_tick >= self.max_delay
        ):
            return self.flush()
        return None

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def flush(self) -> PublishOutcome:
        """Register every queued document in one batch."""
        documents = list(self._queue.values())
        self._queue.clear()
        self._oldest_tick = None
        self.stats.flushes += 1
        self.stats.documents_flushed += len(documents)
        self.stats.flush_sizes.append(len(documents))
        return self.provider.register_documents(documents)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def pending_uris(self) -> list[str]:
        return sorted(self._queue)
