"""MDV clients — the top tier (paper, Section 2.2).

"Applications and users accessing the MDV system are referred to as MDV
clients.  MDV clients can query metadata at an LMR using MDV's
(declarative) query language."  Clients may also browse metadata
directly at an MDP and select it for caching: "Their LMR will generate
appropriate rules and update its set of subscription rules."
"""

from __future__ import annotations

from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.rdf.model import Document, Resource
from repro.rules.ast import Constant
from repro.rdf.model import Literal

__all__ = ["MDVClient"]


class MDVClient:
    """A client attached to one LMR."""

    def __init__(
        self,
        name: str,
        repository: LocalMetadataRepository,
        bus: NetworkBus | None = None,
    ):
        self.name = name
        self.repository = repository
        self.bus = bus

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query_text: str) -> list[Resource]:
        """Query the local repository (the normal, cheap path)."""
        if self.bus is not None:
            return self.bus.send(
                self.name, self.repository.name, "query", query_text
            )
        return self.repository.query(query_text)

    def browse(self, query_text: str) -> list[Resource]:
        """Browse metadata directly at the MDP (crosses the "Internet")."""
        provider = self.repository.provider
        if self.bus is not None:
            return self.bus.send(self.name, provider.name, "browse", query_text)
        return provider.browse(query_text)

    # ------------------------------------------------------------------
    # Browsing with cache selection
    # ------------------------------------------------------------------
    def select_for_caching(self, resource: Resource) -> str:
        """Select a browsed resource for caching (paper, Section 2.2).

        The LMR "will generate appropriate rules and update its set of
        subscription rules": a browsed resource turns into an OID-style
        subscription on its URI reference, so the LMR receives the
        resource and all future updates to it.  Returns the generated
        rule text.
        """
        uri_constant = Constant(Literal(str(resource.uri)))
        rule_text = (
            f"search {resource.rdf_class} r register r "
            f"where r = {uri_constant}"
        )
        self.repository.subscribe(rule_text)
        return rule_text

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_document(self, document: Document):
        """Register global metadata through the LMR."""
        return self.repository.register_document(document)

    def register_local_document(self, document: Document) -> int:
        """Register metadata visible only at this client's LMR."""
        return self.repository.register_local_document(document)
