"""MDV clients — the top tier (paper, Section 2.2).

"Applications and users accessing the MDV system are referred to as MDV
clients.  MDV clients can query metadata at an LMR using MDV's
(declarative) query language."  Clients may also browse metadata
directly at an MDP and select it for caching: "Their LMR will generate
appropriate rules and update its set of subscription rules."
"""

from __future__ import annotations

from typing import Any

from repro.mdv.repository import LocalMetadataRepository
from repro.net.transport import Transport
from repro.rdf.model import Document, Resource
from repro.rdf.schema import Schema
from repro.rules.ast import Constant
from repro.rdf.model import Literal

__all__ = ["MDVClient", "ProviderHandle", "ServiceClient"]


class ProviderHandle:
    """A remote provider's identity, for transport-attached tiers.

    An LMR constructed over a transport only ever reads its provider's
    ``name`` (and, when no schema is passed explicitly, ``schema``) —
    every actual interaction crosses the transport.  In a
    ``python -m repro.mdv serve`` deployment the provider object lives
    in another OS process, so the LMR is handed this stub instead.
    """

    def __init__(self, name: str, schema: Schema | None = None):
        self.name = name
        self.schema = schema
        #: Present so ``resync`` degrades gracefully if a handle is
        #: ever used without a transport (nothing to replay locally).
        self.outbox = None


class ServiceClient:
    """A thin socket client for one served MDV node.

    Wraps a client-only :class:`~repro.net.socket.SocketTransport` and
    speaks the provider/LMR wire API (docs/SERVICE.md) to a
    ``python -m repro.mdv serve`` daemon.  Failures surface exactly as
    on any transport: :class:`~repro.errors.NetworkError` subclasses
    for unreachable/timed-out peers, reconstructed domain errors when
    the daemon rejected the request.
    """

    def __init__(
        self,
        name: str,
        endpoint: str,
        host: str,
        port: int,
        transport: Any = None,
        request_timeout_s: float = 30.0,
    ):
        if transport is None:
            from repro.net.socket import SocketTransport

            transport = SocketTransport(request_timeout_s=request_timeout_s)
            self._owns_transport = True
        else:
            self._owns_transport = False
        self.name = name
        self.endpoint = endpoint
        self.transport = transport
        transport.add_peer(endpoint, host, port)

    def call(self, kind: str, payload: Any = None) -> Any:
        """One request/response exchange with the served endpoint."""
        return self.transport.send(self.name, self.endpoint, kind, payload)

    def notify(self, kind: str, payload: Any = None) -> None:
        """One fire-and-forget notify frame."""
        self.transport.send_one_way(self.name, self.endpoint, kind, payload)

    def ping(self) -> bool:
        return self.call("ping") == "pong"

    def register_document(self, document: Document) -> Any:
        return self.call("register_document", document)

    def browse(self, query_text: str) -> list[Resource]:
        return self.call("browse", query_text)

    def close(self) -> None:
        if self._owns_transport:
            self.transport.close()

    def __enter__(self) -> ServiceClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class MDVClient:
    """A client attached to one LMR."""

    def __init__(
        self,
        name: str,
        repository: LocalMetadataRepository,
        bus: Transport | None = None,
    ):
        self.name = name
        self.repository = repository
        self.bus = bus

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, query_text: str) -> list[Resource]:
        """Query the local repository (the normal, cheap path)."""
        if self.bus is not None:
            return self.bus.send(
                self.name, self.repository.name, "query", query_text
            )
        return self.repository.query(query_text)

    def browse(self, query_text: str) -> list[Resource]:
        """Browse metadata directly at the MDP (crosses the "Internet")."""
        provider = self.repository.provider
        if self.bus is not None:
            return self.bus.send(self.name, provider.name, "browse", query_text)
        return provider.browse(query_text)

    # ------------------------------------------------------------------
    # Browsing with cache selection
    # ------------------------------------------------------------------
    def select_for_caching(self, resource: Resource) -> str:
        """Select a browsed resource for caching (paper, Section 2.2).

        The LMR "will generate appropriate rules and update its set of
        subscription rules": a browsed resource turns into an OID-style
        subscription on its URI reference, so the LMR receives the
        resource and all future updates to it.  Returns the generated
        rule text.
        """
        uri_constant = Constant(Literal(str(resource.uri)))
        rule_text = (
            f"search {resource.rdf_class} r register r "
            f"where r = {uri_constant}"
        )
        self.repository.subscribe(rule_text)
        return rule_text

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_document(self, document: Document):
        """Register global metadata through the LMR."""
        return self.repository.register_document(document)

    def register_local_document(self, document: Document) -> int:
        """Register metadata visible only at this client's LMR."""
        return self.repository.register_local_document(document)
