"""The ``python -m repro.mdv serve`` daemon: one MDV node per process.

The paper's deployment has MDPs and LMRs as long-lived services spread
over the network; this module runs one of them as an OS process on top
of :class:`~repro.net.socket.SocketTransport`.  A JSON config file
names the node, picks its role and knobs, and lists the peers it talks
to (docs/SERVICE.md has the full format and a worked example):

.. code-block:: json

    {"name": "mdp-1", "role": "mdp", "port": 7401,
     "db_path": "mdp-1.db", "durability": "safe",
     "durable_delivery": true, "recovery": "auto",
     "peers": {"lmr-a": ["127.0.0.1", 7402]}}

Process model
-------------
The transport's I/O loop runs on a background thread; the daemon's
main thread owns the node's state (for an MDP that includes the
SQLite connection, which is thread-affine) and drains the transport's
request queue — every handler runs on the main thread.  An LMR node
additionally answers ``notifications`` inline on the I/O thread (its
cache tier is pure in-memory state) so the provider can push the
initial matches of a ``subscribe`` *while* the main thread is blocked
inside that same subscribe call.

Lifecycle: the daemon prints one ``MDV-SERVE READY ...`` line (with
the bound port — ``port: 0`` asks the OS for one) once it accepts
requests, then serves until SIGTERM/SIGINT.  Shutdown is a graceful
drain: queued requests are answered, an MDP attempts one last outbox
delivery pass, ``--metrics-dump PATH`` writes the final metrics
snapshot, and only then do the transport and database close.  A crash
(kill -9) skips all of that by definition — recovering from it is the
job of the durability knobs (``durability="safe"``,
``durable_delivery``, ``recovery="auto"``) plus the subscriber-side
dedup floor, which the socket chaos suite exercises end to end.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import MDVError
from repro.mdv.client import ProviderHandle
from repro.mdv.provider import MetadataProvider
from repro.mdv.repository import LocalMetadataRepository
from repro.net.socket import SocketTransport
from repro.obs.metrics import default_registry
from repro.rdf.schema import objectglobe_schema
from repro.storage.engine import Database

__all__ = [
    "ServiceConfig",
    "config_from_dict",
    "load_config",
    "run_serve",
    "serve_from_args",
]

#: The only schema a served node currently knows how to build.
_SCHEMAS = ("objectglobe",)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything one served node needs to come up."""

    name: str
    role: str
    host: str = "127.0.0.1"
    port: int = 0
    #: SQLite file for an MDP node; ``None`` = in-memory (no crash
    #: safety). Ignored by LMR nodes, whose cache tier is in-memory.
    db_path: str | None = None
    #: Peer endpoint name -> (host, port).
    peers: dict[str, tuple[str, int]] = field(default_factory=dict)
    #: The MDP endpoint an LMR node attaches to (must be in ``peers``).
    provider: str | None = None
    schema: str = "objectglobe"
    # Provider knobs (MDP role), mirroring MetadataProvider's.
    triggering: str = "sql"
    contains_index: str = "scan"
    consistency: str = "filter"
    dedupe: str = "off"
    durability: str = "fast"
    durable_delivery: bool = False
    recovery: str = "off"
    #: Subscription-analysis policy (LMR role).
    analyze: str = "off"
    request_timeout_s: float = 30.0

    def __post_init__(self) -> None:
        if self.role not in ("mdp", "lmr"):
            raise ValueError(f"role must be 'mdp' or 'lmr', got {self.role!r}")
        if self.schema not in _SCHEMAS:
            raise ValueError(
                f"schema must be one of {_SCHEMAS}, got {self.schema!r}"
            )
        if self.role == "lmr":
            if not self.provider:
                raise ValueError("an 'lmr' node needs a 'provider' endpoint")
            if self.provider not in self.peers:
                raise ValueError(
                    f"provider {self.provider!r} is not in peers "
                    f"({sorted(self.peers)})"
                )


def config_from_dict(raw: dict[str, Any]) -> ServiceConfig:
    """Build a :class:`ServiceConfig` from parsed JSON, strictly."""
    if not isinstance(raw, dict):
        raise ValueError("service config must be a JSON object")
    known = {f for f in ServiceConfig.__dataclass_fields__}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(f"unknown service config keys: {unknown}")
    if "name" not in raw or "role" not in raw:
        raise ValueError("service config needs at least 'name' and 'role'")
    peers_raw = raw.get("peers", {})
    if not isinstance(peers_raw, dict):
        raise ValueError("'peers' must map endpoint names to [host, port]")
    peers: dict[str, tuple[str, int]] = {}
    for peer_name, address in peers_raw.items():
        if (not isinstance(address, (list, tuple)) or len(address) != 2):
            raise ValueError(
                f"peer {peer_name!r} address must be [host, port], "
                f"got {address!r}"
            )
        peers[peer_name] = (str(address[0]), int(address[1]))
    fields = dict(raw)
    fields["peers"] = peers
    return ServiceConfig(**fields)


def load_config(path: str) -> ServiceConfig:
    with open(path, encoding="utf-8") as handle:
        return config_from_dict(json.load(handle))


def _build_node(
    config: ServiceConfig, transport: SocketTransport
) -> tuple[MetadataProvider | None, LocalMetadataRepository | None,
           Database | None]:
    schema = objectglobe_schema()
    if config.role == "mdp":
        db = Database(
            config.db_path if config.db_path else ":memory:",
            durability=config.durability,
        )
        provider = MetadataProvider(
            schema,
            name=config.name,
            db=db,
            bus=transport,
            consistency=config.consistency,
            analyze=config.analyze,
            contains_index=config.contains_index,
            triggering=config.triggering,
            dedupe=config.dedupe,
            durability=config.durability,
            durable_delivery=config.durable_delivery,
            recovery=config.recovery,
        )
        return provider, None, db
    handle = ProviderHandle(config.provider or "", schema)
    repository = LocalMetadataRepository(
        config.name,
        handle,  # type: ignore[arg-type] - only .name/.schema are read
        schema=schema,
        bus=transport,
        analyze=config.analyze,
    )

    def lmr_handler(message: Any) -> Any:
        # The served LMR speaks the cache-tier wire API (notifications,
        # query) plus the control kinds a remote client drives it with.
        kind = message.kind
        if kind == "subscribe":
            return repository.subscribe(message.payload)
        if kind == "unsubscribe":
            repository.unsubscribe(message.payload)
            return None
        if kind == "resync":
            repository.resync()
            return None
        if kind == "stats":
            return repository.stats()
        if kind == "ping":
            return "pong"
        return repository._handle_message(message)

    transport.register(config.name, lmr_handler, dispatch="queue")
    # Notification pushes must be answered while the main thread is
    # blocked inside subscribe/resync (the provider delivers initial
    # matches before returning); the cache tier is pure in-memory
    # state, safe to touch from the I/O thread.
    transport.set_inline_kinds(config.name, {"notifications"})
    return None, repository, None


def run_serve(
    config: ServiceConfig,
    metrics_dump: str | None = None,
    ready_stream: Any = None,
) -> int:
    """Serve one MDV node until SIGTERM/SIGINT; returns the exit code."""
    stream = ready_stream if ready_stream is not None else sys.stdout
    transport = SocketTransport(
        host=config.host,
        port=config.port,
        peers=config.peers,
        request_timeout_s=config.request_timeout_s,
        dispatch="queue",
    )
    transport.start()
    try:
        provider, _repository, db = _build_node(config, transport)
    except (MDVError, ValueError, OSError):
        transport.close()
        raise
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    print(
        f"MDV-SERVE READY name={config.name} role={config.role} "
        f"host={config.host} port={transport.port}",
        file=stream,
        flush=True,
    )
    try:
        while not stop.is_set():
            request = transport.next_request(timeout=0.2)
            if request is not None:
                transport.execute(request)
        # Graceful drain: answer everything already queued, then give
        # the outbox one last chance to hand off retained deliveries.
        while True:
            request = transport.next_request()
            if request is None:
                break
            transport.execute(request)
        if provider is not None and provider.outbox is not None:
            try:
                provider.deliver_pending()
            except MDVError:
                pass  # peers may already be gone; retained for resync
        if metrics_dump:
            with open(metrics_dump, "w", encoding="utf-8") as handle:
                json.dump(default_registry().snapshot(), handle, indent=2)
    finally:
        transport.close()
        if db is not None:
            db.close()
    return 0


def serve_from_args(
    config_path: str,
    metrics_dump: str | None = None,
    port: int | None = None,
) -> int:
    """CLI glue: load a config file, apply overrides, serve."""
    config = load_config(config_path)
    if port is not None:
        config = replace(config, port=port)
    return run_serve(config, metrics_dump=metrics_dump)
