"""Seeded chaos scenario: a faulty run must converge to the fault-free one.

The acceptance contract of the fault-tolerance layer (see
``docs/FAULT_TOLERANCE.md``): with any seeded
:class:`~repro.net.faults.FaultPlan` — drops, duplicates, transport
errors, delays and one partition that eventually heals — a workload of
registrations, updates and deletions leaves every MDP and every LMR
cache byte-identical to the same workload run with no faults, with zero
duplicate notification applications.

:func:`run_chaos_scenario` builds a two-provider backbone with one LMR
per provider, executes a scripted workload (derived deterministically
from the seed) in three phases — faulty links, a partition that cuts
``lmr-a`` and the backbone apart, and a healed tail — then runs the
recovery protocol and snapshots all four nodes.  The test suite and the
``python -m repro.mdv --chaos-seed N`` smoke entry both diff a faulty
run against the clean run of the same seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.mdv.backbone import Backbone
from repro.mdv.repository import LocalMetadataRepository
from repro.net.bus import NetworkBus
from repro.net.faults import FaultPlan, LinkFaults
from repro.rdf.model import Document, Resource
from repro.rdf.schema import objectglobe_schema
from repro.rdf.serializer import to_rdfxml
from repro.workload.documents import benchmark_document, document_uri

__all__ = ["ChaosReport", "run_chaos_scenario", "resource_snapshot"]

#: Default link behaviour of the chaos plan.
CHAOS_FAULTS = LinkFaults(
    drop_rate=0.12,
    duplicate_rate=0.12,
    error_rate=0.08,
    delay_ms=5.0,
    delay_jitter_ms=10.0,
)


def resource_snapshot(resource: Resource) -> tuple:
    """A canonical, comparable image of one cached resource."""
    return (
        str(resource.uri),
        resource.rdf_class,
        tuple(
            (name, tuple(sorted(str(v) for v in resource.get(name))))
            for name in sorted(resource.property_names())
        ),
    )


@dataclass
class ChaosReport:
    """Everything a convergence check needs from one scenario run."""

    seed: int
    faulty: bool
    #: Per provider: document URI -> serialized RDF/XML.
    provider_snapshots: dict[str, dict[str, str]] = field(default_factory=dict)
    #: Per LMR: resource URI -> canonical resource image.
    lmr_snapshots: dict[str, dict[str, tuple]] = field(default_factory=dict)
    faults_injected: int = 0
    duplicates_ignored: int = 0
    batches_received: int = 0
    batches_applied: int = 0
    replica_duplicates_ignored: int = 0
    #: A degraded read during the partition came back flagged stale.
    stale_read_observed: bool = False
    #: Replication lag observed while the partition was up.
    lag_during_partition: int = 0
    recovery: dict[str, int] = field(default_factory=dict)
    backbone_synchronized: bool = False

    def summary(self) -> str:
        mode = "faulty" if self.faulty else "clean"
        return (
            f"seed={self.seed} ({mode}): "
            f"{self.faults_injected} faults injected, "
            f"{self.batches_applied} batches applied, "
            f"{self.duplicates_ignored} duplicates ignored, "
            f"lag during partition={self.lag_during_partition}, "
            f"synchronized={self.backbone_synchronized}"
        )


def _workload(seed: int) -> list[tuple]:
    """The scripted operation list for one seed.

    Deterministic in the seed alone, so the faulty and the clean run
    execute the identical workload.  Every document has a *home*
    provider and is only ever written there — concurrent cross-site
    writes to one document are out of the scenario's scope (the
    last-writer-wins resolution is exercised separately).
    """
    rng = random.Random(seed)

    def home(index: int) -> str:
        return "mdp-a" if index % 2 == 0 else "mdp-b"

    ops: list[tuple] = []
    # Memory values straddle the 64MB subscription threshold so updates
    # produce match, unmatch and refresh notifications alike.
    def memory() -> int:
        return rng.randint(10, 900)

    # Phase 1: faulty links, no partition.
    for index in range(8):
        ops.append(("register", index, memory(), home(index)))
    for index in rng.sample(range(8), 3):
        ops.append(("update", index, memory(), home(index)))
    ops.append(("delete", 6, None, home(6)))
    ops.append(("partition", None, None, None))
    # Phase 2: the backbone is split and lmr-a is cut off.
    for index in range(8, 12):
        ops.append(("register", index, memory(), home(index)))
    for index in rng.sample(range(4), 2):
        ops.append(("update", index, memory(), home(index)))
    ops.append(("delete", 7, None, home(7)))
    ops.append(("heal", None, None, None))
    # Phase 3: healed, faults still active on the links.
    ops.append(("register", 12, memory(), home(12)))
    ops.append(("update", 8, memory(), home(8)))
    return ops


def run_chaos_scenario(seed: int, faulty: bool = True) -> ChaosReport:
    """Run the scripted scenario, faulty or clean, and snapshot it."""
    schema = objectglobe_schema()
    plan: FaultPlan | None = None
    if faulty:
        plan = FaultPlan(seed=seed, default_faults=CHAOS_FAULTS)
    bus = NetworkBus(fault_plan=plan)
    backbone = Backbone(schema, bus=bus)
    backbone.add_provider("mdp-a")
    backbone.add_provider("mdp-b")
    lmr_a = LocalMetadataRepository("lmr-a", backbone.provider("mdp-a"),
                                    bus=bus)
    lmr_b = LocalMetadataRepository("lmr-b", backbone.provider("mdp-b"),
                                    bus=bus)
    lmrs = {"lmr-a": lmr_a, "lmr-b": lmr_b}
    # Subscriptions ride the bus too; register them before faults bite
    # by retrying is overkill — the plan is consulted per message, so
    # simply subscribe while the default plan has not yet partitioned.
    _subscribe_with_retry(lmr_a, "search CycleProvider c register c "
                                 "where c.serverInformation.memory > 64")
    _subscribe_with_retry(lmr_b, "search CycleProvider c register c "
                                 "where c.serverHost contains 'uni-passau.de'")

    report = ChaosReport(seed=seed, faulty=faulty)
    for op, index, value, at in _workload(seed):
        if op == "register" or op == "update":
            assert index is not None and value is not None
            backbone.register_document(
                benchmark_document(index, memory=value), at=at
            )
        elif op == "delete":
            assert index is not None
            backbone.delete_document(document_uri(index), at=at)
        elif op == "partition":
            if plan is not None:
                plan.partition({"mdp-a"}, {"mdp-b", "lmr-a"})
        elif op == "heal":
            if plan is not None:
                report.lag_during_partition = backbone.replication_lag()
                result = lmr_a.query_with_status("search CycleProvider c")
                report.stale_read_observed = result.stale
                plan.heal()
                report.recovery = backbone.recover()
                lmr_a.resync()
                lmr_b.resync()
    # Final convergence sweep: phase-3 traffic may still be queued
    # behind backoff windows or dead letters on the faulty links.
    backbone.recover()
    lmr_a.resync()
    lmr_b.resync()

    for name, provider in backbone.providers.items():
        report.provider_snapshots[name] = {
            uri: to_rdfxml(doc) for uri, doc in _documents(provider).items()
        }
        report.replica_duplicates_ignored += (
            provider.replica_dedup.duplicates_ignored
        )
    for name, lmr in lmrs.items():
        report.lmr_snapshots[name] = {
            str(r.uri): resource_snapshot(r) for r in lmr.cache.resources()
        }
        report.duplicates_ignored += lmr.dedup.duplicates_ignored
        report.batches_received += lmr.batches_received
        report.batches_applied += lmr.dedup.applied
    if plan is not None:
        report.faults_injected = plan.faults_injected
    report.backbone_synchronized = backbone.is_synchronized()
    return report


def _documents(provider) -> dict[str, Document]:
    return dict(provider._documents)


def _subscribe_with_retry(lmr: LocalMetadataRepository, rule: str,
                          attempts: int = 25) -> None:
    """Subscribe across a faulty (but unpartitioned) link.

    Subscription is a client-facing request/response call, not covered
    by the MDP-side outbox; the client simply retries it.  A
    :class:`~repro.errors.NetworkError` means the request never reached
    the MDP (the bus drops and errors before invoking the handler), so
    retrying is safe; an injected *duplicate* of a successful subscribe
    is rejected MDP-side and absorbed by the bus.
    """
    from repro.errors import NetworkError

    for _ in range(attempts):
        try:
            lmr.subscribe(rule)
            return
        except NetworkError:
            continue
    raise RuntimeError(f"could not subscribe {rule!r} in {attempts} attempts")
